"""Latency statistics helpers for the experiment harness."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["LatencySummary", "summarize"]


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over a sample of latencies (seconds).

    An empty sample is represented by the explicit sentinel
    :meth:`LatencySummary.empty` — ``count == 0`` with NaN statistics — so
    downstream code can test :attr:`is_empty` instead of propagating NaNs.
    """

    count: int
    mean: float
    median: float
    p95: float
    stdev: float
    minimum: float
    maximum: float
    # Defaulted at the end so positional construction (and summaries
    # serialised before these fields existed) keep working.
    p50: float = math.nan
    p99: float = math.nan

    @classmethod
    def empty(cls) -> "LatencySummary":
        """The explicit no-samples sentinel."""
        nan = math.nan
        return cls(0, nan, nan, nan, nan, nan, nan, nan, nan)

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def scaled(self, factor: float) -> "LatencySummary":
        """Return the same summary with every statistic multiplied by ``factor``
        (e.g. ``1e3`` to report in milliseconds).  Scaling the empty sentinel
        returns the sentinel unchanged rather than manufacturing NaN·factor
        values."""
        if self.is_empty:
            return self
        return LatencySummary(
            self.count,
            self.mean * factor,
            self.median * factor,
            self.p95 * factor,
            self.stdev * factor,
            self.minimum * factor,
            self.maximum * factor,
            self.p50 * factor,
            self.p99 * factor,
        )


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already sorted sample.

    Raises ``ValueError`` on an empty sample — a NaN here would silently
    poison every statistic derived from it.
    """
    if not ordered:
        raise ValueError("percentile of an empty sample is undefined")
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def summarize(latencies: Iterable[float]) -> LatencySummary:
    """Summarise a latency sample; an empty sample yields the
    :meth:`LatencySummary.empty` sentinel."""
    sample = sorted(latencies)
    if not sample:
        return LatencySummary.empty()
    return LatencySummary(
        count=len(sample),
        mean=statistics.fmean(sample),
        median=_percentile(sample, 0.5),
        p95=_percentile(sample, 0.95),
        stdev=statistics.stdev(sample) if len(sample) > 1 else 0.0,
        minimum=sample[0],
        maximum=sample[-1],
        p50=_percentile(sample, 0.5),
        p99=_percentile(sample, 0.99),
    )
