"""Latency statistics helpers for the experiment harness."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["LatencySummary", "summarize"]


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over a sample of latencies (seconds)."""

    count: int
    mean: float
    median: float
    p95: float
    stdev: float
    minimum: float
    maximum: float

    def scaled(self, factor: float) -> "LatencySummary":
        """Return the same summary with every statistic multiplied by ``factor``
        (e.g. ``1e3`` to report in milliseconds)."""
        return LatencySummary(
            self.count,
            self.mean * factor,
            self.median * factor,
            self.p95 * factor,
            self.stdev * factor,
            self.minimum * factor,
            self.maximum * factor,
        )


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already sorted sample."""
    if not ordered:
        return math.nan
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def summarize(latencies: Iterable[float]) -> LatencySummary:
    """Summarise a latency sample; an empty sample yields NaN statistics."""
    sample = sorted(latencies)
    if not sample:
        nan = math.nan
        return LatencySummary(0, nan, nan, nan, nan, nan, nan)
    return LatencySummary(
        count=len(sample),
        mean=statistics.fmean(sample),
        median=_percentile(sample, 0.5),
        p95=_percentile(sample, 0.95),
        stdev=statistics.stdev(sample) if len(sample) > 1 else 0.0,
        minimum=sample[0],
        maximum=sample[-1],
    )
