"""Workload generation and measurement for the evaluation experiments."""

from repro.workload.experiment import (
    LAN,
    PAPER_THROUGHPUTS,
    SweepPoint,
    latency_vs_throughput,
)
from repro.workload.generator import burst_schedule, poisson_schedule, uniform_schedule
from repro.workload.metrics import LatencySummary, summarize

__all__ = [
    "LAN",
    "PAPER_THROUGHPUTS",
    "SweepPoint",
    "latency_vs_throughput",
    "burst_schedule",
    "poisson_schedule",
    "uniform_schedule",
    "LatencySummary",
    "summarize",
]
