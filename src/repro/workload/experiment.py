"""Throughput/latency sweeps — the code behind Figures 2 and 3.

The paper measures "the latency of atomic broadcast as a function of the
throughput, whereby latency is defined as the shortest delay between
a-broadcasting a message m and a-delivering m", on stable runs, with the
throughput varied between 20 and 500 msg/s.  :func:`latency_vs_throughput`
reproduces that protocol-agnostically: one simulated run per throughput
point, Poisson open-loop workload, warmup excluded, mean over the
steady-state window.

Execution is delegated to :mod:`repro.engine` whenever the protocol factory
is registry-known (pass ``jobs``/``cache`` to parallelise runs across
processes and reuse results by spec hash); unregistered ad-hoc factories
fall back to an in-process serial loop with identical semantics.  The
``LAN*`` testbed presets live in :mod:`repro.engine.spec` and are
re-exported here for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.engine.spec import (  # noqa: F401 — re-exported presets
    DEFAULT_SERVICE_TIME,
    LAN,
    LAN_CAPACITY,
    LAN_DATAGRAM,
    PAPER_THROUGHPUTS,
    AbcastRunSpec,
    ClusterSpec,
)
from repro.workload.metrics import LatencySummary, summarize

__all__ = [
    "SweepPoint",
    "latency_vs_throughput",
    "PAPER_THROUGHPUTS",
    "LAN",
    "LAN_DATAGRAM",
    "LAN_CAPACITY",
    "DEFAULT_SERVICE_TIME",
]


@dataclass(frozen=True)
class SweepPoint:
    """One (throughput, latency) point of a Figure-2/3 curve."""

    throughput: float
    offered: int  # messages injected in the measured window
    delivered: int  # of those, messages that were a-delivered everywhere asked
    summary: LatencySummary  # latency stats over delivered window messages

    @property
    def mean_latency_ms(self) -> float:
        return self.summary.mean * 1e3

    @property
    def loss_fraction(self) -> float:
        if self.offered == 0:
            return 0.0
        return 1.0 - self.delivered / self.offered


def _run_seed(seed: int, index: int, repeat: int) -> int:
    """Historical per-run seed derivation — kept bit-for-bit stable."""
    return seed + index + 1000 * repeat


def latency_vs_throughput(
    make_module: Callable[..., Any] | str,
    n: int,
    throughputs: Sequence[float] = PAPER_THROUGHPUTS,
    duration: float = 4.0,
    warmup: float = 0.5,
    drain: float = 1.5,
    seed: int = 0,
    delay=LAN,
    datagram_delay=LAN_DATAGRAM,
    service_time: float = DEFAULT_SERVICE_TIME,
    capacity=LAN_CAPACITY,
    max_events: int | None = 4_000_000,
    repeats: int = 1,
    jobs: int = 1,
    cache=None,
) -> list[SweepPoint]:
    """Sweep aggregate throughput and measure mean a-deliver latency.

    ``make_module`` has the :func:`repro.harness.abcast_runner.run_abcast`
    factory signature, or is a protocol registry name.  Runs are *not*
    required to deliver everything — WABCast legitimately stalls under
    heavy collisions (the ``∞`` of Table 1) — so each point also reports
    the delivered fraction.

    ``repeats`` > 1 runs each throughput point on that many independent
    seeds and pools the latency samples — tighter estimates for
    proportional runtime.  ``jobs`` > 1 fans the runs out over worker
    processes; ``cache`` (directory path) reuses results by spec hash.
    Both require a registry-known protocol (results are identical either
    way — the engine executes the very same runs).
    """
    if isinstance(make_module, str):
        name: str | None = make_module
    else:
        from repro.harness.registry import name_of

        name = name_of(make_module)

    if name is None:
        return _serial_sweep(
            make_module, n, throughputs, duration, warmup, drain, seed,
            delay, datagram_delay, service_time, capacity, max_events, repeats,
        )

    from repro.engine.runner import run_sweep

    cluster = ClusterSpec(
        delay=delay,
        datagram_delay=datagram_delay,
        capacity=capacity,
        service_time=service_time,
    )
    specs = [
        AbcastRunSpec(
            protocol=name,
            rate=rate,
            duration=duration,
            n=n,
            seed=_run_seed(seed, index, repeat),
            warmup=warmup,
            drain=drain,
            cluster=cluster,
            require_all_delivered=False,
            max_events=max_events,
        )
        for index, rate in enumerate(throughputs)
        for repeat in range(repeats)
    ]
    sweep = run_sweep(specs, jobs=jobs, cache=cache)

    points: list[SweepPoint] = []
    reports = iter(sweep.reports)
    for rate in throughputs:
        offered = 0
        latencies: list[float] = []
        for _ in range(repeats):
            report = next(reports)
            offered += report.offered
            latencies.extend(report.latencies)
        points.append(
            SweepPoint(
                throughput=rate,
                offered=offered,
                delivered=len(latencies),
                summary=summarize(latencies),
            )
        )
    return points


def _serial_sweep(
    make_module, n, throughputs, duration, warmup, drain, seed,
    delay, datagram_delay, service_time, capacity, max_events, repeats,
) -> list[SweepPoint]:
    """In-process fallback for factories outside the protocol registry."""
    from repro.engine.runner import window_latencies
    from repro.harness.abcast_runner import run_abcast
    from repro.workload.generator import poisson_schedule

    points: list[SweepPoint] = []
    for index, rate in enumerate(throughputs):
        latencies: list[float] = []
        offered = 0
        for repeat in range(repeats):
            run_seed = _run_seed(seed, index, repeat)
            schedules = poisson_schedule(n, rate, duration, seed=run_seed)
            result = run_abcast(
                make_module,
                n,
                schedules,
                seed=run_seed,
                delay=delay,
                datagram_delay=datagram_delay,
                service_time=service_time,
                capacity=capacity,
                horizon=duration + drain,
                check=True,
                require_all_delivered=False,
                max_events=max_events,
            )
            run_offered, run_latencies = window_latencies(result, warmup, duration)
            offered += run_offered
            latencies.extend(run_latencies)
        points.append(
            SweepPoint(
                throughput=rate,
                offered=offered,
                delivered=len(latencies),
                summary=summarize(latencies),
            )
        )
    return points
