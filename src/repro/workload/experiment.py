"""Throughput/latency sweeps — the code behind Figures 2 and 3.

The paper measures "the latency of atomic broadcast as a function of the
throughput, whereby latency is defined as the shortest delay between
a-broadcasting a message m and a-delivering m", on stable runs, with the
throughput varied between 20 and 500 msg/s.  :func:`latency_vs_throughput`
reproduces that protocol-agnostically: one simulated run per throughput
point, Poisson open-loop workload, warmup excluded, mean over the
steady-state window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.harness.abcast_runner import run_abcast
from repro.sim.network import LanDelay, LinkCapacity
from repro.workload.generator import poisson_schedule
from repro.workload.metrics import LatencySummary, summarize

__all__ = [
    "SweepPoint",
    "latency_vs_throughput",
    "PAPER_THROUGHPUTS",
    "LAN",
    "LAN_DATAGRAM",
    "LAN_CAPACITY",
    "DEFAULT_SERVICE_TIME",
]

#: The x axis of Figures 2 and 3.
PAPER_THROUGHPUTS: tuple[int, ...] = (20, 50, 80, 100, 150, 200, 250, 300, 350, 400, 450, 500)

#: One-way delay of the TCP path on the paper's testbed: kernel, JVM and
#: switch traversal dominate on a 2006-era stack — δ ≈ 0.44 ms, mild jitter.
LAN = LanDelay(base=400e-6, jitter_mean=40e-6, jitter_sigma=0.8)

#: The WAB oracle runs on raw UDP: lower base latency than the TCP path but
#: a much heavier jitter tail (no flow control; bursts hit socket buffers).
#: The tail is what breaks spontaneous order once broadcasts overlap.
LAN_DATAGRAM = LanDelay(base=300e-6, jitter_mean=150e-6, jitter_sigma=1.7)

#: Per-port serialisation of the 100 Mb switch: a protocol message occupies
#: a port for ~50 µs.  This is the load-dependent term that bends the
#: latency curves upward and widens the reorder window as load rises.
LAN_CAPACITY = LinkCapacity(frame_time=50e-6, mode="switched")

#: CPU cost per handled event on the 2.8 GHz workstations.
DEFAULT_SERVICE_TIME = 20e-6


@dataclass(frozen=True)
class SweepPoint:
    """One (throughput, latency) point of a Figure-2/3 curve."""

    throughput: float
    offered: int  # messages injected in the measured window
    delivered: int  # of those, messages that were a-delivered everywhere asked
    summary: LatencySummary  # latency stats over delivered window messages

    @property
    def mean_latency_ms(self) -> float:
        return self.summary.mean * 1e3

    @property
    def loss_fraction(self) -> float:
        if self.offered == 0:
            return 0.0
        return 1.0 - self.delivered / self.offered


def latency_vs_throughput(
    make_module: Callable[..., Any],
    n: int,
    throughputs: Sequence[float] = PAPER_THROUGHPUTS,
    duration: float = 4.0,
    warmup: float = 0.5,
    drain: float = 1.5,
    seed: int = 0,
    delay=LAN,
    datagram_delay=LAN_DATAGRAM,
    service_time: float = DEFAULT_SERVICE_TIME,
    capacity=LAN_CAPACITY,
    max_events: int | None = 4_000_000,
    repeats: int = 1,
) -> list[SweepPoint]:
    """Sweep aggregate throughput and measure mean a-deliver latency.

    ``make_module`` has the :func:`repro.harness.abcast_runner.run_abcast`
    factory signature.  Runs are *not* required to deliver everything —
    WABCast legitimately stalls under heavy collisions (the ``∞`` of
    Table 1) — so each point also reports the delivered fraction.

    ``repeats`` > 1 runs each throughput point on that many independent
    seeds and pools the latency samples — tighter estimates for
    proportional runtime.
    """
    points: list[SweepPoint] = []
    for index, rate in enumerate(throughputs):
        latencies: list[float] = []
        offered = 0
        for repeat in range(repeats):
            run_seed = seed + index + 1000 * repeat
            schedules = poisson_schedule(n, rate, duration, seed=run_seed)
            result = run_abcast(
                make_module,
                n,
                schedules,
                seed=run_seed,
                delay=delay,
                datagram_delay=datagram_delay,
                service_time=service_time,
                capacity=capacity,
                horizon=duration + drain,
                check=True,
                require_all_delivered=False,
                max_events=max_events,
            )
            window = (warmup, duration)
            window_ids = [
                mid
                for mid, msg in result.broadcast.items()
                if window[0] <= msg.sent_at <= window[1]
            ]
            offered += len(window_ids)
            latencies.extend(
                lat
                for mid in window_ids
                if (lat := result.latency_of(mid)) is not None
            )
        points.append(
            SweepPoint(
                throughput=rate,
                offered=offered,
                delivered=len(latencies),
                summary=summarize(latencies),
            )
        )
    return points
