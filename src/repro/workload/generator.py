"""Workload generation for the throughput/latency experiments (section 8.1).

The paper drives its cluster with a symmetric open-loop workload: messages
are a-broadcast at an aggregate rate varied between 20 and 500 msg/s,
spread over all processes.  :func:`poisson_schedule` reproduces that as a
Poisson arrival process split evenly across the senders — open-loop, so
queueing delay at high throughput feeds back into latency but not into the
arrival pattern, exactly like the paper's fixed-rate generators.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.sim.kernel import derive_seed

__all__ = ["poisson_schedule", "uniform_schedule", "burst_schedule"]

Schedule = Mapping[int, Sequence[tuple[float, Any]]]


def _default_payload(pid: int, index: int) -> str:
    return f"m{pid}.{index}"


def poisson_schedule(
    n: int,
    rate: float,
    duration: float,
    seed: int = 0,
    start: float = 0.0,
    senders: Sequence[int] | None = None,
    payload: Callable[[int, int], Any] = _default_payload,
) -> dict[int, list[tuple[float, Any]]]:
    """Poisson arrivals at aggregate ``rate`` msg/s over ``senders``.

    Each sender gets an independent Poisson process of rate
    ``rate / len(senders)``; the superposition is Poisson at ``rate``.
    """
    if rate <= 0 or duration <= 0:
        raise ConfigurationError("rate and duration must be positive")
    chosen = list(senders) if senders is not None else list(range(n))
    per_sender = rate / len(chosen)
    schedules: dict[int, list[tuple[float, Any]]] = {}
    for pid in chosen:
        rng = random.Random(derive_seed(seed, "workload", pid))
        t = start
        sends: list[tuple[float, Any]] = []
        index = 0
        while True:
            t += rng.expovariate(per_sender)
            if t >= start + duration:
                break
            index += 1
            sends.append((t, payload(pid, index)))
        schedules[pid] = sends
    return schedules


def uniform_schedule(
    n: int,
    rate: float,
    duration: float,
    start: float = 0.0,
    senders: Sequence[int] | None = None,
    payload: Callable[[int, int], Any] = _default_payload,
) -> dict[int, list[tuple[float, Any]]]:
    """Deterministic, evenly spaced arrivals (for reproducible unit tests).

    Senders are interleaved round-robin so the aggregate stream is evenly
    spaced at ``rate`` msg/s.
    """
    if rate <= 0 or duration <= 0:
        raise ConfigurationError("rate and duration must be positive")
    chosen = list(senders) if senders is not None else list(range(n))
    interval = 1.0 / rate
    schedules: dict[int, list[tuple[float, Any]]] = {pid: [] for pid in chosen}
    counters = {pid: 0 for pid in chosen}
    t = start + interval
    slot = 0
    while t < start + duration:
        pid = chosen[slot % len(chosen)]
        counters[pid] += 1
        schedules[pid].append((t, payload(pid, counters[pid])))
        slot += 1
        t += interval
    return schedules


def burst_schedule(
    n: int,
    burst_size: int,
    spacing: float,
    bursts: int,
    start: float = 0.0,
    payload: Callable[[int, int], Any] = _default_payload,
) -> dict[int, list[tuple[float, Any]]]:
    """Adversarial collision workload: all ``n`` senders fire simultaneously.

    Every burst makes every process a-broadcast ``burst_size`` messages at
    the same instant — the worst case for spontaneous order, used by the
    one-step-rate ablation (bench A1).
    """
    if burst_size < 1 or bursts < 1 or spacing <= 0:
        raise ConfigurationError("burst parameters must be positive")
    schedules: dict[int, list[tuple[float, Any]]] = {pid: [] for pid in range(n)}
    counters = {pid: 0 for pid in range(n)}
    for b in range(bursts):
        at = start + b * spacing
        for pid in range(n):
            for _ in range(burst_size):
                counters[pid] += 1
                schedules[pid].append((at, payload(pid, counters[pid])))
    return schedules
