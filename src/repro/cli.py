"""Command-line interface: run the paper's experiments from a shell.

``python -m repro <command>`` exposes the main entry points:

* ``consensus`` — one consensus instance on a simulated cluster;
* ``abcast``    — an atomic-broadcast session with a Poisson workload;
* ``rsm``       — a replicated KV service (:mod:`repro.rsm`) over any abcast
  protocol: client sessions, batching, snapshots, crash + learner rejoin;
  ``--shards N`` partitions the key space over N consensus groups and
  ``--txn-clients``/``--txn-rate`` add cross-shard 2PC transactions;
  ``--json`` prints the structured report (byte-identical per seed);
* ``sweep``     — the Figure-2/3 latency-vs-throughput experiment on the
  parallel engine: ``--jobs N`` fans runs over the persistent worker pool
  (clamped to the available CPUs), ``--cache DIR`` reuses results by spec
  hash and absorbs each finished cell immediately (interrupted sweeps
  resume), ``--progress`` streams cells/sec + ETA to stderr, ``--json OUT``
  exports the structured reports; ``--shards 1,2,4,8`` switches to the RSM
  scale-out grid (shard count × ``--group-sizes``) at one offered rate;
* ``profile``   — one spec run with :mod:`repro.perf` observability:
  per-component event counts, events/sec, virtual-seconds per wall-second,
  optionally a cProfile hot-function table (``--cprofile``);
* ``trace``     — observability traces (:mod:`repro.obs`): ``export`` runs a
  spec with detailed tracing (optionally under a ``--partition``/``--fd-flap``
  nemesis schedule) and writes JSONL or Chrome/Perfetto JSON; ``summary``
  and ``spans`` inspect an export; ``critical-path`` reconstructs each
  decision's gating message chain and fallback cause; ``diff`` pinpoints
  the first divergent record between two exports;
* ``obs``       — the cross-run metrics warehouse (:mod:`repro.obs.warehouse`):
  ``record`` appends one observed run's summary, ``report`` tabulates a
  store, ``compare`` gates two entries against a latency tolerance;
* ``protocols`` — the protocol registry (name, kind, default n, description);
* ``table1``    — the analytical Table 1 for a given group size;
* ``theorem1``  — the executable Theorem-1 impossibility certificate.

Every command describes its run as a frozen spec
(:mod:`repro.engine.spec`) and resolves protocols through the single
registry (:mod:`repro.harness.registry`).

Examples::

    python -m repro consensus --protocol p-consensus --proposals a,b,c,d
    python -m repro abcast --protocol cabcast-l --rate 200 --duration 1.0
    python -m repro rsm --protocol cabcast-l --n 4 --clients 8 --rate 200 \
        --crash 2@0.5 --json
    python -m repro sweep --protocols cabcast-p,wabcast --rates 20,100,300,500 \
        --jobs 4 --cache ~/.cache/repro-sweeps --json out.json
    python -m repro theorem1
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.complexity import format_table1
from repro.analysis.textplot import line_chart
from repro.engine import PAPER_LAN, AbcastRunSpec, ClusterSpec, ConsensusRunSpec
from repro.engine.runner import run_sweep, sweep_grid
from repro.harness.abcast_runner import run_abcast
from repro.harness.consensus_runner import run_consensus
from repro.harness.registry import ABCAST, CONSENSUS, PROTOCOLS, protocol_names
from repro.workload.metrics import summarize

__all__ = ["main", "build_parser", "SWEEP_JSON_SCHEMA"]

#: Schema tag of the ``sweep --json`` document (see docs/ENGINE.md).
SWEEP_JSON_SCHEMA = "repro.sweep.v1"


def _add_nemesis_args(parser: argparse.ArgumentParser) -> None:
    """Nemesis-schedule flags shared by ``trace export`` and ``obs record``."""
    parser.add_argument(
        "--partition",
        action="append",
        default=[],
        metavar="AT:DUR:GROUPS",
        help="partition op: start, duration, '/'-separated pid groups "
             "(e.g. 0.05:0.1:0/1,2,3 isolates p0; repeatable)",
    )
    parser.add_argument(
        "--fd-flap",
        action="append",
        default=[],
        metavar="AT:DUR:PID",
        help="falsely suspect PID for DUR seconds starting at AT (repeatable)",
    )


def _parse_nemesis(args: argparse.Namespace):
    """Build the :class:`NemesisSpec` from ``_add_nemesis_args`` flags.

    Returns ``None`` when no fault flags were given, so fault-free specs
    keep their exact pre-nemesis dict form and cache key.
    """
    from repro.nemesis import FdFlapOp, NemesisSpec, PartitionOp

    ops: list = []
    for item in args.partition:
        at_text, dur_text, groups_text = item.split(":", 2)
        groups = tuple(
            tuple(int(pid) for pid in group.split(","))
            for group in groups_text.split("/")
        )
        ops.append(
            PartitionOp(at=float(at_text), duration=float(dur_text), groups=groups)
        )
    for item in args.fd_flap:
        at_text, dur_text, pid_text = item.split(":", 2)
        ops.append(
            FdFlapOp(at=float(at_text), duration=float(dur_text), pid=int(pid_text))
        )
    if not ops:
        return None
    return NemesisSpec(ops=tuple(sorted(ops, key=lambda op: op.at)))


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="One-step Consensus with Zero-Degradation (DSN 2006) — reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_cons = sub.add_parser("consensus", help="run one consensus instance")
    p_cons.add_argument(
        "--protocol", choices=protocol_names(CONSENSUS), default="p-consensus"
    )
    p_cons.add_argument(
        "--proposals",
        default="a,b,c,d",
        help="comma-separated proposals, one per process (defines n)",
    )
    p_cons.add_argument("--seed", type=int, default=0)
    p_cons.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="PID:TIME",
        help="crash PID at TIME seconds (repeatable)",
    )
    p_cons.add_argument("--detection-delay", type=float, default=0.0)

    p_ab = sub.add_parser("abcast", help="run an atomic-broadcast session")
    p_ab.add_argument(
        "--protocol", choices=protocol_names(ABCAST), default="cabcast-p"
    )
    p_ab.add_argument("--n", type=int, default=4)
    p_ab.add_argument("--rate", type=float, default=100.0, help="aggregate msg/s")
    p_ab.add_argument("--duration", type=float, default=0.5)
    p_ab.add_argument("--seed", type=int, default=0)

    p_rsm = sub.add_parser(
        "rsm", help="replicated KV service over an abcast protocol"
    )
    p_rsm.add_argument(
        "--protocol", choices=protocol_names(ABCAST), default="cabcast-l"
    )
    p_rsm.add_argument("--n", type=int, default=4, help="replicas")
    p_rsm.add_argument("--clients", type=int, default=8, help="client sessions")
    p_rsm.add_argument(
        "--rate", type=float, default=200.0, help="aggregate client ops/s"
    )
    p_rsm.add_argument("--duration", type=float, default=1.0)
    p_rsm.add_argument("--seed", type=int, default=0)
    p_rsm.add_argument(
        "--workload", choices=("open", "closed"), default="open"
    )
    p_rsm.add_argument("--keys", type=int, default=32, help="KV key-space size")
    p_rsm.add_argument(
        "--shards",
        type=int,
        default=1,
        help="independent consensus groups partitioning the key space",
    )
    p_rsm.add_argument(
        "--partitioner",
        choices=("hash", "range"),
        default="hash",
        help="key-to-shard map: stable CRC-32 hash or contiguous ranges",
    )
    p_rsm.add_argument(
        "--txn-clients",
        type=int,
        default=0,
        help="closed-loop cross-shard transaction sessions (2PC over groups)",
    )
    p_rsm.add_argument(
        "--txn-rate",
        type=float,
        default=0.0,
        help="aggregate transactions/s offered by the txn sessions",
    )
    p_rsm.add_argument(
        "--txn-keys",
        type=int,
        default=2,
        help="keys written per transaction (one per distinct shard)",
    )
    p_rsm.add_argument("--batch-max", type=int, default=8)
    p_rsm.add_argument(
        "--batch-delay", type=float, default=2e-3, metavar="SECONDS"
    )
    p_rsm.add_argument(
        "--snapshot-every", type=int, default=25, metavar="COMMANDS"
    )
    p_rsm.add_argument(
        "--recover-after",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="crashed replicas rejoin as learners after this delay (<0 disables)",
    )
    p_rsm.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="PID@TIME",
        help="crash replica PID at TIME seconds (repeatable)",
    )
    p_rsm.add_argument(
        "--parallel",
        action="store_true",
        help="conservative-parallel execution: one kernel per shard group",
    )
    p_rsm.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for --parallel (default: 1 process)",
    )
    p_rsm.add_argument(
        "--json",
        dest="json_out",
        action="store_true",
        help="print the structured run report to stdout (byte-identical per seed)",
    )

    p_sweep = sub.add_parser("sweep", help="latency vs throughput (Figures 2-3)")
    p_sweep.add_argument(
        "--protocols",
        default="cabcast-p,cabcast-l,wabcast",
        help="comma-separated names from: " + ",".join(protocol_names(ABCAST)),
    )
    p_sweep.add_argument("--rates", default="20,100,300,500")
    p_sweep.add_argument("--n", type=int, default=4)
    p_sweep.add_argument("--duration", type=float, default=1.5)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument(
        "--repeats", type=int, default=1, help="independent seeds pooled per point"
    )
    p_sweep.add_argument(
        "--shards",
        default=None,
        metavar="LIST",
        help="RSM scale-out mode: sweep shard counts (e.g. 1,2,4,8) instead of "
             "rates; the first --rates value is the per-cell offered rate",
    )
    p_sweep.add_argument(
        "--group-sizes",
        default="3",
        metavar="LIST",
        help="group sizes crossed with --shards in scale-out mode",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the run grid"
    )
    p_sweep.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="on-disk result cache; unchanged cells are not re-run",
    )
    p_sweep.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="FILE",
        help="write the structured run reports to FILE",
    )
    p_sweep.add_argument(
        "--progress",
        action="store_true",
        help="stream per-cell progress (cells/sec, ETA) to stderr",
    )
    p_sweep.add_argument("--no-chart", action="store_true")

    p_prof = sub.add_parser(
        "profile", help="run one spec with perf observability (events/sec etc.)"
    )
    p_prof.add_argument(
        "--protocol", choices=protocol_names(ABCAST), default="cabcast-p"
    )
    p_prof.add_argument("--n", type=int, default=4)
    p_prof.add_argument("--rate", type=float, default=300.0, help="aggregate msg/s")
    p_prof.add_argument("--duration", type=float, default=1.5)
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument(
        "--cprofile",
        nargs="?",
        const=20,
        default=None,
        type=int,
        metavar="TOP",
        help="also run under cProfile; show the TOP hottest functions (default 20)",
    )
    p_prof.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="FILE",
        help="write the perf section (repro.perf.v1) to FILE",
    )

    p_trace = sub.add_parser(
        "trace", help="export, summarise, inspect and diff observability traces"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    t_export = trace_sub.add_parser(
        "export", help="run one abcast spec with obs enabled and export its trace"
    )
    t_export.add_argument(
        "--protocol", choices=protocol_names(ABCAST), default="cabcast-l"
    )
    t_export.add_argument("--n", type=int, default=4)
    t_export.add_argument("--rate", type=float, default=100.0, help="aggregate msg/s")
    t_export.add_argument("--duration", type=float, default=0.5)
    t_export.add_argument("--seed", type=int, default=0)
    t_export.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="PID@TIME",
        help="crash PID at TIME seconds (repeatable)",
    )
    t_export.add_argument(
        "--format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="jsonl (repro.trace.v1, diffable) or chrome (Perfetto timeline)",
    )
    t_export.add_argument("--out", required=True, metavar="FILE")
    _add_nemesis_args(t_export)

    t_summary = trace_sub.add_parser(
        "summary", help="per-kind counts and span summary of a JSONL trace"
    )
    t_summary.add_argument("file")
    t_summary.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any kind falls outside the canonical vocabulary",
    )

    t_spans = trace_sub.add_parser(
        "spans", help="reconstructed consensus and broadcast spans of a JSONL trace"
    )
    t_spans.add_argument("file")

    t_cp = trace_sub.add_parser(
        "critical-path",
        help="decision critical paths and fallback causes of a JSONL trace",
    )
    t_cp.add_argument("file")
    t_cp.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when a decided instance has no resolvable path "
             "or a delivery lacks its matching send",
    )
    t_cp.add_argument(
        "--json",
        dest="json_out",
        action="store_true",
        help="print the paths as a JSON array instead of the table",
    )

    t_diff = trace_sub.add_parser(
        "diff", help="first divergence between two JSONL traces"
    )
    t_diff.add_argument("left")
    t_diff.add_argument("right")

    p_obs = sub.add_parser(
        "obs", help="cross-run metrics warehouse (record, report, compare)"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    o_record = obs_sub.add_parser(
        "record",
        help="run one abcast spec with obs on and append its summary",
    )
    o_record.add_argument("--warehouse", required=True, metavar="FILE")
    o_record.add_argument(
        "--protocol", choices=protocol_names(ABCAST), default="cabcast-l"
    )
    o_record.add_argument("--n", type=int, default=4)
    o_record.add_argument(
        "--rate", type=float, default=100.0, help="aggregate msg/s"
    )
    o_record.add_argument("--duration", type=float, default=0.5)
    o_record.add_argument("--seed", type=int, default=0)
    o_record.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="PID@TIME",
        help="crash PID at TIME seconds (repeatable)",
    )
    o_record.add_argument(
        "--label", default=None, help="free-form tag stored with the entry"
    )
    o_record.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="record an RSM service run over N consensus groups instead of "
             "plain abcast (enables --parallel/--workers)",
    )
    o_record.add_argument(
        "--clients", type=int, default=4, help="client sessions (with --shards)"
    )
    o_record.add_argument(
        "--parallel",
        action="store_true",
        help="conservative-parallel execution (with --shards; adds the "
             "parallel_speedup distillation to the entry)",
    )
    o_record.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes for --parallel",
    )
    _add_nemesis_args(o_record)

    o_report = obs_sub.add_parser("report", help="tabulate a warehouse file")
    o_report.add_argument("warehouse", metavar="FILE")

    o_compare = obs_sub.add_parser(
        "compare",
        help="gate two warehouse entries against a latency tolerance",
    )
    o_compare.add_argument("warehouse", metavar="FILE")
    o_compare.add_argument(
        "--base", type=int, default=-2, help="baseline entry index (default -2)"
    )
    o_compare.add_argument(
        "--fresh", type=int, default=-1, help="candidate entry index (default -1)"
    )
    o_compare.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="max tolerated latency growth as a fraction (default 0.30)",
    )

    p_fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided fault-schedule fuzzing (repro.nemesis)",
        description=(
            "Search random nemesis schedules for checker violations against "
            "one protocol; findings are delta-debugged to a minimal schedule "
            "and can be saved as a replayable JSON repro.  Exit status: 0 = "
            "no violation found, 1 = violation found, 2 = replay mismatch."
        ),
    )
    p_fuzz.add_argument(
        "--kind", choices=("consensus", "abcast", "rsm"), default="consensus"
    )
    p_fuzz.add_argument(
        "--protocol", default=None, help="registry name (default per kind)"
    )
    p_fuzz.add_argument("--n", type=int, default=4)
    p_fuzz.add_argument("--seed", type=int, default=0, help="fuzz campaign seed")
    p_fuzz.add_argument("--budget", type=int, default=32, help="trial runs")
    p_fuzz.add_argument("--max-ops", type=int, default=8, help="ops per schedule")
    p_fuzz.add_argument(
        "--ops",
        default=None,
        metavar="A,B,...",
        help="op kinds to generate (default: the in-model set; 'all' adds dup)",
    )
    p_fuzz.add_argument("--window", type=float, default=None, help="injection window (s)")
    p_fuzz.add_argument("--max-findings", type=int, default=1)
    p_fuzz.add_argument(
        "--detection-delay", type=float, default=1e-3, help="consensus-kind FD lag"
    )
    p_fuzz.add_argument(
        "--termination-as-violation",
        action="store_true",
        help="count stalls (TerminationFailure) as findings, not just safety",
    )
    p_fuzz.add_argument("--no-shrink", action="store_true")
    p_fuzz.add_argument(
        "--save", metavar="PATH", default=None, help="write first finding's repro JSON"
    )
    p_fuzz.add_argument(
        "--replay", metavar="PATH", default=None, help="replay a repro JSON instead"
    )

    sub.add_parser(
        "protocols", help="list the protocol registry (name, kind, n, description)"
    )

    p_t1 = sub.add_parser("table1", help="print the analytical Table 1")
    p_t1.add_argument("--n", type=int, default=4)

    p_thm = sub.add_parser("theorem1", help="derive the Theorem-1 certificate")
    p_thm.add_argument(
        "--full",
        action="store_true",
        help="search the unrestricted hear-set space (slower)",
    )

    return parser


def _cmd_consensus(args: argparse.Namespace) -> int:
    values = args.proposals.split(",")
    crash_at = []
    for item in args.crash:
        pid_text, _, time_text = item.partition(":")
        crash_at.append((int(pid_text), float(time_text)))
    spec = ConsensusRunSpec(
        protocol=args.protocol,
        proposals=tuple(values),
        seed=args.seed,
        cluster=ClusterSpec(detection_delay=args.detection_delay),
        crash_at=tuple(crash_at),
        horizon=30.0,
    )
    result = run_consensus(spec)
    print(f"protocol : {args.protocol} (n={len(values)})")
    print(f"proposals: {dict(enumerate(values))}")
    for pid, record in sorted(result.records.items()):
        print(
            f"  p{pid} decided {record.value!r} after {record.steps} step(s) "
            f"via {record.via} at t={record.at * 1e3:.3f} ms"
        )
    if result.crashed:
        print(f"crashed  : {result.crashed}")
    print(f"messages : {result.messages_sent}")
    return 0


def _cmd_abcast(args: argparse.Namespace) -> int:
    spec = AbcastRunSpec(
        protocol=args.protocol,
        rate=args.rate,
        duration=args.duration,
        n=args.n,
        seed=args.seed,
        drain=2.0,
    )
    result = run_abcast(spec)
    sent = len(result.broadcast)
    latencies = result.latencies()
    mean_ms = sum(latencies) / len(latencies) * 1e3 if latencies else float("nan")
    print(f"protocol : {args.protocol} (n={args.n})")
    print(f"offered  : {sent} messages at {args.rate:.0f} msg/s")
    print(f"delivered: {result.delivered_count} (total order verified)")
    print(f"latency  : mean {mean_ms:.3f} ms over {len(latencies)} samples")
    print(f"messages : {result.network_stats['sent']} on the wire")
    return 0


def _parse_crashes(items: Sequence[str]) -> tuple[tuple[int, float], ...]:
    """Parse repeatable ``PID@TIME`` (or legacy ``PID:TIME``) crash args."""
    crash_at = []
    for item in items:
        sep = "@" if "@" in item else ":"
        pid_text, _, time_text = item.partition(sep)
        crash_at.append((int(pid_text), float(time_text)))
    return tuple(crash_at)


def _cmd_rsm(args: argparse.Namespace) -> int:
    from repro.engine import RsmRunSpec, TopologySpec
    from repro.engine.runner import execute_run

    # Only a non-default topology is spelled out: single-group CLI runs keep
    # their pre-topology spec dicts (and therefore their cache keys).
    extra: dict = {}
    if args.shards != 1 or args.partitioner != "hash":
        extra["topology"] = TopologySpec(
            groups=args.shards, partitioner=args.partitioner
        )
    if args.txn_clients or args.txn_rate:
        extra.update(
            txn_clients=args.txn_clients,
            txn_rate=args.txn_rate,
            txn_keys=args.txn_keys,
        )
    if args.parallel or args.workers:
        extra.update(parallel=args.parallel, workers=args.workers)
    spec = RsmRunSpec(
        protocol=args.protocol,
        rate=args.rate,
        duration=args.duration,
        n=args.n,
        clients=args.clients,
        seed=args.seed,
        workload=args.workload,
        keys=args.keys,
        batch_max=args.batch_max,
        batch_delay=args.batch_delay,
        snapshot_every=args.snapshot_every,
        recover_after=None if args.recover_after < 0 else args.recover_after,
        cluster=PAPER_LAN,
        crash_at=_parse_crashes(args.crash),
        **extra,
    )
    report = execute_run(spec)
    if args.json_out:
        # Canonical form so equal seeds print byte-identical documents.
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    rsm = report.rsm
    latency = rsm["latency_ms"]
    sharded = "shards" in rsm
    if sharded:
        topology = rsm["topology"]
        print(f"protocol : {args.protocol} ({topology['groups']} shards × n={args.n} "
              f"[{topology['partitioner']}], {args.clients} sessions, "
              f"{args.workload}-loop {args.rate:.0f} ops/s)")
    else:
        print(f"protocol : {args.protocol} (n={args.n}, {args.clients} sessions, "
              f"{args.workload}-loop {args.rate:.0f} ops/s)")
    parallel = rsm.get("parallel")
    if parallel:
        print(f"parallel : {parallel['partitions']} partition kernels on "
              f"{parallel['workers'] or 1} worker(s), "
              f"{parallel['cross_messages']} cross / "
              f"{parallel['null_messages']} null messages, "
              f"speedup bound {parallel['speedup_bound']:.2f}x")
    print(f"committed: {rsm['committed']} commands "
          f"({rsm['ops_per_s']:.0f} ops/s in the window)")
    if latency is not None:
        print(f"latency  : p50 {latency['p50']:.3f} ms, "
              f"p99 {latency['p99']:.3f} ms (mean {latency['mean']:.3f} ms)")
    if sharded:
        txns = rsm["txns"]
        if txns["sessions"]:
            print(f"txns     : {txns['committed']} committed, "
                  f"{txns['aborted']} aborted over {txns['sessions']} 2PC "
                  f"sessions ({txns['conflicts']} saw lock conflicts)")
        for shard, info in sorted(rsm["shards"].items(), key=lambda kv: int(kv[0])):
            print(f"  shard {shard}: {info['committed']} commands, "
                  f"{info['txns_committed']} txn commits, "
                  f"digest {info['digest'][:12]}…")
    else:
        print(f"batching : {rsm['batches']['count']} batches, "
              f"mean size {rsm['batches']['mean_size']:.2f}")
    snapshots = rsm["snapshots"]
    line = f"snapshots: {snapshots['taken']} taken ({snapshots['bytes']} bytes)"
    if "last_index" in snapshots:
        line += f", log compacted to index {snapshots['last_index']}"
    print(line)
    print(f"dedup    : {rsm['dedup']['suppressed']} duplicates suppressed, "
          f"{rsm['dedup']['retries']} client retries")
    if rsm["crashed"]:
        print(f"crashed  : {rsm['crashed']}")
    for pid, info in sorted(rsm["recovery"].items(), key=lambda kv: int(kv[0])):
        verdict = "state matches" if info["digest_match"] else "DIVERGED"
        print(f"  p{pid} rejoined from snapshot index {info['installed_index']}, "
              f"replayed {info['replayed']} commands — {verdict}")
    if sharded:
        print(f"checked  : linearizable per shard + cross-shard serializable="
              f"{str(rsm['linearizable']).lower()}")
    else:
        print(f"checked  : linearizable={str(rsm['linearizable']).lower()}, "
              f"digest {rsm['digest'][:16]}…")
    return 0


def _cmd_protocols(args: argparse.Namespace) -> int:
    rows = [
        (info.name, info.kind, "-" if info.default_n is None else str(info.default_n),
         info.description)
        for info in sorted(PROTOCOLS.values(), key=lambda i: (i.kind, i.name))
    ]
    name_w = max(len(r[0]) for r in rows)
    kind_w = max(len(r[1]) for r in rows)
    print(f"{'name':<{name_w}}  {'kind':<{kind_w}}  {'n':>2}  description")
    for name, kind, group, description in rows:
        print(f"{name:<{name_w}}  {kind:<{kind_w}}  {group:>2}  {description}")
    return 0


def _sweep_progress_printer():
    """A ``run_sweep`` progress callback streaming cells/sec + ETA to stderr.

    The first call (the cache-scan summary, ``report=None``) anchors the
    clock, so cells/sec measures executed cells only and cache hits don't
    inflate the rate.
    """
    from time import perf_counter

    state = {"start": None, "base": 0}

    def progress(done: int, total: int, report) -> None:
        if state["start"] is None:
            state["start"] = perf_counter()
            state["base"] = done
        executed = done - state["base"]
        elapsed = perf_counter() - state["start"]
        line = f"\r[{done}/{total}]"
        if executed and elapsed > 0:
            rate = executed / elapsed
            eta = (total - done) / rate
            line += f" {rate:.1f} cells/s ETA {eta:.0f}s"
        print(f"{line}   ", end="", file=sys.stderr, flush=True)

    return progress


def _sweep_shard_axis(args: argparse.Namespace, names, rates) -> int:
    """Scale-out sweep: shard count × group size at one offered rate.

    Each cell is an :class:`RsmRunSpec` built by
    :func:`~repro.engine.runner.rsm_sweep_grid`; 1-shard cells keep the
    default topology and therefore hit any pre-topology cache entries.
    """
    from repro.engine.runner import rsm_sweep_grid

    shard_counts = [int(s) for s in args.shards.split(",")]
    sizes = [int(s) for s in args.group_sizes.split(",")]
    rate = rates[0]
    specs: list = []
    for name in names:
        specs.extend(
            rsm_sweep_grid(
                name,
                rate=rate,
                duration=args.duration,
                shards=shard_counts,
                group_sizes=sizes,
                seed=args.seed,
                warmup=min(0.5, args.duration * 0.2),
                repeats=args.repeats,
                cluster=PAPER_LAN,
            )
        )
    print(
        f"sweeping {','.join(names)} over shards {shard_counts} × "
        f"group sizes {sizes} at {rate:.0f} ops/s ...",
        file=sys.stderr,
    )
    progress = _sweep_progress_printer() if args.progress else None
    sweep = run_sweep(specs, jobs=args.jobs, cache=args.cache, progress=progress)
    if progress is not None:
        print(file=sys.stderr)
    for note in sweep.notes:
        print(f"note     : {note}", file=sys.stderr)
    if args.cache is not None:
        print(
            f"cache    : {sweep.cache_hits} hits, {sweep.cache_misses} misses "
            f"({sweep.hit_rate:.0%} hit rate) in {args.cache}",
            file=sys.stderr,
        )

    # Pool repeats into one point per (protocol, shard count, group size).
    latency: dict[str, list[float]] = {}
    throughput: dict[str, list[float]] = {}
    reports = iter(sweep.reports)
    for name in names:
        series = {size: ([], []) for size in sizes}
        for _ in shard_counts:
            for size in sizes:
                pooled: list[float] = []
                ops = 0.0
                for _ in range(args.repeats):
                    report = next(reports)
                    pooled.extend(report.latencies)
                    ops += report.rsm["ops_per_s"]
                series[size][0].append(summarize(pooled).scaled(1e3).mean)
                series[size][1].append(ops / args.repeats)
        for size in sizes:
            label = f"{name} g{size}" if len(sizes) > 1 or len(names) > 1 else name
            latency[label] = series[size][0]
            throughput[label] = series[size][1]

    labels = list(latency)
    print(f"{'shards':<10}" + "".join(f"{label:<16}" for label in labels)
          + " (mean latency ms)")
    for i, groups in enumerate(shard_counts):
        row = f"{groups:<10d}"
        for label in labels:
            row += f"{latency[label][i]:<16.2f}"
        print(row)
    print()
    print(f"{'shards':<10}" + "".join(f"{label:<16}" for label in labels)
          + " (committed ops/s)")
    for i, groups in enumerate(shard_counts):
        row = f"{groups:<10d}"
        for label in labels:
            row += f"{throughput[label][i]:<16.0f}"
        print(row)
    if not args.no_chart:
        print()
        print(
            line_chart(
                latency,
                shard_counts,
                title=f"mean latency [ms] vs shards at {rate:.0f} ops/s",
            )
        )

    if args.json_out:
        document = {
            "schema": SWEEP_JSON_SCHEMA,
            "grid": {
                "protocols": names,
                "rate": rate,
                "shards": shard_counts,
                "group_sizes": sizes,
                "duration": args.duration,
                "seed": args.seed,
                "repeats": args.repeats,
            },
            "runs": [report.to_dict() for report in sweep.reports],
        }
        with open(args.json_out, "w") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote    : {args.json_out}", file=sys.stderr)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    names = [name.strip() for name in args.protocols.split(",") if name.strip()]
    unknown = [
        name
        for name in names
        if name not in PROTOCOLS or PROTOCOLS[name].kind != ABCAST
    ]
    if unknown:
        print(f"unknown protocols: {unknown}", file=sys.stderr)
        return 2
    rates = [float(r) for r in args.rates.split(",")]
    if args.shards is not None:
        return _sweep_shard_axis(args, names, rates)

    specs = sweep_grid(
        names,
        rates,
        duration=args.duration,
        n=args.n,
        seed=args.seed,
        warmup=min(0.5, args.duration * 0.2),
        repeats=args.repeats,
        cluster=PAPER_LAN,
    )
    for name in names:
        group = PROTOCOLS[name].default_n or args.n
        print(f"sweeping {name} (n={group}) ...", file=sys.stderr)
    progress = _sweep_progress_printer() if args.progress else None
    sweep = run_sweep(specs, jobs=args.jobs, cache=args.cache, progress=progress)
    if progress is not None:
        print(file=sys.stderr)  # terminate the \r progress line
    for note in sweep.notes:
        print(f"note     : {note}", file=sys.stderr)
    if args.cache is not None:
        print(
            f"cache    : {sweep.cache_hits} hits, {sweep.cache_misses} misses "
            f"({sweep.hit_rate:.0%} hit rate) in {args.cache}",
            file=sys.stderr,
        )

    # Pool repeats into one curve point per (protocol, rate).
    curves: dict[str, list[float]] = {}
    reports = iter(sweep.reports)
    for name in names:
        means: list[float] = []
        for _ in rates:
            pooled: list[float] = []
            for _ in range(args.repeats):
                pooled.extend(next(reports).latencies)
            means.append(summarize(pooled).scaled(1e3).mean)
        curves[name] = means

    print(f"{'msg/s':<10}" + "".join(f"{name:<16}" for name in names))
    for i, rate in enumerate(rates):
        row = f"{rate:<10.0f}"
        for name in names:
            row += f"{curves[name][i]:<16.2f}"
        print(row)
    if not args.no_chart:
        print()
        print(
            line_chart(
                curves,
                [int(r) for r in rates],
                title="mean latency [ms] vs throughput [msg/s]",
            )
        )

    if args.json_out:
        document = {
            "schema": SWEEP_JSON_SCHEMA,
            "grid": {
                "protocols": names,
                "rates": rates,
                "n": args.n,
                "duration": args.duration,
                "seed": args.seed,
                "repeats": args.repeats,
            },
            "runs": [report.to_dict() for report in sweep.reports],
        }
        with open(args.json_out, "w") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote    : {args.json_out}", file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.engine.runner import execute_run
    from repro.perf import format_perf, profile_call

    spec = AbcastRunSpec(
        protocol=args.protocol,
        rate=args.rate,
        duration=args.duration,
        n=args.n,
        seed=args.seed,
        warmup=min(0.5, args.duration * 0.2),
        cluster=PAPER_LAN,
    )
    if args.cprofile is not None:
        report, profile_lines = profile_call(
            execute_run, spec, collect_perf=True, top=args.cprofile
        )
    else:
        report, profile_lines = execute_run(spec, collect_perf=True), None
    perf = dict(report.perf)
    if profile_lines is not None:
        perf["profile"] = list(profile_lines)

    print(
        f"protocol : {args.protocol} (n={args.n}, {args.rate:.0f} msg/s, "
        f"{args.duration:g} s, seed {args.seed})"
    )
    print(format_perf(perf))
    print(
        f"run      : {report.delivered}/{report.offered} window messages "
        f"delivered, mean latency {report.mean_latency_ms:.3f} ms"
    )
    if profile_lines is not None:
        print()
        print("cProfile (use for ratios; tracing inflates wall time):")
        for line in profile_lines:
            print(f"  {line}")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(perf, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote    : {args.json_out}", file=sys.stderr)
    return 0


def _trace_export(args: argparse.Namespace) -> int:
    from repro.engine.runner import run_abcast_spec
    from repro.obs import ObsRuntime, export_chrome, export_jsonl

    nemesis = _parse_nemesis(args)
    spec = AbcastRunSpec(
        protocol=args.protocol,
        rate=args.rate,
        duration=args.duration,
        n=args.n,
        seed=args.seed,
        drain=2.0,
        cluster=PAPER_LAN,
        crash_at=_parse_crashes(args.crash),
        obs=True,
        nemesis=nemesis,
        # Partitions drop reliable-channel sends for good (no retransmit in
        # the paper's protocols), so messages broadcast into a partition
        # window may legitimately never deliver everywhere.
        require_all_delivered=nemesis is None,
    )
    obs = ObsRuntime.from_spec(spec)
    run_abcast_spec(spec, tracer=obs.tracer, obs=obs)
    writer = export_chrome if args.format == "chrome" else export_jsonl
    with open(args.out, "w", encoding="utf-8") as fh:
        count = writer(obs.tracer.records, fh, spec=spec.to_dict())
    print(f"wrote    : {count} records to {args.out} ({args.format})")
    return 0


def _trace_summary(args: argparse.Namespace) -> int:
    from repro.obs import SpanBuilder, load_trace
    from repro.sim.trace import KINDS

    header, rows = load_trace(args.file)
    counts: dict[str, int] = {}
    for row in rows:
        counts[row[2]] = counts.get(row[2], 0) + 1
    spec = header.get("spec") or {}
    if spec:
        print(f"spec     : {spec.get('protocol')} n={spec.get('n')} "
              f"rate={spec.get('rate')} seed={spec.get('seed')}")
    print(f"records  : {len(rows)}")
    for kind in sorted(counts):
        print(f"  {kind:<14} {counts[kind]}")
    summary = SpanBuilder().add_rows(rows).summary()
    print(f"consensus: {summary['decided']}/{summary['instances']} instances decided, "
          f"{summary['fast_path']} fast-path, {summary['forwarded']} forwarded, "
          f"max round {summary['max_round']}")
    if summary["steps_histogram"]:
        hist = ", ".join(
            f"{steps} step(s) x{count}"
            for steps, count in summary["steps_histogram"].items()
        )
        print(f"steps    : {hist}")
    txns = summary.get("txns") or {}
    if txns.get("count"):
        print(f"txns     : {txns['count']} transactions — "
              f"{txns['committed']} committed, {txns['aborted']} aborted, "
              f"{txns['unfinished']} in flight")
    broadcasts = summary["broadcasts"]
    if broadcasts["count"]:
        line = f"broadcast: {broadcasts['count']} messages"
        if "mean_latency" in broadcasts:
            line += (f", {broadcasts['delivered']} delivered, "
                     f"latency {broadcasts['min_latency'] * 1e3:.3f}-"
                     f"{broadcasts['max_latency'] * 1e3:.3f} ms "
                     f"(mean {broadcasts['mean_latency'] * 1e3:.3f} ms)")
        print(line)
    unknown = sorted(set(counts) - KINDS.ALL)
    if unknown:
        print(f"unknown kinds: {unknown}", file=sys.stderr)
        if args.strict:
            return 1
    return 0


def _trace_spans(args: argparse.Namespace) -> int:
    from repro.obs import SpanBuilder, load_trace

    _, rows = load_trace(args.file)
    builder = SpanBuilder().add_rows(rows)
    for span in builder.consensus_spans():
        label = "consensus" if span.instance is None else f"consensus[{span.instance}]"
        if span.decided:
            duration = (
                (span.decided_at - span.propose_at) * 1e3
                if span.propose_at is not None
                else float("nan")
            )
            print(f"p{span.pid} {label}: decided {span.decided_value!r} in "
                  f"{span.steps} step(s) via {span.via} ({duration:.3f} ms)")
        else:
            print(f"p{span.pid} {label}: undecided after {len(span.rounds)} round(s)")
        for entry in span.phase_breakdown():
            phase = f" {entry['phase']}" if "phase" in entry else ""
            print(f"    round {entry['round']}{phase}: "
                  f"{entry['duration'] * 1e3:.3f} ms from t={entry['start'] * 1e3:.3f} ms")
    for span in builder.broadcast_spans():
        latency = span.latency
        when = f"{latency * 1e3:.3f} ms" if latency is not None else "never delivered"
        print(f"msg {span.msg_id}: origin p{span.origin}, "
              f"{len(span.deliveries)} deliveries, first after {when}")
    for span in builder.txn_spans():
        votes = ", ".join(
            f"s{shard}={vote}" for shard, vote in sorted(span.votes.items())
        )
        if span.finished:
            outcome = (f"{span.decision} in {span.duration * 1e3:.3f} ms"
                       if span.duration is not None else span.decision)
        else:
            outcome = "in flight"
        print(f"txn {span.txid}: shards {span.shards} via p{span.coordinator_pid}, "
              f"votes [{votes}] — {outcome}")
    return 0


def _trace_diff(args: argparse.Namespace) -> int:
    from repro.obs import diff_traces, load_trace

    _, left = load_trace(args.left)
    _, right = load_trace(args.right)
    divergence = diff_traces(left, right)
    if divergence is None:
        print(f"identical: {len(left)} records")
        return 0
    index, left_row, right_row = divergence
    if left_row is None or right_row is None:
        # Strict prefix: no record disagrees, one trace just keeps going.
        longer = "right" if left_row is None else "left"
        extra = right_row if left_row is None else left_row
        trailing = max(len(left), len(right)) - index
        time, pid, kind, data = extra
        print(f"prefix: traces agree on the first {index} records; "
              f"{longer} has {trailing} extra trailing record(s)")
        print(f"  first extra ({longer}): "
              f"t={time:.6f} pid={pid} kind={kind} data={data!r}")
        return 1
    print(f"diverged at record {index}:")
    for name, row in (("left", left_row), ("right", right_row)):
        time, pid, kind, data = row
        print(f"  {name:<5}: t={time:.6f} pid={pid} kind={kind} data={data!r}")
    return 1


def _trace_critical_path(args: argparse.Namespace) -> int:
    from repro.obs import SpanBuilder, load_trace
    from repro.obs.causal import CausalGraph, critical_paths

    _, rows = load_trace(args.file)
    builder = SpanBuilder().add_rows(rows)
    graph = CausalGraph.from_rows(rows)
    paths = critical_paths(builder, graph)
    decided = [span for span in builder.consensus_spans() if span.decided]
    if args.json_out:
        print(json.dumps(
            [path.to_dict() for path in paths], indent=2, sort_keys=True
        ))
    else:
        for path in paths:
            label = (
                "consensus"
                if path.instance is None
                else f"consensus[{path.instance}]"
            )
            wire = (
                f", {path.network_time * 1e3:.3f} ms on the wire"
                if path.hops else ""
            )
            print(f"p{path.pid} {label}: {path.steps} step(s) via {path.via}, "
                  f"{len(path.hops)} hop(s) in {path.latency * 1e3:.3f} ms{wire}")
            for hop in path.hops:
                print(f"    #{hop.msg_id} {hop.kind} p{hop.src}→p{hop.dst} "
                      f"sent t={hop.sent_at * 1e3:.3f} ms, "
                      f"flight {hop.flight_time * 1e3:.3f} ms")
            if path.cause is not None:
                cause = path.cause
                op = cause.get("op")
                via_op = f" during nemesis op {op['op']}@{op['at']:g}s" if op else ""
                print(f"    cause: {cause['kind']} at t={cause['time'] * 1e3:.3f} ms "
                      f"(pid {cause['pid']}){via_op}")
    problems = []
    if len(paths) < len(decided):
        problems.append(
            f"{len(decided) - len(paths)} decided instance(s) "
            "with no resolvable critical path"
        )
    if graph.orphan_delivers:
        problems.append(
            f"{len(graph.orphan_delivers)} delivery record(s) "
            "without a matching send"
        )
    for problem in problems:
        print(f"problem  : {problem}", file=sys.stderr)
    if not paths and not problems:
        print("no decided instances in this trace")
    return 1 if args.strict and problems else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    return {
        "export": _trace_export,
        "summary": _trace_summary,
        "spans": _trace_spans,
        "critical-path": _trace_critical_path,
        "diff": _trace_diff,
    }[args.trace_command](args)


def _obs_record(args: argparse.Namespace) -> int:
    from repro.engine import RsmRunSpec, RunContext, TopologySpec
    from repro.engine.runner import execute_run
    from repro.obs import ObsRuntime, Warehouse, build_entry

    nemesis = _parse_nemesis(args)
    if args.shards:
        # RSM service run — report.rsm feeds the warehouse's ops/latency
        # subset and (with --parallel) the parallel_speedup distillation.
        spec = RsmRunSpec(
            protocol=args.protocol,
            rate=args.rate,
            duration=args.duration,
            n=args.n,
            clients=args.clients,
            seed=args.seed,
            cluster=PAPER_LAN,
            crash_at=_parse_crashes(args.crash),
            obs=True,
            nemesis=nemesis,
            topology=TopologySpec(groups=args.shards),
            parallel=args.parallel,
            workers=args.workers,
        )
    else:
        spec = AbcastRunSpec(
            protocol=args.protocol,
            rate=args.rate,
            duration=args.duration,
            n=args.n,
            seed=args.seed,
            drain=2.0,
            cluster=PAPER_LAN,
            crash_at=_parse_crashes(args.crash),
            obs=True,
            nemesis=nemesis,
            require_all_delivered=nemesis is None,
        )
    obs = ObsRuntime.from_spec(spec)
    ctx = RunContext(tracer=obs.tracer, obs=obs)
    report = execute_run(spec, ctx=ctx)
    entry = build_entry(report, obs.tracer.records, label=args.label)
    index = Warehouse(args.warehouse).append(entry)
    latency = entry.get("latency") or {}
    mean = latency.get("mean")
    mean_text = f"{mean * 1e3:.3f} ms" if mean is not None else "-"
    print(f"recorded : entry {index} in {args.warehouse} "
          f"({entry['protocol']} seed {entry['seed']}, "
          f"mean latency {mean_text}, key {entry['key'][:12]})")
    return 0


def _obs_report(args: argparse.Namespace) -> int:
    from repro.obs import Warehouse
    from repro.obs.warehouse import format_entry

    entries = Warehouse(args.warehouse).load()
    if not entries:
        print(f"{args.warehouse}: empty warehouse")
        return 0
    print(f"{'idx':>3}  {'protocol':<12} {'seed':>6} {'decided':>9} "
          f"{'fast':>4} {'mean ms':>8} {'cps':>3} {'causes':<16} key")
    for index, entry in enumerate(entries):
        print(format_entry(index, entry))
    return 0


def _obs_compare(args: argparse.Namespace) -> int:
    from repro.obs import Warehouse, compare_entries
    from repro.obs.warehouse import DEFAULT_TOLERANCE

    store = Warehouse(args.warehouse)
    base = store.entry(args.base)
    fresh = store.entry(args.fresh)
    tolerance = DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    lines, failures = compare_entries(base, fresh, tolerance=tolerance)
    print(f"comparing entry {args.fresh} against entry {args.base} "
          f"(tolerance {tolerance:.0%})")
    for line in lines:
        print(line)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("ok: no latency regression")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    return {
        "record": _obs_record,
        "report": _obs_report,
        "compare": _obs_compare,
    }[args.obs_command](args)


def _cmd_table1(args: argparse.Namespace) -> int:
    print(format_table1(args.n))
    return 0


def _cmd_theorem1(args: argparse.Namespace) -> int:
    from repro.core.lowerbound import prove_theorem1

    restrict = None if args.full else [(1, 2, 3), (1, 2, 4), (1, 3, 4), (2, 3, 4)]
    certificate = prove_theorem1(restrict_hears=restrict)
    print(certificate.explain())
    return 0


def _fuzz_base_spec(args: argparse.Namespace):
    """The fault-free base spec a fuzz campaign mutates around."""
    from repro.engine import RsmRunSpec
    from repro.sim.network import UniformDelay

    if args.kind == "consensus":
        return ConsensusRunSpec(
            protocol=args.protocol or "p-consensus",
            proposals=tuple(f"v{pid}" for pid in range(args.n)),
            seed=0,
            cluster=ClusterSpec(
                delay=UniformDelay(1e-4, 3e-3),
                detection_delay=args.detection_delay,
            ),
            horizon=5.0,
        )
    if args.kind == "abcast":
        return AbcastRunSpec(
            protocol=args.protocol or "cabcast-p",
            rate=100.0,
            duration=0.3,
            n=args.n,
            seed=0,
        )
    return RsmRunSpec(
        protocol=args.protocol or "cabcast-l",
        rate=120.0,
        duration=0.3,
        n=args.n,
        clients=4,
        seed=0,
    )


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.nemesis.fuzz import (
        DEFAULT_OPS,
        FULL_OPS,
        fuzz_schedules,
        replay_repro,
        save_repro,
    )

    if args.replay:
        from repro.errors import ReproError

        try:
            err = replay_repro(args.replay)
        except ReproError as mismatch:
            print(f"replay FAILED: {mismatch}")
            return 2
        print(f"reproduced {type(err).__name__}: {err}")
        return 0

    if args.ops is None:
        include = DEFAULT_OPS
    elif args.ops == "all":
        include = FULL_OPS
    else:
        include = tuple(args.ops.split(","))
    spec = _fuzz_base_spec(args)

    def progress(trials: int, findings: int, coverage: int) -> None:
        print(
            f"\r[{trials}/{args.budget}] findings={findings} coverage={coverage}",
            end="",
            file=sys.stderr,
            flush=True,
        )

    result = fuzz_schedules(
        spec,
        budget=args.budget,
        seed=args.seed,
        max_ops=args.max_ops,
        window=args.window,
        include=include,
        shrink=not args.no_shrink,
        max_findings=args.max_findings,
        treat_termination_as_violation=args.termination_as_violation,
        progress=progress,
    )
    print(file=sys.stderr)
    print(
        f"trials={result.trials} violations={result.violations} "
        f"terminations={result.terminations} coverage={len(result.coverage)}"
    )
    for finding in result.findings:
        print(
            f"finding: {finding.error_type} (trial {finding.trial_index}, "
            f"{len(finding.schedule)} ops shrunk to {len(finding.shrunk)})"
        )
        print(f"  {finding.shrunk_error_message}")
        for op in finding.shrunk.ops:
            print(f"  op: {op.to_dict()}")
    if result.findings and args.save:
        path = save_repro(result.findings[0], args.save)
        print(f"repro written to {path}")
    return 1 if result.findings else 0


_COMMANDS = {
    "consensus": _cmd_consensus,
    "abcast": _cmd_abcast,
    "rsm": _cmd_rsm,
    "sweep": _cmd_sweep,
    "profile": _cmd_profile,
    "trace": _cmd_trace,
    "obs": _cmd_obs,
    "fuzz": _cmd_fuzz,
    "protocols": _cmd_protocols,
    "table1": _cmd_table1,
    "theorem1": _cmd_theorem1,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
