"""Command-line interface: run the paper's experiments from a shell.

``python -m repro <command>`` exposes the main entry points:

* ``consensus`` — one consensus instance on a simulated cluster;
* ``abcast``    — an atomic-broadcast session with a Poisson workload;
* ``sweep``     — the Figure-2/3 latency-vs-throughput experiment, with an
  ASCII chart;
* ``table1``    — the analytical Table 1 for a given group size;
* ``theorem1``  — the executable Theorem-1 impossibility certificate.

Examples::

    python -m repro consensus --protocol p-consensus --proposals a,b,c,d
    python -m repro abcast --protocol cabcast-l --rate 200 --duration 1.0
    python -m repro sweep --protocols cabcast-p,wabcast --rates 20,100,300,500
    python -m repro theorem1
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.complexity import format_table1
from repro.analysis.textplot import line_chart
from repro.harness.abcast_runner import run_abcast
from repro.harness.consensus_runner import run_consensus
from repro.harness.factories import ABCAST_FACTORIES, CONSENSUS_FACTORIES
from repro.workload.experiment import latency_vs_throughput
from repro.workload.generator import poisson_schedule

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="One-step Consensus with Zero-Degradation (DSN 2006) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_cons = sub.add_parser("consensus", help="run one consensus instance")
    p_cons.add_argument(
        "--protocol", choices=sorted(CONSENSUS_FACTORIES), default="p-consensus"
    )
    p_cons.add_argument(
        "--proposals",
        default="a,b,c,d",
        help="comma-separated proposals, one per process (defines n)",
    )
    p_cons.add_argument("--seed", type=int, default=0)
    p_cons.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="PID:TIME",
        help="crash PID at TIME seconds (repeatable)",
    )
    p_cons.add_argument("--detection-delay", type=float, default=0.0)

    p_ab = sub.add_parser("abcast", help="run an atomic-broadcast session")
    p_ab.add_argument(
        "--protocol", choices=sorted(ABCAST_FACTORIES), default="cabcast-p"
    )
    p_ab.add_argument("--n", type=int, default=4)
    p_ab.add_argument("--rate", type=float, default=100.0, help="aggregate msg/s")
    p_ab.add_argument("--duration", type=float, default=0.5)
    p_ab.add_argument("--seed", type=int, default=0)

    p_sweep = sub.add_parser("sweep", help="latency vs throughput (Figures 2-3)")
    p_sweep.add_argument(
        "--protocols",
        default="cabcast-p,cabcast-l,wabcast",
        help="comma-separated names from: " + ",".join(sorted(ABCAST_FACTORIES)),
    )
    p_sweep.add_argument("--rates", default="20,100,300,500")
    p_sweep.add_argument("--n", type=int, default=4)
    p_sweep.add_argument("--duration", type=float, default=1.5)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--no-chart", action="store_true")

    p_t1 = sub.add_parser("table1", help="print the analytical Table 1")
    p_t1.add_argument("--n", type=int, default=4)

    p_thm = sub.add_parser("theorem1", help="derive the Theorem-1 certificate")
    p_thm.add_argument(
        "--full",
        action="store_true",
        help="search the unrestricted hear-set space (slower)",
    )

    return parser


def _cmd_consensus(args: argparse.Namespace) -> int:
    values = args.proposals.split(",")
    proposals = {pid: value for pid, value in enumerate(values)}
    crash_at = {}
    for item in args.crash:
        pid_text, _, time_text = item.partition(":")
        crash_at[int(pid_text)] = float(time_text)
    result = run_consensus(
        CONSENSUS_FACTORIES[args.protocol],
        proposals,
        seed=args.seed,
        crash_at=crash_at or None,
        detection_delay=args.detection_delay,
        horizon=30.0,
    )
    print(f"protocol : {args.protocol} (n={len(values)})")
    print(f"proposals: {proposals}")
    for pid, record in sorted(result.records.items()):
        print(
            f"  p{pid} decided {record.value!r} after {record.steps} step(s) "
            f"via {record.via} at t={record.at * 1e3:.3f} ms"
        )
    if result.crashed:
        print(f"crashed  : {result.crashed}")
    print(f"messages : {result.messages_sent}")
    return 0


def _cmd_abcast(args: argparse.Namespace) -> int:
    schedules = poisson_schedule(args.n, args.rate, args.duration, seed=args.seed)
    result = run_abcast(
        ABCAST_FACTORIES[args.protocol],
        args.n,
        schedules,
        seed=args.seed,
        horizon=args.duration + 2.0,
    )
    sent = sum(len(s) for s in schedules.values())
    latencies = result.latencies()
    mean_ms = sum(latencies) / len(latencies) * 1e3 if latencies else float("nan")
    print(f"protocol : {args.protocol} (n={args.n})")
    print(f"offered  : {sent} messages at {args.rate:.0f} msg/s")
    print(f"delivered: {result.delivered_count} (total order verified)")
    print(f"latency  : mean {mean_ms:.3f} ms over {len(latencies)} samples")
    print(f"messages : {result.network_stats['sent']} on the wire")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    names = [name.strip() for name in args.protocols.split(",") if name.strip()]
    unknown = [name for name in names if name not in ABCAST_FACTORIES]
    if unknown:
        print(f"unknown protocols: {unknown}", file=sys.stderr)
        return 2
    rates = [float(r) for r in args.rates.split(",")]
    curves = {}
    for name in names:
        n = 3 if name == "multipaxos" else args.n
        print(f"sweeping {name} (n={n}) ...", file=sys.stderr)
        curves[name] = latency_vs_throughput(
            ABCAST_FACTORIES[name],
            n,
            rates,
            duration=args.duration,
            warmup=min(0.5, args.duration * 0.2),
            seed=args.seed,
        )
    print(f"{'msg/s':<10}" + "".join(f"{name:<16}" for name in names))
    for i, rate in enumerate(rates):
        row = f"{rate:<10.0f}"
        for name in names:
            row += f"{curves[name][i].mean_latency_ms:<16.2f}"
        print(row)
    if not args.no_chart:
        print()
        print(
            line_chart(
                {name: [p.mean_latency_ms for p in pts] for name, pts in curves.items()},
                [int(r) for r in rates],
                title="mean latency [ms] vs throughput [msg/s]",
            )
        )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    print(format_table1(args.n))
    return 0


def _cmd_theorem1(args: argparse.Namespace) -> int:
    from repro.core.lowerbound import prove_theorem1

    restrict = None if args.full else [(1, 2, 3), (1, 2, 4), (1, 3, 4), (2, 3, 4)]
    certificate = prove_theorem1(restrict_hears=restrict)
    print(certificate.explain())
    return 0


_COMMANDS = {
    "consensus": _cmd_consensus,
    "abcast": _cmd_abcast,
    "sweep": _cmd_sweep,
    "table1": _cmd_table1,
    "theorem1": _cmd_theorem1,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
