"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing programming errors (``ValueError``/``TypeError`` style
misuse raises :class:`ConfigurationError`) from runtime protocol violations
(:class:`ProtocolViolation` and its subclasses).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An experiment, cluster or protocol was configured inconsistently.

    Examples: ``f >= n/3`` for a one-step protocol, a delay model with a
    negative mean, or two nodes registered under the same pid.
    """


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that was
    already shut down, or re-entrant calls into :meth:`Simulator.run`.
    """


class ProtocolViolation(ReproError):
    """A safety property of a protocol was observed to be violated.

    Raised by the built-in checkers (agreement, validity, total order,
    integrity).  A correct protocol implementation never triggers these; the
    fault-injection tests use them to prove the checkers have teeth and the
    lower-bound demo uses them to exhibit the impossibility result.
    """


class AgreementViolation(ProtocolViolation):
    """Two processes decided (or a-delivered) differently."""


class ValidityViolation(ProtocolViolation):
    """A decided value was never proposed (or a message delivered but never broadcast)."""


class IntegrityViolation(ProtocolViolation):
    """A message was a-delivered more than once by the same process."""


class TotalOrderViolation(ProtocolViolation):
    """Two processes a-delivered the same messages in incompatible orders."""


class LinearizabilityViolation(ProtocolViolation):
    """A client-observed result is inconsistent with any linearization of the
    committed command history (e.g. a read returned a value the replayed
    per-key history cannot produce at its commit point)."""


class SerializabilityViolation(ProtocolViolation):
    """The cross-shard commit order admits no single serial order: the
    conflict graph over committed transactions (edges from per-shard commit
    precedence between transactions touching a shared shard) contains a
    cycle."""


class TerminationFailure(ReproError):
    """A run that was expected to decide/deliver did not do so within its horizon."""
