"""Stable storage: state that survives crash-stop-and-recover.

The paper's section 2 notes that Paxos-like protocols "allow for the
recovery of crashed processes" (Aguilera et al., reference [1]).  To exercise
that, the simulator offers per-process stores that live *outside* the node:
a crash destroys the process's volatile state, a recovery builds a fresh
process instance that re-reads its store.

Writes can be given a latency (an fsync cost) charged through the node's
environment; by default persistence is instantaneous, which is the usual
model for protocol-level analysis.
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = ["StableStore", "StorageFabric"]


class StableStore:
    """A durable key-value store for one process."""

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self.writes = 0
        self.reads = 0

    def put(self, key: str, value: Any) -> None:
        self.writes += 1
        self._data[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        self.reads += 1
        return self._data.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> Iterator[str]:
        return iter(self._data)

    def clear(self) -> None:
        """Wipe the store (simulating disk loss — NOT called by crashes)."""
        self._data.clear()


class StorageFabric:
    """One :class:`StableStore` per process id, created on demand."""

    def __init__(self) -> None:
        self._stores: dict[int, StableStore] = {}

    def store(self, pid: int) -> StableStore:
        existing = self._stores.get(pid)
        if existing is None:
            existing = StableStore()
            self._stores[pid] = existing
        return existing
