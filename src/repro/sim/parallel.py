"""Conservative parallel discrete-event simulation: partitioned kernels.

A single :class:`~repro.sim.kernel.Simulator` dispatches events on one
core.  This module runs a simulation as *partitions* — disjoint pid groups,
each with its own kernel (and its own per-purpose RNG streams, derived
stably from the partition id) — in worker processes, synchronised with the
classic conservative (Chandy–Misra / bounded-lag) discipline:

* **Lookahead.**  A message crossing a partition boundary takes at least
  ``lookahead`` seconds — the provable floor of the cross-partition delay
  model, exposed by :meth:`DelayModel.min_delay`.  A partition at time ``t``
  therefore cannot be affected by any neighbour event after ``t``, until
  ``t + lookahead``.
* **Windows.**  Execution proceeds in global windows of that width: every
  partition runs to the window end, reports its outbound cross-partition
  messages (an empty report is the null message that still advances its
  neighbours' clock bound), the parent routes them, and the next window
  starts.  A message sent inside window ``[t, t+L)`` arrives strictly after
  ``t+L``, so routing at the barrier never delivers into a partition's past.
* **Determinism.**  Inbound messages are injected in ``(time, seq, src)``
  order — a total order, since ``(src, seq)`` is unique — so the receiving
  kernel schedules them identically no matter which worker produced them
  first.  Partition seeds and windows depend only on the plan, never on the
  worker count, so ``workers=1`` (in-process) and ``workers=N`` produce
  byte-identical traces.

Plans whose partitions never exchange messages (``lookahead=None``, e.g. a
sharded RSM with no cross-shard sessions) run a single window to the
horizon.  Models without a positive delay floor are rejected up front
(:func:`required_lookahead`) instead of deadlocking the scheduler at zero
lookahead.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Protocol, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "CrossMessage",
    "ParallelStats",
    "PartitionHarness",
    "PartitionPlan",
    "required_lookahead",
    "run_partitions",
]


@dataclass(frozen=True)
class CrossMessage:
    """One message crossing a partition boundary.

    ``time`` is the *arrival* time at the destination (the sender samples
    the delay from its own streams, so the value is seed-determined);
    ``seq`` is the sender's cross-send sequence number and ``src`` the
    sending partition — ``(time, seq, src)`` is the deterministic injection
    order, total because ``(src, seq)`` never repeats.
    """

    time: float
    seq: int
    src: int
    dst: int
    src_pid: int
    dst_pid: int
    payload: Any
    channel: str

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.seq, self.src)


def required_lookahead(model: Any) -> float:
    """The provable cross-partition delay floor of ``model``, validated.

    Raises :class:`ConfigurationError` for models without a
    :meth:`~repro.sim.network.DelayModel.min_delay` or whose floor is zero
    (or negative): a conservative scheduler's window width is the lookahead,
    and zero lookahead means zero-width windows — a deadlock, not a run.
    """
    probe = getattr(model, "min_delay", None)
    if probe is None:
        raise ConfigurationError(
            f"{type(model).__name__} does not expose min_delay(); conservative "
            "parallel execution needs a provable cross-partition delay floor"
        )
    floor = probe()
    if floor <= 0.0:
        raise ConfigurationError(
            f"{type(model).__name__} has a zero/unbounded-below delay floor "
            f"(min_delay() == {floor!r}): conservative lookahead would be 0 "
            "and the parallel scheduler would deadlock — give cross-partition "
            "links a delay model with a positive minimum"
        )
    return floor


@dataclass(frozen=True)
class PartitionPlan:
    """How a simulation splits into partitions.

    ``groups[i]`` is the pid membership of partition ``i``; ``lookahead`` is
    the conservative window width (``None`` when the partitions provably
    never exchange messages, which collapses execution to one window).  The
    plan is pure data derived from the spec — never from the worker count —
    which is what makes parallel runs byte-identical across worker counts.
    """

    groups: tuple[tuple[int, ...], ...]
    lookahead: float | None = None

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigurationError("partition plan needs at least one group")
        seen: set[int] = set()
        for group in self.groups:
            if not group:
                raise ConfigurationError("empty partition in plan")
            overlap = seen.intersection(group)
            if overlap:
                raise ConfigurationError(
                    f"pids {sorted(overlap)} appear in more than one partition"
                )
            seen.update(group)
        if self.lookahead is not None and self.lookahead <= 0.0:
            raise ConfigurationError(
                f"lookahead must be positive, got {self.lookahead!r} "
                "(zero lookahead deadlocks a conservative scheduler)"
            )

    @property
    def partitions(self) -> int:
        return len(self.groups)

    def partition_of(self, pid: int) -> int:
        for index, group in enumerate(self.groups):
            if pid in group:
                return index
        raise ConfigurationError(f"pid {pid} is in no partition")

    def window_ends(self, horizon: float) -> list[float]:
        """Window-end times up to (and always including) ``horizon``."""
        if self.lookahead is None or self.partitions == 1:
            return [horizon]
        ends: list[float] = []
        t = self.lookahead
        while t < horizon:
            ends.append(t)
            t += self.lookahead
        ends.append(horizon)
        return ends


class PartitionHarness(Protocol):
    """What one partition looks like to the conservative scheduler.

    Implementations own a :class:`~repro.sim.kernel.Simulator` (plus
    whatever model sits on it) for one partition and are built *inside* the
    worker process by the picklable ``build`` callable given to
    :func:`run_partitions`.
    """

    def inject(self, messages: Sequence[CrossMessage]) -> None:
        """Schedule inbound cross-partition arrivals (already sorted)."""
        ...

    def advance(self, until: float) -> list[CrossMessage]:
        """Run the partition kernel to ``until``; return outbound messages."""
        ...

    def pending(self) -> bool:
        """True when events remain queued past the last window bound."""
        ...

    def stopped(self) -> bool:
        """True when the partition's kernel stopped mid-window."""
        ...

    def finish(self) -> Any:
        """Tear down and return the partition's picklable outcome."""
        ...


@dataclass
class ParallelStats:
    """Counters of one conservative-parallel execution.

    Everything except ``blocked_time`` (wall-clock seconds the parent spent
    waiting on stragglers after the first worker finished each window) is
    deterministic: a function of the plan and the seed, identical across
    worker counts.
    """

    partitions: int
    workers: int
    lookahead: float | None
    windows: int = 0
    null_messages: int = 0
    cross_messages: int = 0
    lookahead_stalls: int = 0
    blocked_time: float = 0.0
    events_by_partition: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "partitions": self.partitions,
            "workers": self.workers,
            "lookahead": self.lookahead,
            "windows": self.windows,
            "null_messages": self.null_messages,
            "cross_messages": self.cross_messages,
            "lookahead_stalls": self.lookahead_stalls,
            "blocked_time": self.blocked_time,
            "events_by_partition": list(self.events_by_partition),
        }


# --------------------------------------------------------------- worker side


def _worker_main(conn, build, assigned) -> None:
    """Worker process loop: build the assigned partitions, serve windows."""
    try:
        harnesses = {
            partition: build(partition, payload) for partition, payload in assigned
        }
    except BaseException:
        conn.send(("err", traceback.format_exc()))
        conn.close()
        return
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        op = message[0]
        try:
            if op == "advance":
                _, until, inbound = message
                replies = {}
                for partition in sorted(harnesses):
                    harness = harnesses[partition]
                    batch = inbound.get(partition)
                    if batch:
                        harness.inject(batch)
                    out = harness.advance(until)
                    replies[partition] = (out, harness.pending(), harness.stopped())
                conn.send(("ok", replies))
            elif op == "finish":
                conn.send(
                    ("ok", {p: harnesses[p].finish() for p in sorted(harnesses)})
                )
                break
            else:  # pragma: no cover - protocol misuse
                conn.send(("err", f"unknown op {op!r}"))
                break
        except BaseException:
            conn.send(("err", traceback.format_exc()))
            break
    conn.close()


# --------------------------------------------------------------- parent side


def _route(
    plan: PartitionPlan,
    outbound: dict[int, list[CrossMessage]],
    inboxes: dict[int, list[CrossMessage]],
    stats: ParallelStats,
) -> None:
    """Fold each partition's window report into the next window's inboxes."""
    for partition in sorted(outbound):
        messages = outbound[partition]
        if not messages:
            stats.null_messages += 1
            continue
        stats.cross_messages += len(messages)
        for msg in messages:
            if msg.dst == partition:
                raise ConfigurationError(
                    f"partition {partition} routed a message to itself "
                    f"(pid {msg.dst_pid} is local; boundary misconfigured)"
                )
            inboxes.setdefault(msg.dst, []).append(msg)


def run_partitions(
    build: Callable[[int, Any], PartitionHarness],
    payloads: Sequence[Any],
    plan: PartitionPlan,
    horizon: float,
    workers: int = 1,
) -> tuple[list[Any], ParallelStats]:
    """Run every partition of ``plan`` to ``horizon``; return their outcomes.

    ``build(partition_index, payloads[partition_index])`` must be a
    *picklable* (module-level) callable returning a
    :class:`PartitionHarness`; with ``workers > 1`` it runs inside worker
    processes.  Outcomes come back in partition order.  The result is
    byte-identical for every ``workers`` value: the worker count only
    decides where partitions execute, never what they compute.
    """
    if len(payloads) != plan.partitions:
        raise ConfigurationError(
            f"{len(payloads)} payloads for {plan.partitions} partitions"
        )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if horizon <= 0.0:
        raise ConfigurationError(f"horizon must be positive, got {horizon!r}")
    workers = min(workers, plan.partitions)
    stats = ParallelStats(
        partitions=plan.partitions, workers=workers, lookahead=plan.lookahead
    )
    window_ends = plan.window_ends(horizon)
    if workers == 1:
        outcomes = _run_in_process(build, payloads, plan, window_ends, stats)
    else:
        outcomes = _run_multiprocess(
            build, payloads, plan, window_ends, workers, stats
        )
    return outcomes, stats


def _run_in_process(build, payloads, plan, window_ends, stats) -> list[Any]:
    """The ``workers=1`` path: same windows, same routing, no processes."""
    harnesses = [
        build(partition, payloads[partition])
        for partition in range(plan.partitions)
    ]
    inboxes: dict[int, list[CrossMessage]] = {}
    final = window_ends[-1]
    halted = False
    for until in window_ends:
        stats.windows += 1
        outbound: dict[int, list[CrossMessage]] = {}
        for partition, harness in enumerate(harnesses):
            batch = inboxes.pop(partition, None)
            if batch:
                batch.sort(key=lambda m: m.sort_key)
                harness.inject(batch)
            outbound[partition] = harness.advance(until)
            if until < final and harness.pending():
                stats.lookahead_stalls += 1
            if harness.stopped():
                halted = True
        _route(plan, outbound, inboxes, stats)
        if halted:
            break
    outcomes = [harness.finish() for harness in harnesses]
    stats.events_by_partition = [
        outcome.events_processed if hasattr(outcome, "events_processed") else 0
        for outcome in outcomes
    ]
    return outcomes


def _run_multiprocess(build, payloads, plan, window_ends, workers, stats):
    """Fan partitions over worker processes, one barrier per window."""
    import multiprocessing as mp

    assignment = {
        w: [
            (partition, payloads[partition])
            for partition in range(plan.partitions)
            if partition % workers == w
        ]
        for w in range(workers)
    }
    procs: list[mp.Process] = []
    pipes = {}
    try:
        for w in range(workers):
            parent_end, child_end = mp.Pipe()
            proc = mp.Process(
                target=_worker_main,
                args=(child_end, build, assignment[w]),
                daemon=True,
            )
            proc.start()
            child_end.close()
            pipes[w] = parent_end
            procs.append(proc)

        inboxes: dict[int, list[CrossMessage]] = {}
        final = window_ends[-1]
        halted = False
        for until in window_ends:
            stats.windows += 1
            for w in range(workers):
                batch = {}
                for partition, _ in assignment[w]:
                    msgs = inboxes.pop(partition, None)
                    if msgs:
                        msgs.sort(key=lambda m: m.sort_key)
                        batch[partition] = msgs
                pipes[w].send(("advance", until, batch))
            outbound: dict[int, list[CrossMessage]] = {}
            first_done: float | None = None
            for w in range(workers):
                status, payload = pipes[w].recv()
                now = perf_counter()
                if first_done is None:
                    first_done = now
                if status != "ok":
                    raise ConfigurationError(
                        f"parallel worker {w} failed:\n{payload}"
                    )
                for partition, (out, pending, was_stopped) in payload.items():
                    outbound[partition] = out
                    if until < final and pending:
                        stats.lookahead_stalls += 1
                    if was_stopped:
                        halted = True
            if first_done is not None:
                stats.blocked_time += perf_counter() - first_done
            _route(plan, outbound, inboxes, stats)
            if halted:
                break

        outcomes: list[Any] = [None] * plan.partitions
        for w in range(workers):
            pipes[w].send(("finish",))
        for w in range(workers):
            status, payload = pipes[w].recv()
            if status != "ok":
                raise ConfigurationError(f"parallel worker {w} failed:\n{payload}")
            for partition, outcome in payload.items():
                outcomes[partition] = outcome
        stats.events_by_partition = [
            outcome.events_processed if hasattr(outcome, "events_processed") else 0
            for outcome in outcomes
        ]
        return outcomes
    finally:
        for pipe in pipes.values():
            pipe.close()
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5.0)
