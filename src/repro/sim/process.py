"""Process model shared by the simulator and the asyncio runtime.

A *process* (in the distributed-computing sense, section 3 of the paper) is
an event-driven state machine: it reacts to ``on_start``, ``on_message`` and
``on_timer`` callbacks and acts on the world exclusively through its
:class:`Environment`.  Because the environment is abstract, the very same
protocol code runs on the deterministic discrete-event simulator
(:mod:`repro.sim.node`) and on the live asyncio runtime
(:mod:`repro.runtime`).

Protocol composition
--------------------
A node usually stacks several protocols (C-Abcast on top of a consensus
module on top of a failure detector).  Composition is done with *scoped
environments*: a host process attaches sub-modules under a scope tuple, and
the host's dispatcher routes :class:`Scoped` messages and timers back to the
right sub-module.  This mirrors how the paper "exchanges the consensus
module of C-Abcast" between experiments (section 8.1).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError

__all__ = ["Environment", "Process", "Scoped", "ScopedEnvironment", "HostProcess"]


class Environment(abc.ABC):
    """Everything a process may do to the outside world."""

    pid: int
    peers: tuple[int, ...]
    rng: random.Random

    @property
    def n(self) -> int:
        """Total number of processes in the group."""
        return len(self.peers)

    @abc.abstractmethod
    def send(self, dst: int, msg: Any) -> None:
        """Send ``msg`` to process ``dst`` over the reliable channel."""

    @abc.abstractmethod
    def datagram(self, dst: int, msg: Any) -> None:
        """Send ``msg`` to ``dst`` over the unordered datagram channel."""

    def send_many(self, dsts: tuple[int, ...], msg: Any) -> None:
        """Send ``msg`` to each pid in ``dsts``, in order (reliable channel).

        Equivalent to looping :meth:`send`; environments backed by the
        simulated network override it to reach the fan-out fast path.
        """
        for dst in dsts:
            self.send(dst, msg)

    def datagram_many(self, dsts: tuple[int, ...], msg: Any) -> None:
        """Send ``msg`` to each pid in ``dsts``, in order (datagram channel)."""
        for dst in dsts:
            self.datagram(dst, msg)

    def broadcast(self, msg: Any) -> None:
        """Send ``msg`` to every process, including the sender itself."""
        self.send_many(self.peers, msg)

    def datagram_broadcast(self, msg: Any) -> None:
        """Broadcast over the datagram channel (used by the WAB oracle)."""
        self.datagram_many(self.peers, msg)

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (virtual or wall-clock)."""

    @abc.abstractmethod
    def set_timer(self, name: Any, delay: float) -> None:
        """(Re)arm the named timer to fire ``delay`` seconds from now."""

    @abc.abstractmethod
    def cancel_timer(self, name: Any) -> None:
        """Cancel the named timer if armed; no-op otherwise."""


class Process(abc.ABC):
    """Base class for event-driven protocol processes."""

    env: Environment

    def bind(self, env: Environment) -> None:
        """Attach the process to its environment.  Called once by the runtime."""
        self.env = env

    def on_start(self) -> None:
        """Called once when the node boots."""

    def on_message(self, src: int, msg: Any) -> None:
        """Called for every message addressed to this process."""

    def on_timer(self, name: Any) -> None:
        """Called when a timer armed through the environment fires."""

    def on_crash(self) -> None:
        """Called when the node hosting this process is crashed (simulation only)."""


@dataclass(frozen=True, slots=True)
class Scoped:
    """A message or timer name namespaced to a sub-module."""

    scope: tuple
    inner: Any


class ScopedEnvironment(Environment):
    """Environment view handed to a sub-module attached under a scope.

    Sends are wrapped in :class:`Scoped` envelopes; timers get scoped names.
    Peer list, pid, clock and randomness are shared with the host.
    """

    def __init__(self, host_env: Environment, scope: tuple) -> None:
        self._host = host_env
        self._scope = scope
        self.pid = host_env.pid
        self.peers = host_env.peers
        self.rng = host_env.rng

    @property
    def scope(self) -> tuple:
        return self._scope

    def send(self, dst: int, msg: Any) -> None:
        self._host.send(dst, Scoped(self._scope, msg))

    def datagram(self, dst: int, msg: Any) -> None:
        self._host.datagram(dst, Scoped(self._scope, msg))

    def send_many(self, dsts: tuple[int, ...], msg: Any) -> None:
        # Wrap once and share the frozen envelope across all destinations:
        # the network's byte accounting then pays one repr per fan-out
        # instead of n, and per-send allocation drops.  Receivers treat
        # messages as immutable values, so sharing is observationally
        # identical to wrapping per destination.
        self._host.send_many(dsts, Scoped(self._scope, msg))

    def datagram_many(self, dsts: tuple[int, ...], msg: Any) -> None:
        self._host.datagram_many(dsts, Scoped(self._scope, msg))

    def now(self) -> float:
        return self._host.now()

    def set_timer(self, name: Any, delay: float) -> None:
        self._host.set_timer(Scoped(self._scope, name), delay)

    def cancel_timer(self, name: Any) -> None:
        self._host.cancel_timer(Scoped(self._scope, name))


class HostProcess(Process):
    """A process that hosts scoped sub-modules and routes traffic to them.

    Sub-modules are any objects exposing ``on_message(src, msg)`` and
    optionally ``on_timer(name)`` / ``on_start()``.  Messages for scopes with
    no attached module are offered to :meth:`on_unrouted`, which protocol
    stacks override to create instances on demand (e.g. a consensus instance
    for a round this process has not reached yet).
    """

    def __init__(self) -> None:
        self._modules: dict[tuple, Any] = {}

    # ------------------------------------------------------------ composition

    def attach(self, scope: tuple, factory: Callable[[Environment], Any]) -> Any:
        """Create a sub-module under ``scope`` using ``factory(scoped_env)``."""
        if scope in self._modules:
            raise ConfigurationError(f"scope {scope!r} already attached")
        module = factory(ScopedEnvironment(self.env, scope))
        self._modules[scope] = module
        return module

    def detach(self, scope: tuple) -> None:
        """Remove the sub-module under ``scope`` (its late messages are dropped)."""
        self._modules.pop(scope, None)

    def module(self, scope: tuple) -> Any | None:
        return self._modules.get(scope)

    # -------------------------------------------------------------- dispatch

    def on_message(self, src: int, msg: Any) -> None:
        if isinstance(msg, Scoped):
            module = self._modules.get(msg.scope)
            if module is None:
                self.on_unrouted(src, msg)
            else:
                module.on_message(src, msg.inner)
        else:
            self.on_plain_message(src, msg)

    def on_timer(self, name: Any) -> None:
        if isinstance(name, Scoped):
            module = self._modules.get(name.scope)
            if module is not None and hasattr(module, "on_timer"):
                module.on_timer(name.inner)
        else:
            self.on_plain_timer(name)

    # ------------------------------------------------------------- overrides

    def on_unrouted(self, src: int, msg: Scoped) -> None:
        """Hook for scoped messages without a module (default: drop)."""

    def on_plain_message(self, src: int, msg: Any) -> None:
        """Hook for unscoped messages (default: drop)."""

    def on_plain_timer(self, name: Any) -> None:
        """Hook for unscoped timers (default: drop)."""
