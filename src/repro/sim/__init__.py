"""Discrete-event simulation substrate (kernel, network, nodes, tracing)."""

from repro.sim.kernel import Event, Simulator, derive_seed
from repro.sim.network import (
    DATAGRAM,
    RELIABLE,
    ConstantDelay,
    Envelope,
    ExponentialDelay,
    LanDelay,
    LinkCapacity,
    LogNormalDelay,
    Network,
    NetworkStats,
    UniformDelay,
)
from repro.sim.node import Cluster, Node, NodeEnvironment
from repro.sim.storage import StableStore, StorageFabric
from repro.sim.process import Environment, HostProcess, Process, Scoped, ScopedEnvironment
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Event",
    "Simulator",
    "derive_seed",
    "DATAGRAM",
    "RELIABLE",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "LogNormalDelay",
    "LanDelay",
    "LinkCapacity",
    "Envelope",
    "Network",
    "NetworkStats",
    "Cluster",
    "Node",
    "NodeEnvironment",
    "Environment",
    "Process",
    "HostProcess",
    "Scoped",
    "ScopedEnvironment",
    "StableStore",
    "StorageFabric",
    "TraceRecord",
    "Tracer",
]
