"""Simulated node: CPU/queueing model, timers, crash faults.

A :class:`Node` hosts one :class:`~repro.sim.process.Process` and executes
its handlers on a single simulated CPU.  Handler executions are serialised
and each costs a configurable *service time*; when events arrive faster than
the CPU drains them they queue, which is precisely the mechanism that bends
the latency/throughput curves of Figures 2 and 3 upward at high load (the
paper's 2.8 GHz workstations saturate the same way).

Crash-stop faults (section 3): :meth:`Node.crash` freezes the node — all
queued and future deliveries and timers are silently discarded, matching the
crash-stop model where a crashed process takes no further steps.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.sim.kernel import Event, Simulator
from repro.sim.network import DATAGRAM, RELIABLE, Envelope, Network
from repro.sim.process import Environment, Process

__all__ = ["Node", "NodeEnvironment", "Cluster"]


class NodeEnvironment(Environment):
    """Concrete :class:`Environment` bound to one process *incarnation*.

    The environment refuses to act once its node has crashed or been handed
    to a newer incarnation (crash-recovery).  Without this guard, a crashed
    process could still take steps through retained callbacks — e.g. a
    failure-detector subscription firing after the crash — violating the
    crash-stop model.
    """

    def __init__(self, node: "Node") -> None:
        self._node = node
        self._incarnation = node.process
        self.pid = node.pid
        self.peers = tuple(node.peers)
        self.rng = node.sim.rng("proc", node.pid)

    def _alive(self) -> bool:
        node = self._node
        return not node._crashed and node.process is self._incarnation

    def send(self, dst: int, msg: Any) -> None:
        node = self._node  # _alive(), inlined: send is the hottest env call
        if not node._crashed and node.process is self._incarnation:
            node.network.send(self.pid, dst, msg, channel=RELIABLE)

    def datagram(self, dst: int, msg: Any) -> None:
        node = self._node
        if not node._crashed and node.process is self._incarnation:
            node.network.send(self.pid, dst, msg, channel=DATAGRAM)

    def send_many(self, dsts: tuple[int, ...], msg: Any) -> None:
        node = self._node  # one alive check for the whole fan-out
        if not node._crashed and node.process is self._incarnation:
            node.network.send_batch(self.pid, dsts, msg, channel=RELIABLE)

    def datagram_many(self, dsts: tuple[int, ...], msg: Any) -> None:
        node = self._node
        if not node._crashed and node.process is self._incarnation:
            node.network.send_batch(self.pid, dsts, msg, channel=DATAGRAM)

    def now(self) -> float:
        return self._node.sim._now

    def set_timer(self, name: Any, delay: float) -> None:
        if self._alive():
            self._node.set_timer(name, delay)

    def cancel_timer(self, name: Any) -> None:
        if self._alive():
            self._node.cancel_timer(name)


class Node:
    """A simulated machine running one protocol process.

    Parameters
    ----------
    sim, network:
        The kernel and fabric this node lives on.
    pid:
        Process identifier, unique within the cluster.
    peers:
        All pids in the group (including this node's own).
    process:
        The protocol process to host.
    service_time:
        CPU cost, in seconds, of handling one event (message or timer).
        Either a constant or a callable ``(kind, payload) -> float`` where
        kind is ``"message"`` or ``"timer"``.  Zero (the default) disables
        the CPU model so unit tests see pure network delays.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: int,
        peers: list[int],
        process: Process,
        service_time: float | Callable[[str, Any], float] = 0.0,
    ) -> None:
        if pid not in peers:
            raise ConfigurationError(f"pid {pid} missing from its own peer list")
        self.sim = sim
        self.network = network
        self.pid = pid
        self.peers = sorted(peers)
        self.process = process
        self._service_time = service_time
        # Constant service times take a branch-free path in _enqueue; a
        # callable model falls back to a per-event call.
        self._fixed_cost = None if callable(service_time) else float(service_time)
        self._busy_until = 0.0
        self._crashed = False
        self._started = False
        self._timers: dict[Any, Event] = {}
        self._crash_listeners: list[Callable[[int], None]] = []
        self._recover_listeners: list[Callable[[int], None]] = []
        self.events_handled = 0
        self.busy_time = 0.0
        # Pre-bound message dispatch: deliver_from pushes this directly, so
        # the heap entry skips both the method binding and _run_handler's
        # kind-string dispatch.
        self._run_message_cb = self._run_message
        network.register(pid, self)
        process.bind(NodeEnvironment(self))

    # ------------------------------------------------------------- lifecycle

    @property
    def crashed(self) -> bool:
        return self._crashed

    def start(self, at: float = 0.0) -> None:
        """Schedule the process's ``on_start`` at virtual time ``at``."""
        if self._started:
            raise ConfigurationError(f"node {self.pid} started twice")
        self._started = True
        self.sim.schedule_at(at, self._run_handler, "start", None, None)

    def crash(self) -> None:
        """Crash-stop the node: no handler runs after this point."""
        if self._crashed:
            return
        self._crashed = True
        for event in self._timers.values():
            event.cancel()
        self._timers.clear()
        self.process.on_crash()
        for listener in self._crash_listeners:
            listener(self.pid)

    def add_crash_listener(self, fn: Callable[[int], None]) -> None:
        """Register a callback invoked (with the pid) when this node crashes.

        Used by the oracle failure detectors, which observe crashes with a
        god's-eye view instead of exchanging heartbeat messages.
        """
        self._crash_listeners.append(fn)

    def add_recover_listener(self, fn: Callable[[int], None]) -> None:
        """Register a callback invoked (with the pid) when this node recovers."""
        self._recover_listeners.append(fn)

    def recover(self, process: Process) -> None:
        """Restart a crashed node with a *fresh* process instance.

        Models the crash-recovery regime of Aguilera et al. (the paper's
        reference [1]): the old process's volatile state is gone; the new
        one typically re-reads a :class:`~repro.sim.storage.StableStore` in
        its ``on_start``.  Messages that arrived while crashed were dropped
        (crash-stop delivery semantics), so recovery protocols must catch up
        explicitly.
        """
        if not self._crashed:
            raise ConfigurationError(f"node {self.pid} is not crashed")
        self._crashed = False
        self._busy_until = max(self._busy_until, self.sim.now)
        self.process = process
        process.bind(NodeEnvironment(self))
        self._enqueue("start", None, None)
        for listener in self._recover_listeners:
            listener(self.pid)

    def recover_at(self, time: float, process_factory: Callable[[], Process]) -> None:
        """Schedule a recovery with a process built at recovery time."""
        self.sim.schedule_at(time, lambda: self.recover(process_factory()))

    def crash_at(self, time: float) -> None:
        """Schedule a crash at absolute virtual time ``time``."""
        self.sim.schedule_at(time, self.crash)

    # -------------------------------------------------------------- delivery

    def deliver(self, envelope: Envelope) -> None:
        """Called by the network when a message arrives at this node."""
        self.deliver_from(envelope.src, envelope.payload)

    def deliver_from(self, src: int, payload: Any) -> None:
        """Arrival of ``payload`` from ``src`` — the envelope-free fast path.

        The network schedules this bound method directly when no observer
        needs the full envelope, so the hot path pays neither the
        :class:`Envelope` allocation nor an extra dispatch frame.  Delivered
        accounting lives here (not at the scheduling site) so that messages
        still in flight when a run stops are never counted.
        """
        self.network.stats.delivered += 1
        if self._crashed:
            return
        # _enqueue, unrolled: one call frame per message delivery matters at
        # Figure-2 sweep rates.
        cost = self._fixed_cost
        if cost is None:
            cost = self._service_time("message", payload)
        sim = self.sim
        now = sim._now
        start = now
        if self._busy_until > start:
            start = self._busy_until
        self._busy_until = busy_until = start + cost
        self.busy_time += cost
        args = (src, payload)
        delay = busy_until - now
        if delay >= 0.0:
            seq = sim._seq
            sim._seq = seq + 1
            heappush(sim._queue, (now + delay, seq, self._run_message_cb, args, None))
        else:
            sim.schedule_call_at(busy_until, self._run_message_cb, args)

    def _run_message(self, src: int, payload: Any) -> None:
        # _run_handler("message", ...), specialised for the hottest kind.
        if self._crashed:
            return
        self.events_handled += 1
        self.process.on_message(src, payload)

    def set_timer(self, name: Any, delay: float) -> None:
        if self._crashed:
            return
        self.cancel_timer(name)
        self._timers[name] = self.sim.schedule(delay, self._timer_fired, name)

    def cancel_timer(self, name: Any) -> None:
        event = self._timers.pop(name, None)
        if event is not None:
            event.cancel()

    def _timer_fired(self, name: Any) -> None:
        if self._crashed:
            return
        self._timers.pop(name, None)
        self._enqueue("timer", None, name)

    # ------------------------------------------------------------ CPU model

    def _cost(self, kind: str, payload: Any) -> float:
        if callable(self._service_time):
            return self._service_time(kind, payload)
        return float(self._service_time)

    def _enqueue(self, kind: str, src: int | None, payload: Any) -> None:
        """Serialise handler execution on the node's single CPU."""
        cost = self._fixed_cost
        if cost is None:
            cost = self._service_time(kind, payload)
        sim = self.sim
        now = sim._now
        start = now
        if self._busy_until > start:
            start = self._busy_until
        self._busy_until = busy_until = start + cost
        self.busy_time += cost
        # The handler observes the world at the time the CPU *finishes* the
        # work, so sends it performs are stamped after the service time.
        # Inlined sim.schedule_call_at (same timestamp arithmetic, one frame
        # less); a negative cost model falls back to the checked path.
        delay = busy_until - now
        if delay >= 0.0:
            seq = sim._seq
            sim._seq = seq + 1
            heappush(
                sim._queue, (now + delay, seq, self._run_handler, (kind, src, payload), None)
            )
        else:
            sim.schedule_call_at(busy_until, self._run_handler, (kind, src, payload))

    def _run_handler(self, kind: str, src: int | None, payload: Any) -> None:
        if self._crashed:
            return
        self.events_handled += 1
        if kind == "message":  # by far the most frequent kind
            self.process.on_message(src, payload)
        elif kind == "timer":
            self.process.on_timer(payload)
        elif kind == "start":
            self.process.on_start()

    # ------------------------------------------------------------ diagnostics

    def utilization(self) -> float:
        """Fraction of virtual time this CPU spent busy so far."""
        if self.sim.now <= 0:
            return 0.0
        return min(1.0, self.busy_time / self.sim.now)


class Cluster:
    """Convenience builder: a simulator, a network and n homogeneous nodes.

    This is the in-repo analogue of the paper's "cluster of 4 identical
    workstations interconnected by a 100Mb ethernet LAN".
    """

    def __init__(
        self,
        n: int,
        process_factory: Callable[[int, list[int]], Process],
        seed: int = 0,
        delay=None,
        datagram_delay=None,
        datagram_loss: float = 0.0,
        service_time: float | Callable[[str, Any], float] = 0.0,
        batch: bool = True,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"cluster needs at least one node, got n={n}")
        self.sim = Simulator(seed=seed, batch=batch)
        self.network = Network(
            self.sim,
            delay=delay,
            datagram_delay=datagram_delay,
            datagram_loss=datagram_loss,
        )
        pids = list(range(n))
        self.nodes: dict[int, Node] = {}
        for pid in pids:
            process = process_factory(pid, pids)
            self.nodes[pid] = Node(
                self.sim,
                self.network,
                pid,
                pids,
                process,
                service_time=service_time,
            )

    @property
    def pids(self) -> tuple[int, ...]:
        # The network's registry tuple is already sorted and cached; every
        # cluster node is registered on it, so membership is identical.
        return self.network.pids

    @property
    def processes(self) -> dict[int, Process]:
        return {pid: node.process for pid, node in self.nodes.items()}

    def start(self, at: float = 0.0) -> None:
        for node in self.nodes.values():
            node.start(at=at)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        self.sim.run(until=until, max_events=max_events)

    def crash(self, pid: int, at: float | None = None) -> None:
        if at is None:
            self.nodes[pid].crash()
        else:
            self.nodes[pid].crash_at(at)

    def alive_pids(self) -> list[int]:
        return [pid for pid, node in self.nodes.items() if not node.crashed]
