"""Discrete-event simulation kernel.

The kernel is the deterministic substrate every experiment in this repository
runs on.  It replaces the Neko framework and the physical cluster used in the
paper's evaluation (section 8) with a reproducible event loop:

* a virtual clock (``float`` seconds, starts at 0.0),
* a priority queue of timestamped events with total, deterministic ordering
  (ties broken by insertion sequence number),
* named, independently seeded random streams so that changing how one
  component consumes randomness never perturbs another component.

The kernel knows nothing about networks, nodes or protocols; those live in
:mod:`repro.sim.network` and :mod:`repro.sim.node`.
"""

from __future__ import annotations

import heapq
import itertools
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import SimulationError

__all__ = ["Event", "Simulator", "derive_seed"]


def derive_seed(root_seed: int, *names: Any) -> int:
    """Derive a child seed from ``root_seed`` and a path of names.

    The derivation is stable across processes and Python versions (it uses
    CRC32 over the repr of the path rather than :func:`hash`, which is
    salted).  Two different paths practically never collide for the purposes
    of statistical independence between component streams.
    """
    material = repr((root_seed,) + names).encode("utf-8")
    return zlib.crc32(material) ^ (root_seed & 0xFFFFFFFF)


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``; ``seq`` is a monotonically increasing
    insertion counter, which makes simultaneous events fire in the order they
    were scheduled — the property that makes whole-experiment runs
    bit-reproducible.
    """

    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when its time comes."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all random streams obtained through :meth:`rng`.

    Example
    -------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._rngs: dict[tuple, random.Random] = {}
        self._events_processed = 0

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for diagnostics and tests)."""
        return self._events_processed

    # ------------------------------------------------------------- randomness

    def rng(self, *names: Any) -> random.Random:
        """Return the named random stream, creating it on first use.

        Streams are memoised: ``sim.rng("net")`` always returns the same
        :class:`random.Random` instance for the same path, seeded from the
        simulator's root seed and the path.
        """
        key = tuple(names)
        stream = self._rngs.get(key)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, *names))
            self._rngs[key] = stream
        return stream

    # ------------------------------------------------------------- scheduling

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, whose :meth:`Event.cancel` method removes
        it logically from the queue.  ``delay`` must be non-negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        event = Event(self._now + delay, next(self._seq), fn, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, fn, *args)

    # -------------------------------------------------------------- execution

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event queue.

        Runs until the queue is empty, the optional ``until`` horizon is
        reached (events after the horizon stay queued and ``now`` advances to
        exactly ``until``), the optional ``max_events`` budget is exhausted,
        or :meth:`stop` is called from within an event handler.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        budget = max_events
        try:
            while self._queue and not self._stopped:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                if budget is not None:
                    if budget == 0:
                        break
                    budget -= 1
                heapq.heappop(self._queue)
                if event.time < self._now:
                    raise SimulationError(
                        f"event queue corrupted: event at {event.time} < now {self._now}"
                    )
                self._now = event.time
                self._events_processed += 1
                event.fn(*event.args)
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def drain_iter(self, until: float | None = None) -> Iterator[float]:
        """Yield the virtual time after each executed event (test helper)."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                return
            self.step()
            yield self._now
