"""Discrete-event simulation kernel.

The kernel is the deterministic substrate every experiment in this repository
runs on.  It replaces the Neko framework and the physical cluster used in the
paper's evaluation (section 8) with a reproducible event loop:

* a virtual clock (``float`` seconds, starts at 0.0),
* a priority queue of timestamped events with total, deterministic ordering
  (ties broken by insertion sequence number),
* named, independently seeded random streams so that changing how one
  component consumes randomness never perturbs another component.

The kernel knows nothing about networks, nodes or protocols; those live in
:mod:`repro.sim.network` and :mod:`repro.sim.node`.

Hot-path layout
---------------
The heap holds plain ``(time, seq, fn, args, event)`` tuples, so heap sifting
compares tuples in C — ``seq`` is unique, so comparison never reaches the
callback.  :class:`Event` is a ``__slots__`` handle used only for
cancellation; the internal fire-and-forget path (``schedule_call_at``, used
for message arrivals and handler runs, which are never cancelled) pushes
``event=None`` and skips the allocation.  Cancellation is *lazy*: ``cancel()`` flips a flag
and bumps a counter; the dead entry stays queued until it surfaces at the heap
top (where it is discarded) or until cancelled entries outnumber live ones,
at which point the queue is compacted in place.  ``pending()`` is therefore
O(1), and a long-lived pile of cancelled timers costs memory only, not time.

Batched drain (cohort execution)
--------------------------------
``run()`` drains the queue in *cohorts*: whenever the queue is at least
``_BATCH_MIN`` deep, the whole backlog is moved into a reusable list with one
C-level copy, sorted once (a sorted ``(time, seq, ...)`` array generalises
the equal-timestamp cohort — it is the maximal run of entries already in
execution order), and executed through a single dispatch frame.  One
``list.sort`` replaces one ``heappop`` *per event*, which is where the
per-event Python overhead of the old loop lived.  Correctness under
mid-cohort scheduling is preserved by a *merge guard*: before each cohort
entry fires, any newly pushed heap entry that precedes it (tuple order) is
popped and executed first, so the observable event order — and therefore
every trace byte — is identical to the one-event-at-a-time loop.  Events
cancelled after their cohort was gathered are skipped at fire time, exactly
as a still-queued entry would be.  ``max_events`` runs keep the serial loop
(its budget may expire mid-cohort), as does ``batch=False``.
"""

from __future__ import annotations

import heapq
import random
import zlib
from bisect import bisect_right
from heapq import heapify, heappop, heappush
from operator import itemgetter
from typing import Any, Callable, Iterator

from repro.errors import SimulationError

__all__ = ["Event", "Simulator", "derive_seed"]

#: Negative delays no larger than this are treated as float roundoff from
#: ``schedule_at`` arithmetic and clamped to zero instead of raising.
_EPSILON = 1e-12

#: Compaction policy: rebuild the heap once at least this many cancelled
#: entries are queued *and* they outnumber the live ones.
_COMPACT_MIN_CANCELLED = 64

#: Queue depth below which the batched drain falls back to per-event pops:
#: copying + sorting a near-empty queue costs more than it saves.
_BATCH_MIN = 64

#: The reusable cohort list is dropped (and reallocated small) after a batch
#: larger than this, so one huge drain does not pin its memory forever.
_BATCH_KEEP = 4096

#: Sort/bisect key of a heap entry (its timestamp).
_ENTRY_TIME = itemgetter(0)

#: Sentinel horizon for unbounded runs (one float compare per event).
_INF = float("inf")


def derive_seed(root_seed: int, *names: Any) -> int:
    """Derive a child seed from ``root_seed`` and a path of names.

    The derivation is stable across processes and Python versions (it uses
    CRC32 over the repr of the path rather than :func:`hash`, which is
    salted).  Two different paths practically never collide for the purposes
    of statistical independence between component streams.
    """
    material = repr((root_seed,) + names).encode("utf-8")
    return zlib.crc32(material) ^ (root_seed & 0xFFFFFFFF)


class Event:
    """A scheduled callback (cancellation handle).

    Events order by ``(time, seq)``; ``seq`` is a monotonically increasing
    insertion counter, which makes simultaneous events fire in the order they
    were scheduled — the property that makes whole-experiment runs
    bit-reproducible.  The ordering itself is carried by the kernel's heap
    tuples; this object exists so callers can :meth:`cancel`.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple = (),
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        # _sim is cleared exactly once, when the event fires, so it must be
        # consulted first: cancel() after firing is a documented no-op and
        # must not relabel a fired event as "cancelled".
        if self._sim is None:
            state = "done"
        elif self.cancelled:
            state = "cancelled"
        else:
            state = "pending"
        return f"Event(time={self.time!r}, seq={self.seq}, {state})"

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when its time comes.

        Idempotent, and a harmless no-op after the event has already fired
        (cancel-after-pop) — matching the seed kernel's semantics.
        """
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                # Still queued: account for the dead entry so pending() stays
                # O(1) and the queue can be compacted when mostly dead.
                sim._note_cancel()


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all random streams obtained through :meth:`rng`.
    batch:
        When True (the default), :meth:`run` drains deep queues in sorted
        cohorts (see module docstring).  Execution order — and therefore
        every same-seed trace byte — is identical either way; ``batch=False``
        keeps the one-event-at-a-time loop for A/B debugging.

    Example
    -------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self, seed: int = 0, batch: bool = True) -> None:
        self.seed = seed
        self.batch = batch
        # Heap entries are (time, seq, fn, args, event-or-None): seq is
        # unique, so tuple comparison never reaches fn.  The Event handle is
        # only materialised by schedule()/schedule_at(); the internal
        # fire-and-forget path (schedule_call_at) pushes a bare entry.
        self._queue: list[tuple[float, int, Callable[..., None], tuple, Event | None]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._rngs: dict[tuple, random.Random] = {}
        self._events_processed = 0
        self._cancelled_queued = 0
        self._compactions = 0
        # Batched-drain state: the reusable cohort list, the count of cohort
        # entries not yet fired (so pending() matches the serial loop from
        # inside a handler), and lifetime counters surfaced by repro.perf.
        self._drain_batch: list[tuple[float, int, Callable[..., None], tuple, Event | None]] = []
        self._drain_remaining = 0
        self._drain_batches = 0
        self._drain_batched = 0

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for diagnostics and tests)."""
        return self._events_processed

    @property
    def stopped(self) -> bool:
        """True when the last :meth:`run` ended via :meth:`stop`.

        Cleared on the next :meth:`run` call.  The conservative parallel
        scheduler (:mod:`repro.sim.parallel`) reads this between windows: a
        partition that stopped mid-window ends the whole run at that
        window's boundary instead of being silently re-driven.
        """
        return self._stopped

    @property
    def events_scheduled(self) -> int:
        """Number of events ever scheduled (diagnostics)."""
        return self._seq

    @property
    def compactions(self) -> int:
        """Number of heap compactions performed (diagnostics)."""
        return self._compactions

    @property
    def drain_batches(self) -> int:
        """Number of sorted-cohort drain cycles executed (diagnostics)."""
        return self._drain_batches

    @property
    def batched_events(self) -> int:
        """Events gathered into sorted cohorts rather than popped one by one."""
        return self._drain_batched

    # ------------------------------------------------------------- randomness

    def rng(self, *names: Any) -> random.Random:
        """Return the named random stream, creating it on first use.

        Streams are memoised: ``sim.rng("net")`` always returns the same
        :class:`random.Random` instance for the same path, seeded from the
        simulator's root seed and the path.
        """
        stream = self._rngs.get(names)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, *names))
            self._rngs[names] = stream
        return stream

    # ------------------------------------------------------------- scheduling

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, whose :meth:`Event.cancel` method removes
        it logically from the queue.  ``delay`` must be non-negative; negative
        delays within float-roundoff distance of zero (1e-12) are clamped.
        """
        if delay < 0.0:
            if delay >= -_EPSILON:
                delay = 0.0
            else:
                raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        heappush(self._queue, (time, seq, fn, args, event))
        return event

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``.

        Sub-epsilon roundoff below ``now`` (a time a hair in the past after
        float arithmetic) is clamped to ``now`` rather than raising.
        """
        # Kept as now + (time - now), not time itself: the historical event
        # timestamps were computed this way and bit-reproducibility of old
        # traces depends on the exact float arithmetic.
        now = self._now
        delay = time - now
        if delay < 0.0:
            if delay >= -_EPSILON:
                delay = 0.0
            else:
                raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        time = now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        heappush(self._queue, (time, seq, fn, args, event))
        return event

    def schedule_call_at(self, time: float, fn: Callable[..., None], args: tuple) -> None:
        """Fire-and-forget :meth:`schedule_at`: no cancellation handle.

        The hot internal callers (network arrivals, node handler runs) never
        cancel their events, so this path skips the :class:`Event`
        allocation entirely.  Ordering and timestamp arithmetic are identical
        to :meth:`schedule_at`.
        """
        now = self._now
        delay = time - now
        if delay < 0.0:
            if delay >= -_EPSILON:
                delay = 0.0
            else:
                raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (now + delay, seq, fn, args, None))

    def schedule_calls_at(
        self, fn: Callable[..., None], calls: list[tuple[float, tuple]]
    ) -> None:
        """Bulk :meth:`schedule_call_at`: one shared ``fn``, many ``(time, args)``.

        Used by the network fan-out fast path to push a whole broadcast's
        arrivals with the loop constants (queue, seq counter, now) hoisted
        out of the per-destination work.  Timestamp arithmetic and the
        negative-delay clamp are identical to :meth:`schedule_call_at`, so
        the resulting heap entries are byte-for-byte the ones ``n``
        individual calls would have produced.
        """
        queue = self._queue
        push = heappush
        now = self._now
        seq = self._seq
        try:
            for time, args in calls:
                delay = time - now
                if delay < 0.0:
                    if delay >= -_EPSILON:
                        delay = 0.0
                    else:
                        raise SimulationError(
                            f"cannot schedule into the past (delay={delay!r})"
                        )
                push(queue, (now + delay, seq, fn, args, None))
                seq += 1
        finally:
            self._seq = seq

    # ---------------------------------------------------------- cancellation

    def _note_cancel(self) -> None:
        """Account for one newly cancelled, still-queued event.

        Compaction is deferred while a cohort is mid-drain
        (``_drain_remaining`` nonzero): ``_compact`` resets the cancelled
        counter from what it can see in the heap, but batch-resident
        cancelled entries live outside the heap and are settled one by one
        as the drain skips them.
        """
        self._cancelled_queued += 1
        if (
            self._drain_remaining == 0
            and self._cancelled_queued >= _COMPACT_MIN_CANCELLED
            and self._cancelled_queued * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In-place (``queue[:] = ...``) so that a compaction triggered from
        inside a running event handler stays visible to the run loop's local
        alias of the queue.  Total order is ``(time, seq)`` with unique
        ``seq``, so the pop order of survivors is unchanged.
        """
        queue = self._queue
        queue[:] = [
            entry for entry in queue if entry[4] is None or not entry[4].cancelled
        ]
        heapq.heapify(queue)
        self._cancelled_queued = 0
        self._compactions += 1

    # -------------------------------------------------------------- execution

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event queue.

        Runs until the queue is empty, the optional ``until`` horizon is
        reached (events after the horizon stay queued and ``now`` advances to
        exactly ``until``), the optional ``max_events`` budget is exhausted,
        or :meth:`stop` is called from within an event handler.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        try:
            if max_events is None and self.batch:
                self._run_batched(until)
            else:
                self._run_serial(until, max_events)
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def _run_serial(self, until: float | None, max_events: int | None) -> None:
        """Legacy one-event-at-a-time drain loop (also the budgeted path)."""
        budget = max_events
        queue = self._queue
        pop = heappop
        processed = 0
        try:
            while queue and not self._stopped:
                time, _seq, fn, args, event = queue[0]
                if event is not None and event.cancelled:
                    pop(queue)
                    self._cancelled_queued -= 1
                    continue
                if until is not None and time > until:
                    break
                if budget is not None:
                    if budget == 0:
                        break
                    budget -= 1
                pop(queue)
                if time < self._now:
                    raise SimulationError(
                        f"event queue corrupted: event at {time} < now {self._now}"
                    )
                if event is not None:
                    event._sim = None  # popped: cancel() becomes a pure no-op
                self._now = time
                processed += 1
                fn(*args)
        finally:
            self._events_processed += processed

    def _run_batched(self, until: float | None) -> None:
        """Sorted-cohort drain: gather the backlog, sort once, dispatch flat.

        See the module docstring for the design.  Invariants maintained per
        cohort:

        * ``self._queue`` keeps its object identity (external fast paths
          alias it) — the backlog is copied out and the list cleared.
        * Events keep their ``_sim`` link until they actually fire, so
          ``cancel()`` on a batch-resident event still accounts correctly
          and the drain skips it at fire time, exactly as the heap would.
        * ``_drain_remaining`` tracks the unfired remainder of the cohort
          whenever a handler runs, keeping :meth:`pending` exact.
        * ``stop()`` or an exception pushes the unexecuted tail back onto
          the heap, leaving the queue consistent for a later resume.
        """
        queue = self._queue
        pop = heappop
        batch = self._drain_batch
        # One float compare per event instead of a None test plus compare.
        horizon = _INF if until is None else until
        processed = 0
        batches = 0
        batched = 0
        try:
            while queue and not self._stopped:
                if len(queue) < _BATCH_MIN:
                    # Shallow queue: gathering would cost more than it saves.
                    # Pop eagerly (no root peek): only the one horizon-crossing
                    # entry per run is ever pushed back.
                    entry = pop(queue)
                    time, _seq, fn, args, event = entry
                    if event is not None and event.cancelled:
                        self._cancelled_queued -= 1
                        continue
                    if time > horizon:
                        heappush(queue, entry)
                        break
                    if time < self._now:
                        raise SimulationError(
                            f"event queue corrupted: event at {time} < now {self._now}"
                        )
                    if event is not None:
                        event._sim = None
                    self._now = time
                    processed += 1
                    fn(*args)
                    continue

                # Gather: one C-level copy plus one sort replaces a heappop
                # per event.  Copy-and-clear preserves the queue's identity.
                batch[:] = queue
                del queue[:]
                batch.sort()
                first = batch[0][0]
                if first < self._now:
                    queue.extend(batch)  # sorted into empty queue: valid heap
                    del batch[:]
                    raise SimulationError(
                        f"event queue corrupted: event at {first} < now {self._now}"
                    )
                if batch[-1][0] > horizon:
                    cut = bisect_right(batch, horizon, key=_ENTRY_TIME)
                    queue.extend(batch[cut:])
                    del batch[cut:]
                    if not batch:
                        break
                n = len(batch)
                batches += 1
                batched += n
                i = 0
                try:
                    while i < n:
                        if self._stopped:
                            break
                        entry = batch[i]
                        if queue and queue[0] < entry:
                            # Merge guard: events scheduled mid-cohort that
                            # precede the next cohort entry (tuple order —
                            # their seqs are fresher, so comparison never
                            # reaches fn) fire first, preserving the exact
                            # serial execution order.
                            self._drain_remaining = n - i
                            while queue:
                                head = queue[0]
                                if not head < entry:
                                    break
                                pop(queue)
                                mtime, _mseq, mfn, margs, mevent = head
                                if mevent is not None:
                                    if mevent.cancelled:
                                        self._cancelled_queued -= 1
                                        continue
                                    mevent._sim = None
                                if mtime < self._now:
                                    raise SimulationError(
                                        f"event queue corrupted: event at "
                                        f"{mtime} < now {self._now}"
                                    )
                                self._now = mtime
                                processed += 1
                                mfn(*margs)
                                if self._stopped:
                                    break
                            if self._stopped:
                                break
                        time, _seq, fn, args, event = entry
                        i += 1
                        if event is not None:
                            if event.cancelled:
                                self._cancelled_queued -= 1
                                continue
                            event._sim = None
                        self._now = time
                        self._drain_remaining = n - i
                        processed += 1
                        fn(*args)
                finally:
                    self._drain_remaining = 0
                    if i < n:
                        # stop()/exception mid-cohort: unexecuted tail back
                        # on the heap so the queue stays consistent.
                        del batch[:i]
                        queue.extend(batch)
                        if len(queue) != len(batch):
                            heapify(queue)
                    if n > _BATCH_KEEP:
                        batch = self._drain_batch = []
                    else:
                        del batch[:]
        finally:
            self._events_processed += processed
            self._drain_batches += batches
            self._drain_batched += batched

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain.

        Applies the same queue-corruption check as :meth:`run`, so a
        step-driven drain cannot silently rewind virtual time either.
        """
        queue = self._queue
        while queue:
            time, _seq, fn, args, event = heappop(queue)
            if event is not None:
                if event.cancelled:
                    self._cancelled_queued -= 1
                    continue
            if time < self._now:
                raise SimulationError(
                    f"event queue corrupted: event at {time} < now {self._now}"
                )
            if event is not None:
                event._sim = None
            self._now = time
            self._events_processed += 1
            fn(*args)
            return True
        return False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1).

        During a batched drain the unfired remainder of the current cohort
        counts as queued, so a handler observes exactly the value it would
        under the serial loop — obs metric samples depend on this.
        """
        return len(self._queue) + self._drain_remaining - self._cancelled_queued

    def drain_iter(self, until: float | None = None) -> Iterator[float]:
        """Yield the virtual time after each executed event (test helper)."""
        queue = self._queue
        while queue:
            time, _seq, _fn, _args, head = queue[0]
            if head is not None and head.cancelled:
                heappop(queue)
                self._cancelled_queued -= 1
                continue
            if until is not None and time > until:
                return
            self.step()
            yield self._now
