"""Discrete-event simulation kernel.

The kernel is the deterministic substrate every experiment in this repository
runs on.  It replaces the Neko framework and the physical cluster used in the
paper's evaluation (section 8) with a reproducible event loop:

* a virtual clock (``float`` seconds, starts at 0.0),
* a priority queue of timestamped events with total, deterministic ordering
  (ties broken by insertion sequence number),
* named, independently seeded random streams so that changing how one
  component consumes randomness never perturbs another component.

The kernel knows nothing about networks, nodes or protocols; those live in
:mod:`repro.sim.network` and :mod:`repro.sim.node`.

Hot-path layout
---------------
The heap holds plain ``(time, seq, fn, args, event)`` tuples, so heap sifting
compares tuples in C — ``seq`` is unique, so comparison never reaches the
callback.  :class:`Event` is a ``__slots__`` handle used only for
cancellation; the internal fire-and-forget path (``schedule_call_at``, used
for message arrivals and handler runs, which are never cancelled) pushes
``event=None`` and skips the allocation.  Cancellation is *lazy*: ``cancel()`` flips a flag
and bumps a counter; the dead entry stays queued until it surfaces at the heap
top (where it is discarded) or until cancelled entries outnumber live ones,
at which point the queue is compacted in place.  ``pending()`` is therefore
O(1), and a long-lived pile of cancelled timers costs memory only, not time.
"""

from __future__ import annotations

import heapq
import random
import zlib
from heapq import heappop, heappush
from typing import Any, Callable, Iterator

from repro.errors import SimulationError

__all__ = ["Event", "Simulator", "derive_seed"]

#: Negative delays no larger than this are treated as float roundoff from
#: ``schedule_at`` arithmetic and clamped to zero instead of raising.
_EPSILON = 1e-12

#: Compaction policy: rebuild the heap once at least this many cancelled
#: entries are queued *and* they outnumber the live ones.
_COMPACT_MIN_CANCELLED = 64


def derive_seed(root_seed: int, *names: Any) -> int:
    """Derive a child seed from ``root_seed`` and a path of names.

    The derivation is stable across processes and Python versions (it uses
    CRC32 over the repr of the path rather than :func:`hash`, which is
    salted).  Two different paths practically never collide for the purposes
    of statistical independence between component streams.
    """
    material = repr((root_seed,) + names).encode("utf-8")
    return zlib.crc32(material) ^ (root_seed & 0xFFFFFFFF)


class Event:
    """A scheduled callback (cancellation handle).

    Events order by ``(time, seq)``; ``seq`` is a monotonically increasing
    insertion counter, which makes simultaneous events fire in the order they
    were scheduled — the property that makes whole-experiment runs
    bit-reproducible.  The ordering itself is carried by the kernel's heap
    tuples; this object exists so callers can :meth:`cancel`.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple = (),
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = "cancelled" if self.cancelled else "pending" if self._sim else "done"
        return f"Event(time={self.time!r}, seq={self.seq}, {state})"

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when its time comes.

        Idempotent, and a harmless no-op after the event has already fired
        (cancel-after-pop) — matching the seed kernel's semantics.
        """
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                # Still queued: account for the dead entry so pending() stays
                # O(1) and the queue can be compacted when mostly dead.
                sim._note_cancel()


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all random streams obtained through :meth:`rng`.

    Example
    -------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        # Heap entries are (time, seq, fn, args, event-or-None): seq is
        # unique, so tuple comparison never reaches fn.  The Event handle is
        # only materialised by schedule()/schedule_at(); the internal
        # fire-and-forget path (schedule_call_at) pushes a bare entry.
        self._queue: list[tuple[float, int, Callable[..., None], tuple, Event | None]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._rngs: dict[tuple, random.Random] = {}
        self._events_processed = 0
        self._cancelled_queued = 0
        self._compactions = 0

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for diagnostics and tests)."""
        return self._events_processed

    @property
    def events_scheduled(self) -> int:
        """Number of events ever scheduled (diagnostics)."""
        return self._seq

    @property
    def compactions(self) -> int:
        """Number of heap compactions performed (diagnostics)."""
        return self._compactions

    # ------------------------------------------------------------- randomness

    def rng(self, *names: Any) -> random.Random:
        """Return the named random stream, creating it on first use.

        Streams are memoised: ``sim.rng("net")`` always returns the same
        :class:`random.Random` instance for the same path, seeded from the
        simulator's root seed and the path.
        """
        stream = self._rngs.get(names)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, *names))
            self._rngs[names] = stream
        return stream

    # ------------------------------------------------------------- scheduling

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, whose :meth:`Event.cancel` method removes
        it logically from the queue.  ``delay`` must be non-negative; negative
        delays within float-roundoff distance of zero (1e-12) are clamped.
        """
        if delay < 0.0:
            if delay >= -_EPSILON:
                delay = 0.0
            else:
                raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        heappush(self._queue, (time, seq, fn, args, event))
        return event

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``.

        Sub-epsilon roundoff below ``now`` (a time a hair in the past after
        float arithmetic) is clamped to ``now`` rather than raising.
        """
        # Kept as now + (time - now), not time itself: the historical event
        # timestamps were computed this way and bit-reproducibility of old
        # traces depends on the exact float arithmetic.
        now = self._now
        delay = time - now
        if delay < 0.0:
            if delay >= -_EPSILON:
                delay = 0.0
            else:
                raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        time = now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        heappush(self._queue, (time, seq, fn, args, event))
        return event

    def schedule_call_at(self, time: float, fn: Callable[..., None], args: tuple) -> None:
        """Fire-and-forget :meth:`schedule_at`: no cancellation handle.

        The hot internal callers (network arrivals, node handler runs) never
        cancel their events, so this path skips the :class:`Event`
        allocation entirely.  Ordering and timestamp arithmetic are identical
        to :meth:`schedule_at`.
        """
        now = self._now
        delay = time - now
        if delay < 0.0:
            if delay >= -_EPSILON:
                delay = 0.0
            else:
                raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (now + delay, seq, fn, args, None))

    # ---------------------------------------------------------- cancellation

    def _note_cancel(self) -> None:
        """Account for one newly cancelled, still-queued event."""
        self._cancelled_queued += 1
        if (
            self._cancelled_queued >= _COMPACT_MIN_CANCELLED
            and self._cancelled_queued * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In-place (``queue[:] = ...``) so that a compaction triggered from
        inside a running event handler stays visible to the run loop's local
        alias of the queue.  Total order is ``(time, seq)`` with unique
        ``seq``, so the pop order of survivors is unchanged.
        """
        queue = self._queue
        queue[:] = [
            entry for entry in queue if entry[4] is None or not entry[4].cancelled
        ]
        heapq.heapify(queue)
        self._cancelled_queued = 0
        self._compactions += 1

    # -------------------------------------------------------------- execution

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event queue.

        Runs until the queue is empty, the optional ``until`` horizon is
        reached (events after the horizon stay queued and ``now`` advances to
        exactly ``until``), the optional ``max_events`` budget is exhausted,
        or :meth:`stop` is called from within an event handler.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        budget = max_events
        queue = self._queue
        pop = heappop
        processed = 0
        try:
            while queue and not self._stopped:
                time, _seq, fn, args, event = queue[0]
                if event is not None and event.cancelled:
                    pop(queue)
                    self._cancelled_queued -= 1
                    continue
                if until is not None and time > until:
                    break
                if budget is not None:
                    if budget == 0:
                        break
                    budget -= 1
                pop(queue)
                if time < self._now:
                    raise SimulationError(
                        f"event queue corrupted: event at {time} < now {self._now}"
                    )
                if event is not None:
                    event._sim = None  # popped: cancel() becomes a pure no-op
                self._now = time
                processed += 1
                fn(*args)
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._events_processed += processed
            self._running = False

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain."""
        queue = self._queue
        while queue:
            time, _seq, fn, args, event = heappop(queue)
            if event is not None:
                if event.cancelled:
                    self._cancelled_queued -= 1
                    continue
                event._sim = None
            self._now = time
            self._events_processed += 1
            fn(*args)
            return True
        return False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return len(self._queue) - self._cancelled_queued

    def drain_iter(self, until: float | None = None) -> Iterator[float]:
        """Yield the virtual time after each executed event (test helper)."""
        queue = self._queue
        while queue:
            time, _seq, _fn, _args, head = queue[0]
            if head is not None and head.cancelled:
                heappop(queue)
                self._cancelled_queued -= 1
                continue
            if until is not None and time > until:
                return
            self.step()
            yield self._now
