"""Structured trace capture for simulated runs.

Protocols and checkers publish trace records (decisions, deliveries, round
transitions) to a :class:`Tracer`.  Tests assert on traces; the experiment
harness derives latency and step-count metrics from them.  Tracing is
pull-free and allocation-light: a record is a plain tuple appended to a list,
and subscribers get synchronous callbacks.

The :class:`KINDS` vocabulary covers the full causal story of a run: the
always-on application events (``a-broadcast``, ``a-deliver``, ``decide``)
plus the detailed kinds that :mod:`repro.obs` turns on per run — proposals,
round/phase transitions, failure-detector output, network message ids and
RSM lifecycle events.  Detailed kinds are opt-in so that existing runs stay
byte-identical when observability is off.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Iterable

__all__ = ["KINDS", "TraceRecord", "Tracer", "describe_value"]


class KINDS:
    """Canonical trace-kind vocabulary.

    Call sites should use these constants (or the typed ``emit_*`` helpers on
    :class:`Tracer`) instead of retyping the strings; raw ``emit`` with any
    kind keeps working for ad-hoc instrumentation.
    """

    # Always-on application events.
    A_BROADCAST = "a-broadcast"
    A_DELIVER = "a-deliver"
    DECIDE = "decide"

    # Detailed kinds, emitted only when observability is enabled.
    PROPOSE = "propose"
    ROUND_START = "round-start"
    ROUND_END = "round-end"
    LEADER_CHANGE = "leader-change"
    SUSPECT = "suspect"
    TRUST = "trust"
    # msg-send data carries {"dst", "kind", "channel", "id"} and msg-deliver
    # {"src", "kind", "channel", "id"}, where "id" is the network-wide send
    # sequence number — the causal edge linking each delivery back to its
    # originating send (consumed by repro.obs.causal).
    MSG_SEND = "msg-send"
    MSG_DELIVER = "msg-deliver"
    RSM_APPLY = "rsm-apply"
    RSM_SNAPSHOT = "rsm-snapshot"
    RSM_CATCHUP = "rsm-catchup"

    # Cross-shard transaction lifecycle (emitted by the 2PC txn driver;
    # pid is the home replica the step was submitted through).
    TXN_BEGIN = "txn-begin"
    TXN_VOTE = "txn-vote"
    TXN_DECIDE = "txn-decide"
    TXN_END = "txn-end"

    # Fault-injection lifecycle.  ``net-partition``/``net-heal`` are emitted
    # by the network itself (detailed, like msg-send) whenever a partition is
    # applied or removed; ``nemesis-start``/``nemesis-end`` bracket each
    # scheduled nemesis op and are emitted whenever a tracer is attached to a
    # run carrying a nemesis schedule (a nemesis-free run never produces
    # them, so existing trace output is unchanged).  All four use pid = -1:
    # faults are god's-eye events, like the oracle detector's records.
    NET_PARTITION = "net-partition"
    NET_HEAL = "net-heal"
    NEMESIS_START = "nemesis-start"
    NEMESIS_END = "nemesis-end"

    ALL = frozenset(
        {
            A_BROADCAST,
            A_DELIVER,
            DECIDE,
            PROPOSE,
            ROUND_START,
            ROUND_END,
            LEADER_CHANGE,
            SUSPECT,
            TRUST,
            MSG_SEND,
            MSG_DELIVER,
            RSM_APPLY,
            RSM_SNAPSHOT,
            RSM_CATCHUP,
            TXN_BEGIN,
            TXN_VOTE,
            TXN_DECIDE,
            TXN_END,
            NET_PARTITION,
            NET_HEAL,
            NEMESIS_START,
            NEMESIS_END,
        }
    )


def describe_value(value: Any) -> Any:
    """Deterministic, JSON-friendly description of a traced value.

    Trace payloads end up in exported JSONL files that must be byte-identical
    across same-seed runs.  Sets are the hazard: ``PYTHONHASHSEED`` salts
    string hashes, so iterating (or ``repr``-ing) a set of strings is not
    reproducible.  This helper sorts set-like values and renders message
    objects by their stable identity instead.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [describe_value(v) for v in value]
    msg_id = getattr(value, "msg_id", None)
    if msg_id is not None:
        return describe_value(msg_id)
    if isinstance(value, (set, frozenset)):
        described = [describe_value(v) for v in value]
        return sorted(described, key=repr)
    if isinstance(value, dict):
        return {str(k): describe_value(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    return repr(value)


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    pid: int
    kind: str
    data: Any = None


class Tracer:
    """Collects :class:`TraceRecord` instances and notifies subscribers.

    An incremental per-kind index is maintained on every emit, making the
    common queries (:meth:`of_kind`, :meth:`by_pid` with a kind,
    :meth:`counts`, :meth:`first`) O(result) instead of O(all records).
    """

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []
        self._by_kind: dict[str, list[TraceRecord]] = {}

    def emit(self, time: float, pid: int, kind: str, data: Any = None) -> None:
        record = TraceRecord(time, pid, kind, data)
        self.records.append(record)
        bucket = self._by_kind.get(kind)
        if bucket is None:
            self._by_kind[kind] = bucket = []
        bucket.append(record)
        if self._subscribers:
            for fn in self._subscribers:
                fn(record)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> Callable[[TraceRecord], None]:
        """Register ``fn`` for synchronous record callbacks; returns ``fn``.

        Returning the callable makes the subscribe/unsubscribe pairing easy
        even for lambdas: ``handle = tracer.subscribe(lambda r: ...)``.
        """
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Detach ``fn``; silently ignores callbacks that are not subscribed."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    # ------------------------------------------------------------ typed emits

    def emit_broadcast(self, time: float, pid: int, msg_id: Any) -> None:
        """Record an a-broadcast of ``msg_id``."""
        self.emit(time, pid, KINDS.A_BROADCAST, msg_id)

    def emit_deliver(self, time: float, pid: int, msg_id: Any) -> None:
        """Record an a-delivery of ``msg_id``."""
        self.emit(time, pid, KINDS.A_DELIVER, msg_id)

    def emit_decide(self, time: float, pid: int, value: Any, steps: int, via: str) -> None:
        """Record a consensus decision with its step count and decision path."""
        self.emit(time, pid, KINDS.DECIDE, {"value": value, "steps": steps, "via": via})

    def emit_propose(self, time: float, pid: int, value: Any, instance: Any = None) -> None:
        """Record a consensus proposal (detailed kind)."""
        self.emit(
            time,
            pid,
            KINDS.PROPOSE,
            {"value": describe_value(value), "instance": instance},
        )

    def emit_round_start(
        self, time: float, pid: int, round: int, instance: Any = None, phase: str | None = None
    ) -> None:
        """Record the start of a round (optionally a named phase within it)."""
        data: dict[str, Any] = {"round": round, "instance": instance}
        if phase is not None:
            data["phase"] = phase
        self.emit(time, pid, KINDS.ROUND_START, data)

    def emit_round_end(
        self,
        time: float,
        pid: int,
        outcome: str,
        steps: int,
        via: str,
        value: Any,
        instance: Any = None,
    ) -> None:
        """Record the terminal transition of a consensus instance."""
        self.emit(
            time,
            pid,
            KINDS.ROUND_END,
            {
                "outcome": outcome,
                "steps": steps,
                "via": via,
                "value": describe_value(value),
                "instance": instance,
            },
        )

    def emit_suspect(self, time: float, pid: int, suspect: int) -> None:
        self.emit(time, pid, KINDS.SUSPECT, {"suspect": suspect})

    def emit_trust(self, time: float, pid: int, suspect: int) -> None:
        self.emit(time, pid, KINDS.TRUST, {"suspect": suspect})

    def emit_leader_change(self, time: float, pid: int, leader: int | None) -> None:
        self.emit(time, pid, KINDS.LEADER_CHANGE, {"leader": leader})

    # ----------------------------------------------------------------- queries

    def of_kind(self, kind: str) -> list[TraceRecord]:
        return list(self._by_kind.get(kind, ()))

    def by_pid(self, kind: str | None = None) -> dict[int, list[TraceRecord]]:
        source = self.records if kind is None else self._by_kind.get(kind, ())
        out: dict[int, list[TraceRecord]] = defaultdict(list)
        for r in source:
            out[r.pid].append(r)
        return dict(out)

    def first(self, kind: str) -> TraceRecord | None:
        bucket = self._by_kind.get(kind)
        return bucket[0] if bucket else None

    def kinds(self) -> set[str]:
        return set(self._by_kind)

    def counts(self) -> dict[str, int]:
        """Number of records per kind (in first-seen kind order)."""
        return {kind: len(bucket) for kind, bucket in self._by_kind.items()}

    def filter(self, predicate: Callable[[TraceRecord], bool]) -> Iterable[TraceRecord]:
        return (r for r in self.records if predicate(r))

    def clear(self) -> None:
        self.records.clear()
        self._by_kind.clear()
