"""Structured trace capture for simulated runs.

Protocols and checkers publish trace records (decisions, deliveries, round
transitions) to a :class:`Tracer`.  Tests assert on traces; the experiment
harness derives latency and step-count metrics from them.  Tracing is
pull-free and allocation-light: a record is a plain tuple appended to a list,
and subscribers get synchronous callbacks.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Iterable

__all__ = ["KINDS", "TraceRecord", "Tracer"]


class KINDS:
    """Canonical trace-kind vocabulary.

    Call sites should use these constants (or the typed ``emit_*`` helpers on
    :class:`Tracer`) instead of retyping the strings; raw ``emit`` with any
    kind keeps working for ad-hoc instrumentation.
    """

    A_BROADCAST = "a-broadcast"
    A_DELIVER = "a-deliver"
    DECIDE = "decide"

    ALL = frozenset({A_BROADCAST, A_DELIVER, DECIDE})


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    pid: int
    kind: str
    data: Any = None


class Tracer:
    """Collects :class:`TraceRecord` instances and notifies subscribers."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    def emit(self, time: float, pid: int, kind: str, data: Any = None) -> None:
        record = TraceRecord(time, pid, kind, data)
        self.records.append(record)
        for fn in self._subscribers:
            fn(record)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        self._subscribers.append(fn)

    # ------------------------------------------------------------ typed emits

    def emit_broadcast(self, time: float, pid: int, msg_id: Any) -> None:
        """Record an a-broadcast of ``msg_id``."""
        self.emit(time, pid, KINDS.A_BROADCAST, msg_id)

    def emit_deliver(self, time: float, pid: int, msg_id: Any) -> None:
        """Record an a-delivery of ``msg_id``."""
        self.emit(time, pid, KINDS.A_DELIVER, msg_id)

    def emit_decide(self, time: float, pid: int, value: Any, steps: int, via: str) -> None:
        """Record a consensus decision with its step count and decision path."""
        self.emit(time, pid, KINDS.DECIDE, {"value": value, "steps": steps, "via": via})

    # ----------------------------------------------------------------- queries

    def of_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def by_pid(self, kind: str | None = None) -> dict[int, list[TraceRecord]]:
        out: dict[int, list[TraceRecord]] = defaultdict(list)
        for r in self.records:
            if kind is None or r.kind == kind:
                out[r.pid].append(r)
        return dict(out)

    def first(self, kind: str) -> TraceRecord | None:
        for r in self.records:
            if r.kind == kind:
                return r
        return None

    def kinds(self) -> set[str]:
        return {r.kind for r in self.records}

    def counts(self) -> dict[str, int]:
        """Number of records per kind."""
        return dict(Counter(r.kind for r in self.records))

    def filter(self, predicate: Callable[[TraceRecord], bool]) -> Iterable[TraceRecord]:
        return (r for r in self.records if predicate(r))

    def clear(self) -> None:
        self.records.clear()
