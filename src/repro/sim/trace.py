"""Structured trace capture for simulated runs.

Protocols and checkers publish trace records (decisions, deliveries, round
transitions) to a :class:`Tracer`.  Tests assert on traces; the experiment
harness derives latency and step-count metrics from them.  Tracing is
pull-free and allocation-light: a record is a plain tuple appended to a list,
and subscribers get synchronous callbacks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Iterable

__all__ = ["KINDS", "TraceRecord", "Tracer"]


class KINDS:
    """Canonical trace-kind vocabulary.

    Call sites should use these constants (or the typed ``emit_*`` helpers on
    :class:`Tracer`) instead of retyping the strings; raw ``emit`` with any
    kind keeps working for ad-hoc instrumentation.
    """

    A_BROADCAST = "a-broadcast"
    A_DELIVER = "a-deliver"
    DECIDE = "decide"

    ALL = frozenset({A_BROADCAST, A_DELIVER, DECIDE})


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    pid: int
    kind: str
    data: Any = None


class Tracer:
    """Collects :class:`TraceRecord` instances and notifies subscribers.

    An incremental per-kind index is maintained on every emit, making the
    common queries (:meth:`of_kind`, :meth:`by_pid` with a kind,
    :meth:`counts`, :meth:`first`) O(result) instead of O(all records).
    """

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []
        self._by_kind: dict[str, list[TraceRecord]] = {}

    def emit(self, time: float, pid: int, kind: str, data: Any = None) -> None:
        record = TraceRecord(time, pid, kind, data)
        self.records.append(record)
        bucket = self._by_kind.get(kind)
        if bucket is None:
            self._by_kind[kind] = bucket = []
        bucket.append(record)
        if self._subscribers:
            for fn in self._subscribers:
                fn(record)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        self._subscribers.append(fn)

    # ------------------------------------------------------------ typed emits

    def emit_broadcast(self, time: float, pid: int, msg_id: Any) -> None:
        """Record an a-broadcast of ``msg_id``."""
        self.emit(time, pid, KINDS.A_BROADCAST, msg_id)

    def emit_deliver(self, time: float, pid: int, msg_id: Any) -> None:
        """Record an a-delivery of ``msg_id``."""
        self.emit(time, pid, KINDS.A_DELIVER, msg_id)

    def emit_decide(self, time: float, pid: int, value: Any, steps: int, via: str) -> None:
        """Record a consensus decision with its step count and decision path."""
        self.emit(time, pid, KINDS.DECIDE, {"value": value, "steps": steps, "via": via})

    # ----------------------------------------------------------------- queries

    def of_kind(self, kind: str) -> list[TraceRecord]:
        return list(self._by_kind.get(kind, ()))

    def by_pid(self, kind: str | None = None) -> dict[int, list[TraceRecord]]:
        source = self.records if kind is None else self._by_kind.get(kind, ())
        out: dict[int, list[TraceRecord]] = defaultdict(list)
        for r in source:
            out[r.pid].append(r)
        return dict(out)

    def first(self, kind: str) -> TraceRecord | None:
        bucket = self._by_kind.get(kind)
        return bucket[0] if bucket else None

    def kinds(self) -> set[str]:
        return set(self._by_kind)

    def counts(self) -> dict[str, int]:
        """Number of records per kind (in first-seen kind order)."""
        return {kind: len(bucket) for kind, bucket in self._by_kind.items()}

    def filter(self, predicate: Callable[[TraceRecord], bool]) -> Iterable[TraceRecord]:
        return (r for r in self.records if predicate(r))

    def clear(self) -> None:
        self.records.clear()
        self._by_kind.clear()
