"""Simulated network: delay models, reliable FIFO channels, unordered datagrams.

This module stands in for the 100 Mb Ethernet LAN of the paper's testbed.
Two transport classes are modelled, matching section 8.1 of the paper
("The WAB oracle implementation uses UDP packets whereas the rest of the
communication is TCP-based"):

* ``RELIABLE`` — a TCP-like channel: no loss, no duplication, per-(src, dst)
  FIFO ordering.  This is the reliable channel assumed by the system model
  (section 3).
* ``DATAGRAM`` — a UDP-like channel: per-message independent delays, no FIFO
  guarantee, optional loss.  The WAB oracle runs on top of this; *spontaneous
  total order* emerges naturally because uncontended datagrams experience
  similar delays, and breaks down when broadcasts overlap in time.

Fault injection (link filters, partitions) is built in so the failure
detector and protocol tests can create unstable runs on demand.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "LogNormalDelay",
    "LanDelay",
    "Envelope",
    "HEADER_BYTES",
    "LinkCapacity",
    "NetworkStats",
    "Network",
    "RELIABLE",
    "DATAGRAM",
]

RELIABLE = "reliable"
DATAGRAM = "datagram"


class DelayModel(Protocol):
    """Samples a one-way message delay in seconds."""

    def sample(self, rng) -> float:  # pragma: no cover - protocol signature
        ...

    def mean(self) -> float:  # pragma: no cover - protocol signature
        ...


@dataclass(frozen=True)
class ConstantDelay:
    """Every message takes exactly ``delay`` seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ConfigurationError(f"negative delay {self.delay}")

    def sample(self, rng) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformDelay:
    """Delay uniform in ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ConfigurationError(f"bad uniform bounds [{self.low}, {self.high}]")

    def sample(self, rng) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2


@dataclass(frozen=True)
class ExponentialDelay:
    """``base`` plus an exponential tail with the given ``mean_extra``."""

    base: float
    mean_extra: float

    def __post_init__(self) -> None:
        if self.base < 0 or self.mean_extra < 0:
            raise ConfigurationError("negative exponential delay parameters")

    def sample(self, rng) -> float:
        if self.mean_extra == 0:
            return self.base
        return self.base + rng.expovariate(1.0 / self.mean_extra)

    def mean(self) -> float:
        return self.base + self.mean_extra


@dataclass(frozen=True)
class LogNormalDelay:
    """Log-normal delay, parametrised by its actual mean and sigma.

    Log-normal latencies are the classic empirical fit for switched-LAN
    round-trips; ``sigma`` around 0.3-0.5 gives a realistic mild tail.
    """

    mean_delay: float
    sigma: float

    def __post_init__(self) -> None:
        if self.mean_delay <= 0 or self.sigma < 0:
            raise ConfigurationError("bad lognormal parameters")

    def sample(self, rng) -> float:
        mu = math.log(self.mean_delay) - self.sigma**2 / 2
        return rng.lognormvariate(mu, self.sigma)

    def mean(self) -> float:
        return self.mean_delay


@dataclass(frozen=True)
class LanDelay:
    """A 100 Mb-Ethernet-flavoured delay: wire base + jittered queueing tail.

    ``base`` models propagation plus kernel traversal; the log-normal jitter
    models switch and driver queueing.  Defaults approximate the sub-
    millisecond one-way delays of the paper's testbed.
    """

    base: float = 80e-6
    jitter_mean: float = 40e-6
    jitter_sigma: float = 0.6

    def sample(self, rng) -> float:
        mu = math.log(self.jitter_mean) - self.jitter_sigma**2 / 2
        return self.base + rng.lognormvariate(mu, self.jitter_sigma)

    def mean(self) -> float:
        return self.base + self.jitter_mean


@dataclass
class Envelope:
    """What the network hands to a destination node."""

    src: int
    dst: int
    payload: Any
    channel: str
    sent_at: float
    size: int = 1


@dataclass(frozen=True)
class LinkCapacity:
    """Finite-bandwidth model of the LAN fabric.

    ``frame_time`` is the wire occupancy of one message (e.g. a full
    ~1500-byte frame on 100 Mb Ethernet serialises in ~120 µs; protocol
    messages with headers and Java serialisation land around 40-100 µs).

    * ``shared`` — one half-duplex medium: every message in the whole
      network serialises through a single resource (classic hub/CSMA).
    * ``switched`` — full duplex per port: a sender's messages queue on its
      uplink, a receiver's on its downlink (store-and-forward switch).

    This is the load-dependent component of the latency/throughput curves:
    at high throughput the per-port queues grow, both inflating delays and
    perturbing datagram interleavings — which is exactly how spontaneous
    order degrades on a real LAN as load rises.
    """

    frame_time: float
    mode: str = "switched"

    def __post_init__(self) -> None:
        if self.frame_time < 0:
            raise ConfigurationError("frame_time must be >= 0")
        if self.mode not in ("shared", "switched"):
            raise ConfigurationError(f"unknown capacity mode {self.mode!r}")


#: Per-message fixed overhead (Ethernet + IP + TCP/UDP headers) assumed by
#: the wire-size estimate below.
HEADER_BYTES = 64


def _approx_bytes(payload: Any) -> int:
    """Deterministic wire-size estimate of a payload.

    The paper reports message *counts*; for byte-level accounting we
    approximate the serialised size as the header overhead plus the length
    of the payload's repr — crude, but stable across runs and monotone in
    the message's actual content, which is all the per-kind byte reports
    need.
    """
    return HEADER_BYTES + len(repr(payload))


class NetworkStats:
    """Counts messages, payload classes and estimated bytes on the network."""

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.bytes_sent = 0
        self.by_channel: Counter = Counter()
        self.by_kind: Counter = Counter()
        self.by_kind_bytes: Counter = Counter()

    def record_sent(self, envelope: Envelope) -> None:
        kind = _kind_of(envelope.payload)
        size = _approx_bytes(envelope.payload)
        self.sent += 1
        self.bytes_sent += size
        self.by_channel[envelope.channel] += 1
        self.by_kind[kind] += 1
        self.by_kind_bytes[kind] += size

    def record_delivered(self) -> None:
        self.delivered += 1

    def record_dropped(self) -> None:
        self.dropped += 1

    def snapshot(self) -> dict:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "bytes_sent": self.bytes_sent,
            "by_channel": dict(self.by_channel),
            "by_kind": dict(self.by_kind),
            "by_kind_bytes": dict(self.by_kind_bytes),
        }


def _kind_of(payload: Any) -> str:
    """Best-effort message-kind label used for per-type accounting."""
    unwrapped = payload
    # Dig through Scoped wrappers (duck-typed to avoid importing process.py).
    while hasattr(unwrapped, "scope") and hasattr(unwrapped, "inner"):
        unwrapped = unwrapped.inner
    return type(unwrapped).__name__


# A link filter takes an Envelope and returns either a float (extra delay in
# seconds), True (deliver normally) or False/None (drop).
LinkFilter = Callable[[Envelope], "bool | float | None"]


class Network:
    """Message fabric connecting registered nodes.

    The network delivers by calling ``deliver(envelope)`` on the destination
    node object; :class:`repro.sim.node.Node` implements that hook (and the
    CPU/queueing model behind it).
    """

    def __init__(
        self,
        sim: Simulator,
        delay: DelayModel | None = None,
        datagram_delay: DelayModel | None = None,
        datagram_loss: float = 0.0,
        fifo_epsilon: float = 1e-9,
        capacity: "LinkCapacity | None" = None,
    ) -> None:
        if not 0.0 <= datagram_loss < 1.0:
            raise ConfigurationError(f"datagram_loss must be in [0,1), got {datagram_loss}")
        self.sim = sim
        self.delay = delay or LanDelay()
        self.datagram_delay = datagram_delay or self.delay
        self.datagram_loss = datagram_loss
        self.fifo_epsilon = fifo_epsilon
        self.capacity = capacity
        self.stats = NetworkStats()
        self._nodes: dict[int, Any] = {}
        self._last_arrival: dict[tuple[int, int], float] = {}
        self._uplink_busy: dict[int, float] = {}
        self._downlink_busy: dict[int, float] = {}
        self._medium_busy = 0.0
        self._filters: list[LinkFilter] = []
        self._partitions: list[frozenset[int]] = []
        self._rng = sim.rng("network")

    # ------------------------------------------------------------- membership

    def register(self, pid: int, node: Any) -> None:
        if pid in self._nodes:
            raise ConfigurationError(f"node {pid} registered twice")
        self._nodes[pid] = node

    @property
    def pids(self) -> list[int]:
        return sorted(self._nodes)

    # --------------------------------------------------------- fault injection

    def add_filter(self, fn: LinkFilter) -> Callable[[], None]:
        """Install a link filter; returns a callable that removes it."""
        self._filters.append(fn)

        def remove() -> None:
            if fn in self._filters:
                self._filters.remove(fn)

        return remove

    def partition(self, *groups: set[int]) -> None:
        """Split the network: messages only flow within a group."""
        self._partitions = [frozenset(g) for g in groups]

    def heal(self) -> None:
        """Remove any partition."""
        self._partitions = []

    def _partition_blocks(self, src: int, dst: int) -> bool:
        if not self._partitions:
            return False
        return not any(src in g and dst in g for g in self._partitions)

    # ----------------------------------------------------------------- sending

    def send(self, src: int, dst: int, payload: Any, channel: str = RELIABLE) -> None:
        """Transmit ``payload`` from ``src`` to ``dst``.

        Reliable channels never drop (the system model's channels are
        reliable); they can only be severed by explicit partitions or
        filters, which tests use to model link failures.
        """
        if dst not in self._nodes:
            raise ConfigurationError(f"unknown destination pid {dst}")
        envelope = Envelope(src, dst, payload, channel, self.sim.now)
        self.stats.record_sent(envelope)

        if self._partition_blocks(src, dst):
            self.stats.record_dropped()
            return

        extra = 0.0
        for fn in self._filters:
            verdict = fn(envelope)
            if verdict is False or verdict is None:
                self.stats.record_dropped()
                return
            if isinstance(verdict, (int, float)) and verdict is not True:
                extra += float(verdict)

        # Sender-side serialisation: the message occupies its uplink (or the
        # shared medium) for one frame time before it can propagate.
        departure = self.sim.now
        if self.capacity is not None:
            frame = self.capacity.frame_time * envelope.size
            if self.capacity.mode == "shared":
                start = max(departure, self._medium_busy)
                self._medium_busy = start + frame
            else:
                start = max(departure, self._uplink_busy.get(src, 0.0))
                self._uplink_busy[src] = start + frame
            departure = start + frame

        if channel == DATAGRAM:
            if self.datagram_loss and self._rng.random() < self.datagram_loss:
                self.stats.record_dropped()
                return
            arrival = departure + self.datagram_delay.sample(self._rng) + extra
        elif channel == RELIABLE:
            # Self-messages traverse the same transport model (as in Neko):
            # this is what makes the simulator reproduce the paper's uniform
            # communication-step accounting (1δ per round for everyone).
            arrival = departure + self.delay.sample(self._rng) + extra
        else:
            raise ConfigurationError(f"unknown channel {channel!r}")

        # Receiver-side serialisation on the switch downlink port.
        if self.capacity is not None and self.capacity.mode == "switched":
            frame = self.capacity.frame_time * envelope.size
            arrival = max(arrival, self._downlink_busy.get(dst, 0.0)) + frame
            self._downlink_busy[dst] = arrival

        if channel == RELIABLE:
            # Enforce per-link FIFO: a message never overtakes an earlier one.
            key = (src, dst)
            floor = self._last_arrival.get(key, -math.inf) + self.fifo_epsilon
            arrival = max(arrival, floor)
            self._last_arrival[key] = arrival

        self.sim.schedule_at(arrival, self._arrive, envelope)

    def broadcast(self, src: int, payload: Any, channel: str = RELIABLE) -> None:
        """Send ``payload`` from ``src`` to every registered node (incl. src)."""
        for dst in self.pids:
            self.send(src, dst, payload, channel)

    def _arrive(self, envelope: Envelope) -> None:
        node = self._nodes.get(envelope.dst)
        if node is None:  # node was torn down
            self.stats.record_dropped()
            return
        self.stats.record_delivered()
        node.deliver(envelope)
