"""Simulated network: delay models, reliable FIFO channels, unordered datagrams.

This module stands in for the 100 Mb Ethernet LAN of the paper's testbed.
Two transport classes are modelled, matching section 8.1 of the paper
("The WAB oracle implementation uses UDP packets whereas the rest of the
communication is TCP-based"):

* ``RELIABLE`` — a TCP-like channel: no loss, no duplication, per-(src, dst)
  FIFO ordering.  This is the reliable channel assumed by the system model
  (section 3).
* ``DATAGRAM`` — a UDP-like channel: per-message independent delays, no FIFO
  guarantee, optional loss.  The WAB oracle runs on top of this; *spontaneous
  total order* emerges naturally because uncontended datagrams experience
  similar delays, and breaks down when broadcasts overlap in time.

Fault injection (link filters, partitions) is built in so the failure
detector and protocol tests can create unstable runs on demand.
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter
from dataclasses import dataclass
from heapq import heappush
from math import exp as _exp, log as _log
from random import NV_MAGICCONST
from typing import Any, Callable, Protocol

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.process import Scoped
from repro.sim.trace import KINDS

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "LogNormalDelay",
    "LanDelay",
    "Envelope",
    "HEADER_BYTES",
    "LinkCapacity",
    "NetworkStats",
    "Network",
    "RELIABLE",
    "DATAGRAM",
]

RELIABLE = "reliable"
DATAGRAM = "datagram"


def _lognorm(rng, mu: float, sigma: float) -> float:
    """``rng.lognormvariate(mu, sigma)`` without the two wrapper frames.

    This is stdlib ``Random.normalvariate`` (Kinderman-Monahan ratio method)
    followed by ``exp``, verbatim: the same draws from ``rng.random()`` and
    the same float expressions, so every sampled delay is bit-identical to
    the stdlib call — it just runs in one frame on the per-message hot path.
    The delay-model ``sample`` methods inline this body for the same reason;
    keep them in sync.
    """
    random = rng.random
    while True:
        u1 = random()
        u2 = 1.0 - random()
        z = NV_MAGICCONST * (u1 - 0.5) / u2
        zz = z * z / 4.0
        if zz <= -_log(u2):
            break
    return _exp(mu + z * sigma)


class DelayModel(Protocol):
    """Samples a one-way message delay in seconds.

    ``sample_many(rng, n)`` is the vectorized contract used by the fan-out
    fast path: it must consume ``rng`` in **exactly** the order and count of
    ``n`` sequential ``sample`` calls, so a batched broadcast draws the same
    delays — bit for bit — as a per-destination loop.  Models without the
    method still work; the network falls back to ``n`` ``sample`` calls.
    """

    def sample(self, rng) -> float:  # pragma: no cover - protocol signature
        ...

    def sample_many(self, rng, n: int) -> list[float]:  # pragma: no cover
        ...

    def mean(self) -> float:  # pragma: no cover - protocol signature
        ...

    def min_delay(self) -> float:  # pragma: no cover - protocol signature
        """Provable lower bound on any sampled delay, in seconds.

        The conservative parallel scheduler (:mod:`repro.sim.parallel`) uses
        this as its lookahead: a partition at simulated time ``t`` cannot
        receive a cross-partition message earlier than ``t + min_delay()``.
        A model whose support extends to 0 must return ``0.0`` — the
        scheduler then refuses to run rather than deadlock on zero lookahead.
        """
        ...


@dataclass(frozen=True)
class ConstantDelay:
    """Every message takes exactly ``delay`` seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ConfigurationError(f"negative delay {self.delay}")

    def sample(self, rng) -> float:
        return self.delay

    def sample_many(self, rng, n: int) -> list[float]:
        # Constant delays consume no randomness, matching n sample() calls.
        return [self.delay] * n

    def mean(self) -> float:
        return self.delay

    def min_delay(self) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformDelay:
    """Delay uniform in ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ConfigurationError(f"bad uniform bounds [{self.low}, {self.high}]")

    def sample(self, rng) -> float:
        return rng.uniform(self.low, self.high)

    def sample_many(self, rng, n: int) -> list[float]:
        uniform = rng.uniform
        low = self.low
        high = self.high
        return [uniform(low, high) for _ in range(n)]

    def mean(self) -> float:
        return (self.low + self.high) / 2

    def min_delay(self) -> float:
        return self.low


@dataclass(frozen=True)
class ExponentialDelay:
    """``base`` plus an exponential tail with the given ``mean_extra``."""

    base: float
    mean_extra: float

    def __post_init__(self) -> None:
        if self.base < 0 or self.mean_extra < 0:
            raise ConfigurationError("negative exponential delay parameters")

    def sample(self, rng) -> float:
        if self.mean_extra == 0:
            return self.base
        return self.base + rng.expovariate(1.0 / self.mean_extra)

    def sample_many(self, rng, n: int) -> list[float]:
        base = self.base
        if self.mean_extra == 0:
            return [base] * n
        expovariate = rng.expovariate
        lambd = 1.0 / self.mean_extra
        return [base + expovariate(lambd) for _ in range(n)]

    def mean(self) -> float:
        return self.base + self.mean_extra

    def min_delay(self) -> float:
        # The exponential tail's infimum is 0, so the floor is the base.
        return self.base


@dataclass(frozen=True)
class LogNormalDelay:
    """Log-normal delay, parametrised by its actual mean and sigma.

    Log-normal latencies are the classic empirical fit for switched-LAN
    round-trips; ``sigma`` around 0.3-0.5 gives a realistic mild tail.
    """

    mean_delay: float
    sigma: float

    def __post_init__(self) -> None:
        if self.mean_delay <= 0 or self.sigma < 0:
            raise ConfigurationError("bad lognormal parameters")
        # Precomputed once: sample() runs per message on the hot path.  The
        # expression is identical to the historical per-call one, so the mu
        # bits — and therefore every RNG draw — are unchanged.
        object.__setattr__(self, "_mu", math.log(self.mean_delay) - self.sigma**2 / 2)

    def sample(self, rng) -> float:
        # _lognorm, inlined (one frame per sampled message delay).
        random = rng.random
        while True:
            u1 = random()
            u2 = 1.0 - random()
            z = NV_MAGICCONST * (u1 - 0.5) / u2
            zz = z * z / 4.0
            if zz <= -_log(u2):
                break
        return _exp(self._mu + z * self.sigma)

    def sample_many(self, rng, n: int) -> list[float]:
        # n inlined _lognorm draws with the loop constants hoisted.  Same
        # draws and float expressions as n sample() calls, bit for bit.
        random = rng.random
        mu = self._mu
        sigma = self.sigma
        magic = NV_MAGICCONST
        log = _log
        exp = _exp
        out = []
        append = out.append
        for _ in range(n):
            while True:
                u1 = random()
                u2 = 1.0 - random()
                z = magic * (u1 - 0.5) / u2
                zz = z * z / 4.0
                if zz <= -log(u2):
                    break
            append(exp(mu + z * sigma))
        return out

    def mean(self) -> float:
        return self.mean_delay

    def min_delay(self) -> float:
        # A log-normal's support is (0, inf): no positive lower bound.
        return 0.0 if self.sigma > 0 else self.mean_delay


@dataclass(frozen=True)
class LanDelay:
    """A 100 Mb-Ethernet-flavoured delay: wire base + jittered queueing tail.

    ``base`` models propagation plus kernel traversal; the log-normal jitter
    models switch and driver queueing.  Defaults approximate the sub-
    millisecond one-way delays of the paper's testbed.
    """

    base: float = 80e-6
    jitter_mean: float = 40e-6
    jitter_sigma: float = 0.6

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_mu", math.log(self.jitter_mean) - self.jitter_sigma**2 / 2
        )

    def sample(self, rng) -> float:
        # _lognorm, inlined (one frame per sampled message delay).
        random = rng.random
        while True:
            u1 = random()
            u2 = 1.0 - random()
            z = NV_MAGICCONST * (u1 - 0.5) / u2
            zz = z * z / 4.0
            if zz <= -_log(u2):
                break
        return self.base + _exp(self._mu + z * self.jitter_sigma)

    def sample_many(self, rng, n: int) -> list[float]:
        # n inlined _lognorm draws with the loop constants hoisted.  Same
        # draws and float expressions as n sample() calls, bit for bit.
        random = rng.random
        base = self.base
        mu = self._mu
        sigma = self.jitter_sigma
        magic = NV_MAGICCONST
        log = _log
        exp = _exp
        out = []
        append = out.append
        for _ in range(n):
            while True:
                u1 = random()
                u2 = 1.0 - random()
                z = magic * (u1 - 0.5) / u2
                zz = z * z / 4.0
                if zz <= -log(u2):
                    break
            append(base + exp(mu + z * sigma))
        return out

    def mean(self) -> float:
        return self.base + self.jitter_mean

    def min_delay(self) -> float:
        # The log-normal jitter's infimum is 0; the wire base remains.
        return self.base


@dataclass(slots=True)
class Envelope:
    """What the network hands to a destination node.

    ``msg_id`` is the network-wide send sequence number of this message
    (see :attr:`Network._msg_seq`); ``-1`` marks envelopes built outside
    the network's send path (tests constructing envelopes by hand).
    """

    src: int
    dst: int
    payload: Any
    channel: str
    sent_at: float
    size: int = 1
    msg_id: int = -1


@dataclass(frozen=True)
class LinkCapacity:
    """Finite-bandwidth model of the LAN fabric.

    ``frame_time`` is the wire occupancy of one message (e.g. a full
    ~1500-byte frame on 100 Mb Ethernet serialises in ~120 µs; protocol
    messages with headers and Java serialisation land around 40-100 µs).

    * ``shared`` — one half-duplex medium: every message in the whole
      network serialises through a single resource (classic hub/CSMA).
    * ``switched`` — full duplex per port: a sender's messages queue on its
      uplink, a receiver's on its downlink (store-and-forward switch).

    This is the load-dependent component of the latency/throughput curves:
    at high throughput the per-port queues grow, both inflating delays and
    perturbing datagram interleavings — which is exactly how spontaneous
    order degrades on a real LAN as load rises.
    """

    frame_time: float
    mode: str = "switched"

    def __post_init__(self) -> None:
        if self.frame_time < 0:
            raise ConfigurationError("frame_time must be >= 0")
        if self.mode not in ("shared", "switched"):
            raise ConfigurationError(f"unknown capacity mode {self.mode!r}")


#: Per-message fixed overhead (Ethernet + IP + TCP/UDP headers) assumed by
#: the wire-size estimate below.
HEADER_BYTES = 64


def _approx_bytes(payload: Any) -> int:
    """Deterministic wire-size estimate of a payload.

    The paper reports message *counts*; for byte-level accounting we
    approximate the serialised size as the header overhead plus the length
    of the payload's repr — crude, but stable across runs and monotone in
    the message's actual content, which is all the per-kind byte reports
    need.  This is the reference definition; :class:`NetworkStats` computes
    the same value through memoised fast paths.
    """
    return HEADER_BYTES + len(repr(payload))


#: ``len(repr(None))`` — used to strip the placeholder from a probed
#: ``Scoped`` wrapper repr when computing the wrapper's fixed overhead.
_NONE_REPR_LEN = len(repr(None))

#: Per-type sentinel marking "this type is a scope wrapper, unwrap it".
_WRAPPER = object()

#: Per-type sentinel marking "repr is not decomposable, use repr() directly".
_OPAQUE = object()


def _dataclass_repr_template(tp: type) -> tuple[tuple[str, ...], int] | None:
    """Field names and fixed overhead of a generated dataclass repr.

    A dataclass-generated ``__repr__`` renders as
    ``Qualname(f1=<repr>, f2=<repr>, ...)`` over the fields with
    ``repr=True``, so its length decomposes into a per-type constant plus
    the field-value repr lengths.  Returns None when ``tp`` is not a
    dataclass or overrides ``__repr__`` with its own implementation
    (the generated one is wrapped by ``reprlib.recursive_repr``, which is
    what the ``__wrapped__`` probe detects).
    """
    if not dataclasses.is_dataclass(tp):
        return None
    repr_fn = tp.__dict__.get("__repr__")
    if repr_fn is None or getattr(repr_fn, "__wrapped__", None) is None:
        return None
    names = tuple(f.name for f in dataclasses.fields(tp) if f.repr)
    # "Qualname(" + "f1=" + ", f2=" ... + ")"
    overhead = len(tp.__qualname__) + 2
    for index, name in enumerate(names):
        overhead += len(name) + 1 + (2 if index else 0)
    return names, overhead


#: Cap on the identity-keyed memo dicts (``_scope_overhead``,
#: ``_frozenset_lens``).  Long RSM runs mint fresh scope tuples and estimate
#: frozensets indefinitely; past the cap the oldest entry is evicted (dicts
#: iterate in insertion order), which only costs a recomputation — never
#: exactness — if that entry is ever needed again.
STATS_MEMO_CAP = 4096


class NetworkStats:
    """Counts messages, payload classes and estimated bytes on the network.

    Byte accounting is lazy/memoised but **exact**: every total equals the
    naive ``HEADER_BYTES + len(repr(payload))`` of the seed implementation.
    Three caches make the common cases cheap:

    * a one-entry identity cache — a broadcast hands the *same* payload
      object to every destination, so n sends cost one repr;
    * a per-scope overhead cache — a dataclass ``Scoped(scope, inner)`` repr
      is compositional (``"Scoped(scope=" + repr(scope) + ", inner=" +
      repr(inner) + ")"``), and a sub-module's scope tuple is one long-lived
      object, so only the (fresh) inner payload is ever repr'd;
    * a per-type kind cache, replacing two ``hasattr`` probes per send.
    """

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.bytes_sent = 0
        # Partition accounting: total sends blocked by a partition, plus one
        # {"start", "end", "blocked"} record per partition window (``end`` is
        # None while a window is still open).  Both appear in snapshot() only
        # when a partition was ever applied, so fault-free reports keep their
        # exact historical bytes.
        self.partition_blocked = 0
        self.partition_windows: list[dict] = []
        # Fan-out fast-path counters (surfaced by repro.perf).  Deliberately
        # not part of snapshot(): report JSON must stay byte-stable across
        # the batched and sequential send paths.
        self.fanout_batches = 0
        self.fanout_messages = 0
        # Per-channel counts and per-kind [count, bytes] pairs; one dict
        # lookup per send instead of three Counter updates.  Exposed as
        # Counters through the by_channel/by_kind/by_kind_bytes properties.
        self._channel_counts: dict[str, int] = {}
        self._kind_stats: dict[str, list[int]] = {}
        # kind per payload type; _WRAPPER marks scope wrappers.
        self._type_kind: dict[type, Any] = {}
        # id(scope) -> (scope ref, repr-length overhead of the wrapper).  The
        # kept reference pins the id against reuse.
        self._scope_overhead: dict[int, tuple[Any, int]] = {}
        # type -> (field names, fixed overhead) for decomposable dataclass
        # reprs, or _OPAQUE for everything else.
        self._repr_templates: dict[type, Any] = {}
        # Identity memo of the last accounted payload (ref kept, see above).
        self._last_payload: Any = None
        self._last_kind: str = ""
        self._last_size: int = 0
        # Identity memo of the last inner object measured by _repr_len:
        # a DECIDE fanned out to n - 1 peers arrives in n - 1 *distinct*
        # Scoped wrappers sharing one inner message.
        self._last_inner: Any = None
        self._last_inner_len: int = 0
        # record_sent's own inner memo (kind + length), same sharing pattern.
        self._last_sent_inner: Any = None
        self._last_sent_inner_kind: str = ""
        self._last_sent_inner_len: int = 0
        # id(frozenset) -> (ref, repr length).  Estimates travel as shared
        # frozenset objects resent across rounds and processes; a frozenset's
        # iteration order (hence repr) is fixed for a given object, so the
        # length is cacheable by identity.  The kept ref pins the id.
        self._frozenset_lens: dict[int, tuple[Any, int]] = {}

    # ------------------------------------------------------------- accounting

    def record_sent(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if payload is self._last_payload and payload is not None:
            kind = self._last_kind
            size = self._last_size
        else:
            if type(payload) is Scoped:
                # Unrolled common case: one scope wrapper around a message.
                # Kind and length of the *inner* object are memoised by
                # identity, so a fan-out of distinct wrappers sharing one
                # inner message (a forwarded DECIDE) costs one walk.
                scope = payload.scope
                cached = self._scope_overhead.get(id(scope))
                if cached is not None and cached[0] is scope:
                    overhead = cached[1]
                else:
                    overhead = len(repr(Scoped(scope, None))) - _NONE_REPR_LEN
                    memo = self._scope_overhead
                    memo[id(scope)] = (scope, overhead)
                    if len(memo) > STATS_MEMO_CAP:
                        del memo[next(iter(memo))]
                inner = payload.inner
                if inner is self._last_sent_inner and inner is not None:
                    kind = self._last_sent_inner_kind
                    inner_len = self._last_sent_inner_len
                else:
                    kind = self._kind_of(inner)
                    inner_len = self._repr_len(inner)
                    self._last_sent_inner = inner
                    self._last_sent_inner_kind = kind
                    self._last_sent_inner_len = inner_len
                size = HEADER_BYTES + overhead + inner_len
            else:
                kind = self._kind_of(payload)
                size = HEADER_BYTES + self._repr_len(payload)
            self._last_payload = payload
            self._last_kind = kind
            self._last_size = size
        self.sent += 1
        self.bytes_sent += size
        channel = envelope.channel
        channels = self._channel_counts
        channels[channel] = channels.get(channel, 0) + 1
        stats = self._kind_stats.get(kind)
        if stats is None:
            stats = self._kind_stats[kind] = [0, 0]
        stats[0] += 1
        stats[1] += size

    def _repr_len(self, payload: Any) -> int:
        """Exact ``len(repr(payload))``, avoiding reprs of cached structure.

        ``Scoped`` wrappers and dataclass messages have compositional
        generated reprs, so their fixed parts are cached per scope/type and
        only leaf values (ids, payloads — typically C-repr'd tuples and
        strings) are measured directly.
        """
        tp = type(payload)
        if tp is Scoped:
            scope = payload.scope
            cached = self._scope_overhead.get(id(scope))
            if cached is not None and cached[0] is scope:
                overhead = cached[1]
            else:
                overhead = len(repr(Scoped(scope, None))) - _NONE_REPR_LEN
                memo = self._scope_overhead
                memo[id(scope)] = (scope, overhead)
                if len(memo) > STATS_MEMO_CAP:
                    del memo[next(iter(memo))]
            inner = payload.inner
            if inner is self._last_inner and inner is not None:
                return overhead + self._last_inner_len
            inner_len = self._repr_len(inner)
            self._last_inner = inner
            self._last_inner_len = inner_len
            return overhead + inner_len
        if tp is frozenset:
            cached = self._frozenset_lens.get(id(payload))
            if cached is not None and cached[0] is payload:
                return cached[1]
            length = len(repr(payload))
            memo = self._frozenset_lens
            memo[id(payload)] = (payload, length)
            if len(memo) > STATS_MEMO_CAP:
                del memo[next(iter(memo))]
            return length
        template = self._repr_templates.get(tp)
        if template is None:
            template = self._learn_template(tp, payload)
        if template is _OPAQUE:
            return len(repr(payload))
        names, overhead = template
        total = overhead
        for name in names:
            value = getattr(payload, name)
            tv = type(value)
            if tv is int or tv is str or tv is tuple or tv is float:
                # C-repr'd leaf: a recursive call would land on the opaque
                # branch and compute exactly this.
                total += len(repr(value))
            else:
                total += self._repr_len(value)
        return total

    def _learn_template(self, tp: type, payload: Any) -> Any:
        """Learn (and verify) the repr decomposition of a new payload type."""
        template = _dataclass_repr_template(tp)
        if template is not None:
            names, overhead = template
            decomposed = overhead
            for name in names:
                decomposed += self._repr_len(getattr(payload, name))
            if decomposed != len(repr(payload)):  # paranoia: custom repr?
                template = None
        if template is None:
            template = _OPAQUE
        self._repr_templates[tp] = template
        return template

    def _kind_of(self, payload: Any) -> str:
        """Message-kind label (innermost payload type), cached per type."""
        tp = type(payload)
        kind = self._type_kind.get(tp)
        if kind is None:
            # Duck-typed so wrapper types other than Scoped keep working.
            if hasattr(payload, "scope") and hasattr(payload, "inner"):
                self._type_kind[tp] = _WRAPPER
                return self._kind_of(payload.inner)
            kind = tp.__name__
            self._type_kind[tp] = kind
            return kind
        if kind is _WRAPPER:
            return self._kind_of(payload.inner)
        return kind

    def record_delivered(self) -> None:
        self.delivered += 1

    def record_dropped(self) -> None:
        self.dropped += 1

    # ---------------------------------------------------- partition windows

    def begin_partition_window(self, now: float) -> None:
        self.end_partition_window(now)
        self.partition_windows.append({"start": now, "end": None, "blocked": 0})

    def end_partition_window(self, now: float) -> None:
        if self.partition_windows and self.partition_windows[-1]["end"] is None:
            self.partition_windows[-1]["end"] = now

    def record_partition_blocked(self) -> None:
        self.dropped += 1
        self.partition_blocked += 1
        if self.partition_windows and self.partition_windows[-1]["end"] is None:
            self.partition_windows[-1]["blocked"] += 1

    @property
    def by_channel(self) -> Counter:
        return Counter(self._channel_counts)

    @property
    def by_kind(self) -> Counter:
        return Counter({kind: s[0] for kind, s in self._kind_stats.items()})

    @property
    def by_kind_bytes(self) -> Counter:
        return Counter({kind: s[1] for kind, s in self._kind_stats.items()})

    def snapshot(self) -> dict:
        snap = {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "bytes_sent": self.bytes_sent,
            "by_channel": dict(self._channel_counts),
            "by_kind": {kind: s[0] for kind, s in self._kind_stats.items()},
            "by_kind_bytes": {kind: s[1] for kind, s in self._kind_stats.items()},
        }
        # Only runs that actually partitioned the network grow these keys;
        # every pre-existing report stays byte-identical.
        if self.partition_windows:
            snap["partition_blocked"] = self.partition_blocked
            snap["partition_windows"] = [dict(w) for w in self.partition_windows]
        return snap


def _kind_of(payload: Any) -> str:
    """Best-effort message-kind label used for per-type accounting."""
    unwrapped = payload
    while hasattr(unwrapped, "scope") and hasattr(unwrapped, "inner"):
        unwrapped = unwrapped.inner
    return type(unwrapped).__name__


# A link filter takes an Envelope and returns either a float (extra delay in
# seconds), True (deliver normally) or False/None (drop).
LinkFilter = Callable[[Envelope], "bool | float | None"]


class Network:
    """Message fabric connecting registered nodes.

    The network delivers by calling ``deliver(envelope)`` on the destination
    node object; :class:`repro.sim.node.Node` implements that hook (and the
    CPU/queueing model behind it).
    """

    def __init__(
        self,
        sim: Simulator,
        delay: DelayModel | None = None,
        datagram_delay: DelayModel | None = None,
        datagram_loss: float = 0.0,
        fifo_epsilon: float = 1e-9,
        capacity: "LinkCapacity | None" = None,
    ) -> None:
        if not 0.0 <= datagram_loss < 1.0:
            raise ConfigurationError(f"datagram_loss must be in [0,1), got {datagram_loss}")
        self.sim = sim
        self.delay = delay or LanDelay()
        self.datagram_delay = datagram_delay or self.delay
        # Bound sample methods: one attribute hop per send instead of two.
        # Delay models are frozen dataclasses and never swapped after
        # construction, so binding once is safe.  sample_many is optional on
        # the DelayModel protocol; None routes send_batch through n
        # sequential sample() calls (identical draws either way).
        self._delay_sample = self.delay.sample
        self._datagram_sample = self.datagram_delay.sample
        self._delay_sample_many = getattr(self.delay, "sample_many", None)
        self._datagram_sample_many = getattr(self.datagram_delay, "sample_many", None)
        self.datagram_loss = datagram_loss
        self.fifo_epsilon = fifo_epsilon
        self.capacity = capacity
        self.stats = NetworkStats()
        self._nodes: dict[int, Any] = {}
        self._pids_sorted: tuple[int, ...] = ()
        # Bound ``deliver_from`` methods, resolved once at registration:
        # pid -> method (None for duck-typed receivers that only implement
        # ``deliver(envelope)``), plus a tuple aligned with _pids_sorted so
        # broadcasts resolve the whole fan-out with one equality check.
        # The tuple is left empty when any receiver lacks the fast path.
        self._deliver_fast: dict[int, Any] = {}
        self._fast_sorted: tuple[Any, ...] = ()
        # src -> {dst -> last arrival time} (per-link FIFO floors).
        self._last_arrival: dict[int, dict[int, float]] = {}
        self._uplink_busy: dict[int, float] = {}
        self._downlink_busy: dict[int, float] = {}
        self._medium_busy = 0.0
        self._filters: list[LinkFilter] = []
        self._partitions: list[frozenset[int]] = []
        self._rng = sim.rng("network")
        # Network-wide send sequence number.  Every send consumes exactly one
        # id — including partition-blocked and filter-dropped sends, and the
        # fan-out fast path (which bulk-advances it) — so the id of the k-th
        # send is identical whether the run was batched or sequential, obs on
        # or off.  Under obs the id is stamped into msg-send/msg-deliver
        # records, giving every delivery a causal edge to its originating
        # send (repro.obs.causal builds the DAG from those edges).
        self._msg_seq = 0
        # Set by the obs runtime for detailed tracing (msg-send/msg-deliver
        # records); None keeps the hot path free of tracing work.
        self.obs_tracer = None
        # Partition-boundary hook (see repro.sim.parallel): when a send
        # targets a pid with no registered node, the callable — signature
        # ``(src, dst, payload, channel) -> None`` — takes the message
        # instead of the unknown-destination error.  The conservative
        # parallel runtime installs it to ship cross-partition messages to
        # the partition that owns ``dst``; it is None on ordinary networks.
        self.boundary = None

    # ------------------------------------------------------------- membership

    def register(self, pid: int, node: Any) -> None:
        """Attach ``node`` as the receiver for ``pid``.

        Receivers exposing ``deliver_from(src, payload)`` get arrivals
        dispatched to it directly (no :class:`Envelope`) and own the
        ``delivered`` stats increment, as :class:`~repro.sim.node.Node`
        does; receivers with only ``deliver(envelope)`` take the envelope
        path and are counted by the network.
        """
        if pid in self._nodes:
            raise ConfigurationError(f"node {pid} registered twice")
        self._nodes[pid] = node
        self._deliver_fast[pid] = getattr(node, "deliver_from", None)
        self._pids_sorted = tuple(sorted(self._nodes))
        fast = tuple(self._deliver_fast[p] for p in self._pids_sorted)
        self._fast_sorted = fast if None not in fast else ()

    @property
    def pids(self) -> tuple[int, ...]:
        """Registered pids, sorted — the cached tuple itself, never a copy."""
        return self._pids_sorted

    # --------------------------------------------------------- fault injection

    def add_filter(self, fn: LinkFilter) -> Callable[[], None]:
        """Install a link filter; returns a callable that removes it.

        Removal is by identity, not equality: installing two equal filters
        (e.g. the same function twice) and removing one always removes the
        instance this call installed.
        """
        self._filters.append(fn)

        def remove() -> None:
            for index, installed in enumerate(self._filters):
                if installed is fn:
                    del self._filters[index]
                    return

        return remove

    def partition(self, *groups: set[int]) -> None:
        """Split the network: messages only flow within a group.

        Applying a partition opens an accounting window in
        :class:`NetworkStats` (blocked sends are counted per window) and,
        when observability is on, records a ``net-partition`` trace event —
        partitions used to be invisible in trace exports.
        """
        was_partitioned = bool(self._partitions)
        self._partitions = [frozenset(g) for g in groups]
        now = self.sim._now
        if self._partitions:
            self.stats.begin_partition_window(now)
            if self.obs_tracer is not None:
                self.obs_tracer.emit(
                    now,
                    -1,
                    KINDS.NET_PARTITION,
                    {"groups": [sorted(g) for g in self._partitions]},
                )
        elif was_partitioned:
            # partition() with no groups is a heal in disguise.
            self._record_heal(now)

    def heal(self) -> None:
        """Remove any partition (closes the stats window, traces the heal)."""
        was_partitioned = bool(self._partitions)
        self._partitions = []
        if was_partitioned:
            self._record_heal(self.sim._now)

    def _record_heal(self, now: float) -> None:
        stats = self.stats
        stats.end_partition_window(now)
        if self.obs_tracer is not None:
            blocked = (
                stats.partition_windows[-1]["blocked"]
                if stats.partition_windows
                else 0
            )
            self.obs_tracer.emit(now, -1, KINDS.NET_HEAL, {"blocked": blocked})

    def _partition_blocks(self, src: int, dst: int) -> bool:
        if not self._partitions:
            return False
        return not any(src in g and dst in g for g in self._partitions)

    # ----------------------------------------------------------------- sending

    def send(self, src: int, dst: int, payload: Any, channel: str = RELIABLE) -> None:
        """Transmit ``payload`` from ``src`` to ``dst``.

        Reliable channels never drop (the system model's channels are
        reliable); they can only be severed by explicit partitions or
        filters, which tests use to model link failures.
        """
        node = self._nodes.get(dst)
        if node is None:
            if self.boundary is not None:
                self.boundary(src, dst, payload, channel)
                return
            raise ConfigurationError(f"unknown destination pid {dst}")
        sim = self.sim
        stats = self.stats
        now = sim._now
        # The envelope is only materialised for observers (filters, obs
        # tracing); the plain path delivers bare (src, payload).
        envelope = None
        # NetworkStats.record_sent(envelope), inlined minus the frame: this
        # is the single hottest call in a sweep.  Mirrors record_sent — keep
        # the two in sync (the accounting-exactness tests compare both
        # against the naive definition).
        if payload is stats._last_payload and payload is not None:
            kind = stats._last_kind
            size = stats._last_size
        else:
            if type(payload) is Scoped:
                scope = payload.scope
                cached = stats._scope_overhead.get(id(scope))
                if cached is not None and cached[0] is scope:
                    overhead = cached[1]
                else:
                    overhead = len(repr(Scoped(scope, None))) - _NONE_REPR_LEN
                    memo = stats._scope_overhead
                    memo[id(scope)] = (scope, overhead)
                    if len(memo) > STATS_MEMO_CAP:
                        del memo[next(iter(memo))]
                inner = payload.inner
                if inner is stats._last_sent_inner and inner is not None:
                    kind = stats._last_sent_inner_kind
                    inner_len = stats._last_sent_inner_len
                else:
                    kind = stats._kind_of(inner)
                    inner_len = stats._repr_len(inner)
                    stats._last_sent_inner = inner
                    stats._last_sent_inner_kind = kind
                    stats._last_sent_inner_len = inner_len
                size = HEADER_BYTES + overhead + inner_len
            else:
                kind = stats._kind_of(payload)
                size = HEADER_BYTES + stats._repr_len(payload)
            stats._last_payload = payload
            stats._last_kind = kind
            stats._last_size = size
        stats.sent += 1
        stats.bytes_sent += size
        channels = stats._channel_counts
        channels[channel] = channels.get(channel, 0) + 1
        kind_stats = stats._kind_stats.get(kind)
        if kind_stats is None:
            kind_stats = stats._kind_stats[kind] = [0, 0]
        kind_stats[0] += 1
        kind_stats[1] += size

        msg_id = self._msg_seq
        self._msg_seq = msg_id + 1

        if self.obs_tracer is not None:
            self.obs_tracer.emit(
                now,
                src,
                KINDS.MSG_SEND,
                {"dst": dst, "kind": kind, "channel": channel, "id": msg_id},
            )

        if self._partitions and self._partition_blocks(src, dst):
            stats.record_partition_blocked()
            return

        extra = 0.0
        if self._filters:
            envelope = Envelope(src, dst, payload, channel, now, msg_id=msg_id)
            for fn in self._filters:
                verdict = fn(envelope)
                if verdict is False or verdict is None:
                    stats.record_dropped()
                    return
                if isinstance(verdict, (int, float)) and verdict is not True:
                    extra += float(verdict)

        # Sender-side serialisation: the message occupies its uplink (or the
        # shared medium) for one frame time before it can propagate.
        departure = now
        capacity = self.capacity
        if capacity is not None:
            # size is 1 unless a filter rewrote it on the envelope.
            frame = capacity.frame_time if envelope is None else capacity.frame_time * envelope.size
            if capacity.mode == "shared":
                start = departure
                busy = self._medium_busy
                if busy > start:
                    start = busy
                self._medium_busy = start + frame
            else:
                start = departure
                busy = self._uplink_busy.get(src, 0.0)
                if busy > start:
                    start = busy
                self._uplink_busy[src] = start + frame
            departure = start + frame

        if channel == DATAGRAM:
            if self.datagram_loss and self._rng.random() < self.datagram_loss:
                stats.record_dropped()
                return
            arrival = departure + self._datagram_sample(self._rng) + extra
        elif channel == RELIABLE:
            # Self-messages traverse the same transport model (as in Neko):
            # this is what makes the simulator reproduce the paper's uniform
            # communication-step accounting (1δ per round for everyone).
            arrival = departure + self._delay_sample(self._rng) + extra
        else:
            raise ConfigurationError(f"unknown channel {channel!r}")

        # Receiver-side serialisation on the switch downlink port.
        if capacity is not None and capacity.mode == "switched":
            frame = capacity.frame_time if envelope is None else capacity.frame_time * envelope.size
            busy = self._downlink_busy.get(dst, 0.0)
            if busy > arrival:
                arrival = busy
            arrival += frame
            self._downlink_busy[dst] = arrival

        if channel == RELIABLE:
            # Enforce per-link FIFO: a message never overtakes an earlier one.
            # Per-src sub-dicts avoid a tuple allocation + hash per send.
            per_src = self._last_arrival.get(src)
            if per_src is None:
                per_src = self._last_arrival[src] = {}
            floor = per_src.get(dst, -math.inf) + self.fifo_epsilon
            if floor > arrival:
                arrival = floor
            per_src[dst] = arrival

        # The destination object is resolved here (nodes are never
        # unregistered), so the arrival event dispatches straight to it:
        # bare (src, payload) to Node.deliver_from on the plain path, the
        # full envelope through _deliver_to when an observer needs it (obs
        # tracing; filters, whose mutations must reach the receiver).
        # Inlined sim.schedule_call_at: same `now + (arrival - now)` float
        # arithmetic (timestamp bits must not change), minus one frame per
        # message.  arrival >= now always holds on this path, so the
        # negative-delay guard reduces to a fallback branch.
        fn = None
        if envelope is None and self.obs_tracer is None:
            fn = self._deliver_fast.get(dst)
        if fn is not None:
            args = (src, payload)
        else:
            if envelope is None:
                envelope = Envelope(src, dst, payload, channel, now, msg_id=msg_id)
            fn = self._deliver_to
            args = (node, envelope)
        delay = arrival - now
        if delay >= 0.0:
            seq = sim._seq
            sim._seq = seq + 1
            heappush(sim._queue, (now + delay, seq, fn, args, None))
        else:
            sim.schedule_call_at(arrival, fn, args)

    def send_batch(
        self, src: int, dsts: "tuple[int, ...] | list[int]", payload: Any,
        channel: str = RELIABLE,
    ) -> None:
        """Transmit ``payload`` from ``src`` to each pid in ``dsts``, in order.

        Byte-for-byte equivalent to ``for dst in dsts: self.send(src, dst,
        payload, channel)`` — same RNG draws in the same order, same float
        arithmetic, same heap entries — but with the per-message constant
        work hoisted out of the loop: the payload is sized once and its
        counters bulk-incremented, delays come from one
        :meth:`DelayModel.sample_many` call, the sender-side busy time is
        chained through a local, and arrivals are pushed as bare heap
        entries with :meth:`Simulator.schedule_calls_at`'s bulk arithmetic
        inlined.  Any feature that interleaves
        per message (partitions, filters, obs tracing, lossy datagrams —
        whose loss draw precedes each delay draw) falls back to the
        sequential path to keep the RNG stream identical.
        """
        n = len(dsts)
        if n == 0:
            return
        sim = self.sim
        if (
            n == 1
            or self._partitions
            or self._filters
            or self.obs_tracer is not None
            or (channel == DATAGRAM and self.datagram_loss)
            or not sim.batch
        ):
            # not sim.batch: one spec-level flag disables both halves of the
            # batched execution path (kernel cohorts and network fan-out), so
            # REPRO_KERNEL_BATCH=0 bisects against fully sequential behaviour.
            send = self.send
            for dst in dsts:
                send(src, dst, payload, channel)
            return
        if channel == RELIABLE:
            sample_many = self._delay_sample_many
            sample = self._delay_sample
            reliable = True
        elif channel == DATAGRAM:
            sample_many = self._datagram_sample_many
            sample = self._datagram_sample
            reliable = False
        else:
            raise ConfigurationError(f"unknown channel {channel!r}")
        if self._fast_sorted and dsts == self._pids_sorted:
            # Broadcast to the full sorted group (env.peers tuples compare
            # equal even when not the cached object): pre-bound methods.
            resolved = self._fast_sorted
        else:
            deliver_fast = self._deliver_fast
            resolved = []
            append_fn = resolved.append
            for dst in dsts:
                fn = deliver_fast.get(dst)
                if fn is None:
                    if dst not in self._nodes and self.boundary is None:
                        raise ConfigurationError(f"unknown destination pid {dst}")
                    # Duck-typed receiver without deliver_from (or a
                    # partition-boundary destination): sequential sends keep
                    # its envelope-only contract intact.
                    send = self.send
                    for d in dsts:
                        send(src, d, payload, channel)
                    return
                append_fn(fn)

        stats = self.stats
        now = sim._now
        # Payload accounting, once per batch: every destination carries the
        # same payload object, so kind and size are computed once and the
        # counters bulk-incremented.  Mirrors the send() inline of
        # NetworkStats.record_sent — keep the three in sync.
        if payload is stats._last_payload and payload is not None:
            kind = stats._last_kind
            size = stats._last_size
        else:
            if type(payload) is Scoped:
                scope = payload.scope
                cached = stats._scope_overhead.get(id(scope))
                if cached is not None and cached[0] is scope:
                    overhead = cached[1]
                else:
                    overhead = len(repr(Scoped(scope, None))) - _NONE_REPR_LEN
                    memo = stats._scope_overhead
                    memo[id(scope)] = (scope, overhead)
                    if len(memo) > STATS_MEMO_CAP:
                        del memo[next(iter(memo))]
                inner = payload.inner
                if inner is stats._last_sent_inner and inner is not None:
                    kind = stats._last_sent_inner_kind
                    inner_len = stats._last_sent_inner_len
                else:
                    kind = stats._kind_of(inner)
                    inner_len = stats._repr_len(inner)
                    stats._last_sent_inner = inner
                    stats._last_sent_inner_kind = kind
                    stats._last_sent_inner_len = inner_len
                size = HEADER_BYTES + overhead + inner_len
            else:
                kind = stats._kind_of(payload)
                size = HEADER_BYTES + stats._repr_len(payload)
            stats._last_payload = payload
            stats._last_kind = kind
            stats._last_size = size
        stats.sent += n
        stats.bytes_sent += size * n
        channels = stats._channel_counts
        channels[channel] = channels.get(channel, 0) + n
        kind_stats = stats._kind_stats.get(kind)
        if kind_stats is None:
            kind_stats = stats._kind_stats[kind] = [0, 0]
        kind_stats[0] += n
        kind_stats[1] += size * n
        stats.fanout_batches += 1
        stats.fanout_messages += n
        # Bulk-advance the send sequence so the fast path consumes exactly
        # the ids n sequential send() calls would (ids stay aligned whether
        # or not any particular fan-out took this path).
        self._msg_seq += n

        rng = self._rng
        if sample_many is not None:
            delays = sample_many(rng, n)
        else:
            delays = [sample(rng) for _ in range(n)]

        # Capacity: the sender-side busy time (uplink or shared medium)
        # chains through every message of the batch, so it lives in a local
        # and is written back once.  Downlinks are per destination.
        capacity = self.capacity
        switched = False
        frame = 0.0
        busy = 0.0
        downlink = None
        if capacity is not None:
            frame = capacity.frame_time  # fresh envelopes have size == 1
            if capacity.mode == "shared":
                busy = self._medium_busy
            else:
                switched = True
                busy = self._uplink_busy.get(src, 0.0)
                downlink = self._downlink_busy
        if reliable:
            per_src = self._last_arrival.get(src)
            if per_src is None:
                per_src = self._last_arrival[src] = {}
            floor_get = per_src.get
            fifo_epsilon = self.fifo_epsilon
        neg_inf = -math.inf

        # Arrival events are pushed inline with the loop constants (queue,
        # seq counter) hoisted — the bulk-entry arithmetic of
        # Simulator.schedule_calls_at minus the intermediate call list.  The
        # timestamp expression (``now + delay``) and the negative-delay
        # fallback are exactly send()'s, so heap entries are bit-identical.
        # This path runs only when no observer needs the full envelope (the
        # obs/filter gate above fell back to send()), so arrivals dispatch
        # straight to Node.deliver_from with one shared (src, payload) tuple
        # — no Envelope allocation and no per-destination args tuple.
        queue = sim._queue
        push = heappush
        args = (src, payload)
        seq = sim._seq
        try:
            for dst, dst_delay, deliver in zip(dsts, delays, resolved):
                departure = now
                if capacity is not None:
                    if busy > departure:
                        departure = busy
                    busy = departure + frame
                    departure = busy
                arrival = departure + dst_delay
                if switched:
                    dbusy = downlink.get(dst, 0.0)
                    if dbusy > arrival:
                        arrival = dbusy
                    arrival += frame
                    downlink[dst] = arrival
                if reliable:
                    floor = floor_get(dst, neg_inf) + fifo_epsilon
                    if floor > arrival:
                        arrival = floor
                    per_src[dst] = arrival
                delay = arrival - now
                if delay >= 0.0:
                    push(queue, (now + delay, seq, deliver, args, None))
                    seq += 1
                else:
                    sim._seq = seq
                    sim.schedule_call_at(arrival, deliver, args)
                    seq = sim._seq
        finally:
            sim._seq = seq
        if capacity is not None:
            if switched:
                self._uplink_busy[src] = busy
            else:
                self._medium_busy = busy

    def broadcast(self, src: int, payload: Any, channel: str = RELIABLE) -> None:
        """Send ``payload`` from ``src`` to every registered node (incl. src)."""
        self.send_batch(src, self._pids_sorted, payload, channel)

    def _deliver_to(self, node: Any, envelope: Envelope) -> None:
        # Delivered accounting lives in Node.deliver_from (shared with the
        # envelope-free fast path); duck-typed receivers without it are
        # counted here instead.
        if not hasattr(node, "deliver_from"):
            self.stats.delivered += 1
        if self.obs_tracer is not None:
            self.obs_tracer.emit(
                self.sim._now,
                envelope.dst,
                KINDS.MSG_DELIVER,
                {
                    "src": envelope.src,
                    "kind": self.stats._kind_of(envelope.payload),
                    "channel": envelope.channel,
                    "id": envelope.msg_id,
                },
            )
        node.deliver(envelope)
