"""Asyncio runtime: the simulator's protocols, executed live."""

from repro.runtime.asyncio_runtime import AsyncCluster, AsyncNode

__all__ = ["AsyncCluster", "AsyncNode"]
