"""Asyncio runtime: execute the simulator's protocol code live.

The protocols in this repository are written against the abstract
:class:`~repro.sim.process.Environment`; this module provides a concrete
environment backed by asyncio instead of the discrete-event kernel, so the
*identical* protocol objects (L-/P-Consensus, C-Abcast, Paxos, ...) run in
real time — the in-process analogue of deploying them on the paper's
cluster.

Design notes
------------
* Every node owns an inbox (:class:`asyncio.Queue`) and a consumer task;
  handler executions are serialised per node, like the simulator's CPU.
* Message delays are sampled from the same :class:`DelayModel` classes as
  the simulator and realised with ``loop.call_later`` — reliable channels
  additionally enforce per-link FIFO just like :class:`repro.sim.network`.
* Timers map to ``call_later`` handles; re-arming a named timer cancels the
  previous one, matching :meth:`repro.sim.node.Node.set_timer`.
* ``crash()`` freezes a node: queued and future events are discarded
  (crash-stop, section 3 of the paper).
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.sim.kernel import derive_seed
from repro.sim.network import ConstantDelay, DelayModel
from repro.sim.process import Environment, Process

__all__ = ["AsyncNode", "AsyncCluster"]


class _AsyncEnvironment(Environment):
    """Environment implementation bound to an :class:`AsyncNode`."""

    def __init__(self, node: "AsyncNode") -> None:
        self._node = node
        self.pid = node.pid
        self.peers = tuple(node.cluster.pids)
        self.rng = random.Random(derive_seed(node.cluster.seed, "proc", node.pid))

    def send(self, dst: int, msg: Any) -> None:
        self._node.cluster.transmit(self.pid, dst, msg, reliable=True)

    def datagram(self, dst: int, msg: Any) -> None:
        self._node.cluster.transmit(self.pid, dst, msg, reliable=False)

    def now(self) -> float:
        return self._node.cluster.loop.time()

    def set_timer(self, name: Any, delay: float) -> None:
        self._node.set_timer(name, delay)

    def cancel_timer(self, name: Any) -> None:
        self._node.cancel_timer(name)


class AsyncNode:
    """One live protocol endpoint."""

    def __init__(self, cluster: "AsyncCluster", pid: int, process: Process) -> None:
        self.cluster = cluster
        self.pid = pid
        self.process = process
        self.inbox: asyncio.Queue = asyncio.Queue()
        self.crashed = False
        self._timers: dict[Any, asyncio.TimerHandle] = {}
        self._consumer: asyncio.Task | None = None
        process.bind(_AsyncEnvironment(self))

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self._consumer = asyncio.get_running_loop().create_task(self._consume())
        self.inbox.put_nowait(("start", None, None))

    def crash(self) -> None:
        """Crash-stop: cancel timers, stop consuming, drop queued events."""
        if self.crashed:
            return
        self.crashed = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self.process.on_crash()

    async def shutdown(self) -> None:
        if self._consumer is not None:
            self._consumer.cancel()
            try:
                await self._consumer
            except asyncio.CancelledError:
                pass

    # --------------------------------------------------------------- delivery

    def enqueue(self, kind: str, src: int | None, payload: Any) -> None:
        if not self.crashed:
            self.inbox.put_nowait((kind, src, payload))

    def set_timer(self, name: Any, delay: float) -> None:
        if self.crashed:
            return
        self.cancel_timer(name)
        loop = asyncio.get_running_loop()
        self._timers[name] = loop.call_later(
            delay * self.cluster.time_scale, self._timer_fired, name
        )

    def cancel_timer(self, name: Any) -> None:
        handle = self._timers.pop(name, None)
        if handle is not None:
            handle.cancel()

    def _timer_fired(self, name: Any) -> None:
        self._timers.pop(name, None)
        self.enqueue("timer", None, name)

    async def _consume(self) -> None:
        while True:
            kind, src, payload = await self.inbox.get()
            if self.crashed:
                continue
            if kind == "start":
                self.process.on_start()
            elif kind == "message":
                self.process.on_message(src, payload)
            elif kind == "timer":
                self.process.on_timer(payload)


class AsyncCluster:
    """A group of :class:`AsyncNode` endpoints sharing an in-process network.

    Parameters
    ----------
    n:
        Number of nodes (pids ``0 .. n-1``).
    process_factory:
        ``factory(pid, pids) -> Process``.
    delay, datagram_delay:
        Delay models (same classes as the simulator); default: 1 ms constant.
    datagram_loss:
        Drop probability for datagrams (reliable channels never drop).
    time_scale:
        Multiplier applied to every delay and timer — use < 1 to run
        protocol time faster than wall-clock time in tests.
    """

    def __init__(
        self,
        n: int,
        process_factory: Callable[[int, list[int]], Process],
        delay: DelayModel | None = None,
        datagram_delay: DelayModel | None = None,
        datagram_loss: float = 0.0,
        time_scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n < 1:
            raise ConfigurationError("AsyncCluster needs at least one node")
        if not 0.0 <= datagram_loss < 1.0:
            raise ConfigurationError("datagram_loss must be in [0, 1)")
        if time_scale <= 0:
            raise ConfigurationError("time_scale must be positive")
        self.pids = list(range(n))
        self.delay = delay or ConstantDelay(1e-3)
        self.datagram_delay = datagram_delay or self.delay
        self.datagram_loss = datagram_loss
        self.time_scale = time_scale
        self.seed = seed
        self._net_rng = random.Random(derive_seed(seed, "async-network"))
        self._last_arrival: dict[tuple[int, int], float] = {}
        self.nodes: dict[int, AsyncNode] = {}
        self.loop: asyncio.AbstractEventLoop | None = None  # set in start()
        self.messages_sent = 0
        for pid in self.pids:
            process = process_factory(pid, self.pids)
            self.nodes[pid] = AsyncNode(self, pid, process)

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self.loop = asyncio.get_running_loop()
        for node in self.nodes.values():
            node.start()

    async def run(self, duration: float) -> None:
        """Let the cluster run for ``duration`` protocol seconds."""
        await asyncio.sleep(duration * self.time_scale)

    async def shutdown(self) -> None:
        for node in self.nodes.values():
            await node.shutdown()

    def crash(self, pid: int) -> None:
        self.nodes[pid].crash()

    @property
    def processes(self) -> dict[int, Process]:
        return {pid: node.process for pid, node in self.nodes.items()}

    # --------------------------------------------------------------- network

    def transmit(self, src: int, dst: int, msg: Any, reliable: bool) -> None:
        if self.loop is None:
            raise ConfigurationError("cluster not started")
        node = self.nodes.get(dst)
        if node is None:
            raise ConfigurationError(f"unknown destination {dst}")
        self.messages_sent += 1
        if not reliable and self.datagram_loss and self._net_rng.random() < self.datagram_loss:
            return
        model = self.delay if reliable else self.datagram_delay
        delay = model.sample(self._net_rng) * self.time_scale
        arrival = self.loop.time() + delay
        if reliable:
            key = (src, dst)
            arrival = max(arrival, self._last_arrival.get(key, 0.0) + 1e-9)
            self._last_arrival[key] = arrival
        self.loop.call_at(arrival, node.enqueue, "message", src, msg)
