"""State machines replicated by the RSM layer.

The paper opens with the observation that atomic broadcast "is at the core
of state machine replication": once commands are a-delivered in a single
total order, applying them through a *deterministic* state machine keeps
every replica's state identical.  This module defines the contract that
determinism rests on and a reference machine — a key-value store — used by
the service-level experiments and the examples.

Determinism contract (what :class:`RsmReplica` relies on):

* :meth:`StateMachine.apply` must be a pure function of (current state,
  command) — no clocks, no randomness, no I/O;
* :meth:`StateMachine.snapshot` / :meth:`StateMachine.install` must
  round-trip the full state, so a replica restored from a snapshot is
  indistinguishable from one that replayed the log;
* :meth:`StateMachine.digest` must be a stable fingerprint of the state —
  two replicas with equal digests hold equal state.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError

__all__ = [
    "Command",
    "StateMachine",
    "KvStore",
    "OPS",
    "TxnCommand",
    "TxnKvStore",
    "TXN_OPS",
]

#: Operations understood by the reference KV machine.
OPS = ("set", "get", "del", "cas")

#: Two-phase-commit operations understood by the transactional KV machine.
TXN_OPS = ("txn-prepare", "txn-commit", "txn-abort", "txn-decide")


@dataclass(frozen=True, slots=True)
class Command:
    """One state-machine command.

    For the KV machine: ``set key value``, ``get key``, ``del key`` and
    ``cas key expect value`` (write ``value`` iff the current value equals
    ``expect``).  Payloads stay plain strings so commands serialise cleanly
    through the network byte accounting and into JSON reports.
    """

    op: str
    key: str
    value: str | None = None
    expect: str | None = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ConfigurationError(f"unknown op {self.op!r}; choices: {OPS}")


@dataclass(frozen=True, slots=True)
class TxnCommand:
    """One two-phase-commit step, replicated like any other command.

    2PC over shards reuses the consensus log instead of adding a protocol:
    every step is totally ordered within its group, deduplicated by
    (session, seq) like a plain command, and therefore survives leader
    crashes and client failover with exactly-once semantics.

    * ``txn-prepare`` — stage ``writes`` on a participant shard and lock
      their keys; applies to ``"yes"`` or ``"conflict"`` (the vote);
    * ``txn-decide`` — record the coordinator's durable commit/abort
      decision in its shard's replicated state (the 2PC decision record);
    * ``txn-commit`` / ``txn-abort`` — apply or discard the staged writes
      on a participant and release its locks.
    """

    op: str
    txid: str
    writes: tuple[tuple[str, str], ...] = ()
    decision: str | None = None

    def __post_init__(self) -> None:
        if self.op not in TXN_OPS:
            raise ConfigurationError(f"unknown txn op {self.op!r}; choices: {TXN_OPS}")
        if self.op == "txn-decide" and self.decision not in ("commit", "abort"):
            raise ConfigurationError(
                f"txn-decide needs decision 'commit' or 'abort', got {self.decision!r}"
            )

    @property
    def keys(self) -> tuple[str, ...]:
        return tuple(key for key, _ in self.writes)


class StateMachine(abc.ABC):
    """Deterministic command-application contract for replicated services."""

    @abc.abstractmethod
    def apply(self, command: Command) -> Any:
        """Apply ``command`` and return its result (must be deterministic)."""

    @abc.abstractmethod
    def snapshot(self) -> Any:
        """Serialisable copy of the full state (safe to hand to peers)."""

    @abc.abstractmethod
    def install(self, state: Any) -> None:
        """Replace the state with a previously taken :meth:`snapshot`."""

    @abc.abstractmethod
    def digest(self) -> str:
        """Stable fingerprint of the state; equal digests ⇒ equal state."""


class KvStore(StateMachine):
    """The reference machine: a string→string map with SET/GET/DEL/CAS.

    Results are what a client would see at commit time: ``set`` echoes the
    written value, ``get`` returns the current value (or None), ``del``
    returns the removed value (or None), ``cas`` returns True/False for
    applied/failed.
    """

    def __init__(self) -> None:
        self._data: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._data)

    def items(self) -> list[tuple[str, str]]:
        return sorted(self._data.items())

    def apply(self, command: Command) -> Any:
        op = command.op
        if op == "set":
            self._data[command.key] = command.value
            return command.value
        if op == "get":
            return self._data.get(command.key)
        if op == "del":
            return self._data.pop(command.key, None)
        # cas: compare-and-set against the *committed* value at apply time.
        if self._data.get(command.key) == command.expect:
            self._data[command.key] = command.value
            return True
        return False

    def snapshot(self) -> dict[str, str]:
        return dict(self._data)

    def install(self, state: dict[str, str]) -> None:
        self._data = dict(state)

    def digest(self) -> str:
        material = repr(sorted(self._data.items())).encode("utf-8")
        return hashlib.sha256(material).hexdigest()


class TxnKvStore(KvStore):
    """KvStore that additionally speaks 2PC (:class:`TxnCommand`).

    Staged writes live outside the visible map until ``txn-commit``; a
    per-key lock table makes concurrent prepares over a shared key vote
    ``"conflict"``, which the coordinator turns into an abort — locks only
    guard prepare-vs-prepare, so 2PC never deadlocks and never blocks plain
    traffic.  Plain single-key ops deliberately ignore the locks: a
    single-shard op serialises at its own apply point, so it can sit before
    or after any cross-shard transaction without creating a cycle in the
    cross-shard commit order.

    The coordinator's decision record (``txn-decide``) is part of the
    replicated state, so it survives snapshots, log replay and learner
    rejoin — that is what makes the 2PC outcome crash-safe.
    """

    def __init__(self) -> None:
        super().__init__()
        self._prepared: dict[str, tuple[tuple[str, str], ...]] = {}
        self._locks: dict[str, str] = {}
        self._decisions: dict[str, str] = {}

    def apply(self, command: Command | TxnCommand) -> Any:
        if not isinstance(command, TxnCommand):
            return super().apply(command)
        op, txid = command.op, command.txid
        if op == "txn-prepare":
            if txid in self._prepared:
                return "yes"
            if any(self._locks.get(key, txid) != txid for key in command.keys):
                return "conflict"
            self._prepared[txid] = command.writes
            for key in command.keys:
                self._locks[key] = txid
            return "yes"
        if op == "txn-decide":
            self._decisions.setdefault(txid, command.decision)
            return self._decisions[txid]
        # txn-commit / txn-abort: consume the stage, release the locks.
        staged = self._prepared.pop(txid, None)
        if staged is None:
            return "stale"
        for key, _ in staged:
            if self._locks.get(key) == txid:
                del self._locks[key]
        if op == "txn-commit":
            for key, value in staged:
                self._data[key] = value
            return "committed"
        return "aborted"

    def decision_of(self, txid: str) -> str | None:
        """The durable 2PC decision recorded for ``txid`` (coordinator side)."""
        return self._decisions.get(txid)

    @property
    def prepared_txids(self) -> list[str]:
        return sorted(self._prepared)

    def snapshot(self) -> dict[str, Any]:
        return {
            "data": super().snapshot(),
            "prepared": {t: list(w) for t, w in self._prepared.items()},
            "locks": dict(self._locks),
            "decisions": dict(self._decisions),
        }

    def install(self, state: dict[str, Any]) -> None:
        super().install(state["data"])
        self._prepared = {
            t: tuple((k, v) for k, v in writes)
            for t, writes in state["prepared"].items()
        }
        self._locks = dict(state["locks"])
        self._decisions = dict(state["decisions"])

    def digest(self) -> str:
        # Digest-compatible with a plain KvStore whenever no txn residue is
        # pending, so a drained transactional shard can be compared against
        # a command-by-command KvStore replay.
        if not (self._prepared or self._locks or self._decisions):
            return super().digest()
        material = repr(
            (
                sorted(self._data.items()),
                sorted((t, tuple(w)) for t, w in self._prepared.items()),
                sorted(self._locks.items()),
                sorted(self._decisions.items()),
            )
        ).encode("utf-8")
        return hashlib.sha256(material).hexdigest()
