"""State machines replicated by the RSM layer.

The paper opens with the observation that atomic broadcast "is at the core
of state machine replication": once commands are a-delivered in a single
total order, applying them through a *deterministic* state machine keeps
every replica's state identical.  This module defines the contract that
determinism rests on and a reference machine — a key-value store — used by
the service-level experiments and the examples.

Determinism contract (what :class:`RsmReplica` relies on):

* :meth:`StateMachine.apply` must be a pure function of (current state,
  command) — no clocks, no randomness, no I/O;
* :meth:`StateMachine.snapshot` / :meth:`StateMachine.install` must
  round-trip the full state, so a replica restored from a snapshot is
  indistinguishable from one that replayed the log;
* :meth:`StateMachine.digest` must be a stable fingerprint of the state —
  two replicas with equal digests hold equal state.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["Command", "StateMachine", "KvStore", "OPS"]

#: Operations understood by the reference KV machine.
OPS = ("set", "get", "del", "cas")


@dataclass(frozen=True, slots=True)
class Command:
    """One state-machine command.

    For the KV machine: ``set key value``, ``get key``, ``del key`` and
    ``cas key expect value`` (write ``value`` iff the current value equals
    ``expect``).  Payloads stay plain strings so commands serialise cleanly
    through the network byte accounting and into JSON reports.
    """

    op: str
    key: str
    value: str | None = None
    expect: str | None = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ConfigurationError(f"unknown op {self.op!r}; choices: {OPS}")


class StateMachine(abc.ABC):
    """Deterministic command-application contract for replicated services."""

    @abc.abstractmethod
    def apply(self, command: Command) -> Any:
        """Apply ``command`` and return its result (must be deterministic)."""

    @abc.abstractmethod
    def snapshot(self) -> Any:
        """Serialisable copy of the full state (safe to hand to peers)."""

    @abc.abstractmethod
    def install(self, state: Any) -> None:
        """Replace the state with a previously taken :meth:`snapshot`."""

    @abc.abstractmethod
    def digest(self) -> str:
        """Stable fingerprint of the state; equal digests ⇒ equal state."""


class KvStore(StateMachine):
    """The reference machine: a string→string map with SET/GET/DEL/CAS.

    Results are what a client would see at commit time: ``set`` echoes the
    written value, ``get`` returns the current value (or None), ``del``
    returns the removed value (or None), ``cas`` returns True/False for
    applied/failed.
    """

    def __init__(self) -> None:
        self._data: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._data)

    def items(self) -> list[tuple[str, str]]:
        return sorted(self._data.items())

    def apply(self, command: Command) -> Any:
        op = command.op
        if op == "set":
            self._data[command.key] = command.value
            return command.value
        if op == "get":
            return self._data.get(command.key)
        if op == "del":
            return self._data.pop(command.key, None)
        # cas: compare-and-set against the *committed* value at apply time.
        if self._data.get(command.key) == command.expect:
            self._data[command.key] = command.value
            return True
        return False

    def snapshot(self) -> dict[str, str]:
        return dict(self._data)

    def install(self, state: dict[str, str]) -> None:
        self._data = dict(state)

    def digest(self) -> str:
        material = repr(sorted(self._data.items())).encode("utf-8")
        return hashlib.sha256(material).hexdigest()
