"""Execute one RSM service run: cluster, clients, crashes, recovery, checks.

:func:`run_rsm` is to :class:`~repro.engine.spec.RsmRunSpec` what
``run_abcast`` is to ``AbcastRunSpec``: it builds a fresh simulated cluster
of :class:`~repro.rsm.replica.RsmReplica` nodes over the named abcast
protocol, drives the client sessions, injects the scripted crashes (each
crashed replica rejoins as a learner after ``recover_after``), runs to the
horizon and validates the service-level guarantees:

* abcast total order over the survivors' delivery sequences;
* exactly-once + session order + index-aligned log agreement over every
  replica's applied log (learner included);
* linearizability of the committed history, by deterministic replay;
* recovery convergence — each rejoined learner's state digest must equal
  the survivors' at drain;
* client termination — every submitted request is eventually acknowledged.

:func:`service_metrics` distils a finished run into the JSON-safe metrics
section carried by ``RunReport.rsm`` (committed-ops/s, commit-latency
percentiles, batch-size distribution, apply lag, snapshot accounting,
dedup/retry counters, recovery summary).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.engine.context import RunContext
from repro.engine.spec import RsmRunSpec
from repro.errors import (
    ConfigurationError,
    LinearizabilityViolation,
    ReproError,
    TerminationFailure,
)
from repro.fd.oracle import OracleFailureDetector
from repro.harness.checkers import (
    check_rsm_exactly_once,
    check_rsm_linearizable,
    check_rsm_log_consistent,
    check_rsm_session_order,
    check_uniform_total_order,
)
from repro.harness.registry import ABCAST, get_protocol
from repro.rsm.client import CommandStream, ServingSet, SessionDriver
from repro.rsm.machine import KvStore
from repro.rsm.replica import RsmReplica
from repro.rsm.session import Request
from repro.sim.kernel import Simulator, derive_seed
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.storage import StorageFabric
from repro.workload.metrics import _percentile, summarize

__all__ = ["RsmRunResult", "run_rsm", "service_metrics"]


@dataclass
class RsmRunResult:
    """Everything a finished RSM run exposes to metrics and tests."""

    spec: RsmRunSpec
    replicas: dict[int, RsmReplica]          # final incarnation per pid
    first_lives: dict[int, RsmReplica]       # pre-crash incarnations
    learners: dict[int, RsmReplica]          # rejoined replicas (subset)
    drivers: dict[int, Any]                  # session -> SessionDriver
    authority: int                           # pid of the reference survivor
    crashed: list[int]
    duration: float
    network_stats: dict
    linearizable: bool
    sim: Simulator = field(repr=False)
    nodes: dict[int, Node] = field(repr=False, default_factory=dict)

    @property
    def committed(self) -> int:
        return self.replicas[self.authority].applied_index

    def digests(self) -> dict[int, str]:
        return {pid: replica.digest() for pid, replica in self.replicas.items()}


def _build_arrivals(spec: RsmRunSpec, session: int) -> list[float]:
    """Open-loop Poisson plan for one session (aggregate rate split evenly)."""
    rng = random.Random(derive_seed(spec.seed, "rsm-arrivals", session))
    per_session = spec.rate / spec.clients
    t = 0.0
    plan: list[float] = []
    while True:
        t += rng.expovariate(per_session)
        if t >= spec.duration:
            return plan
        plan.append(t)


def run_rsm(
    spec: RsmRunSpec, tracer=None, obs=None, ctx=None, workers_cap=None
) -> RsmRunResult:
    """Run one RSM service spec on a fresh simulated cluster.

    Observation rides in ``ctx`` (a :class:`~repro.engine.RunContext`); the
    ``tracer=``/``obs=`` keywords are the deprecated spelling and fold into
    one.  Specs whose topology declares multiple groups — or whose workload
    includes cross-shard transactions — dispatch to
    :func:`repro.rsm.shard.run_sharded_rsm` and return its
    ``ShardedRsmRunResult`` instead.  With ``spec.parallel`` set, multi-group
    specs run one kernel per shard via
    :func:`repro.rsm.parallel.run_parallel_sharded_rsm`; a parallel spec with
    a single group falls back to the ordinary serial kernel unchanged.
    ``workers_cap`` limits the parallel path's worker processes (the sweep
    scheduler's CPU-budget share) without touching the spec or any
    deterministic output.
    """
    ctx = RunContext.resolve(ctx, tracer, obs)
    if spec.is_sharded:
        if spec.parallel:
            from repro.rsm.parallel import run_parallel_sharded_rsm

            return run_parallel_sharded_rsm(spec, ctx=ctx, workers_cap=workers_cap)
        from repro.rsm.shard import run_sharded_rsm

        return run_sharded_rsm(spec, ctx=ctx)
    tracer, obs = ctx.tracer, ctx.obs
    info = get_protocol(spec.protocol, kind=ABCAST)
    cluster = spec.cluster
    pids = list(range(spec.n))
    for pid, _ in spec.crash_at:
        if pid not in pids:
            raise ConfigurationError(f"crash_at names unknown replica {pid}")

    sim = Simulator(seed=spec.seed, batch=spec.batch)
    network = Network(
        sim,
        delay=cluster.delay,
        datagram_delay=cluster.datagram_delay,
        datagram_loss=cluster.datagram_loss,
        capacity=cluster.capacity,
    )
    oracle = OracleFailureDetector(
        sim,
        pids,
        detection_delay=cluster.detection_delay,
        initially_crashed=cluster.initially_crashed,
    )
    fabric = StorageFabric()

    def make_serving(pid: int) -> RsmReplica:
        return RsmReplica(
            machine=KvStore(),
            store=fabric.store(pid),
            module_factory=lambda host, env, pid=pid: info.factory(
                pid, env, oracle, host
            ),
            batch_max=spec.batch_max,
            batch_delay=spec.batch_delay,
            snapshot_every=spec.snapshot_every,
            catchup_interval=spec.catchup_interval,
            tracer=tracer,
        )

    obs_detail = obs is not None and obs.detail
    replicas: dict[int, RsmReplica] = {}
    nodes: dict[int, Node] = {}
    for pid in pids:
        replica = make_serving(pid)
        if obs_detail:
            replica.obs_detail = True
        replicas[pid] = replica
        nodes[pid] = Node(
            sim, network, pid, pids, replica, service_time=cluster.service_time
        )
        # Crash-only oracle wiring: a replica that rejoins does so as a
        # learner outside the broadcast protocol, so the failure detector
        # must keep treating it as crashed (re-electing a recovered pid as
        # Ω leader would stall consensus behind a non-participant).
        nodes[pid].add_crash_listener(oracle.on_crash)

    if obs is not None:
        obs.install(sim, network=network, oracle=oracle)

    for pid in cluster.initially_crashed:
        nodes[pid].crash()
    for pid, node in nodes.items():
        if pid not in cluster.initially_crashed:
            node.start()

    # ------------------------------------------------------------ client side
    serving = ServingSet(pid for pid in pids if pid not in cluster.initially_crashed)
    serving_pids = serving.pids()
    think = spec.clients / spec.rate
    drivers: dict[int, SessionDriver] = {}
    for session in range(spec.clients):
        drivers[session] = SessionDriver(
            session=session,
            home=serving_pids[session % len(serving_pids)],
            nodes=nodes,
            replicas=replicas,
            serving=serving,
            stream=CommandStream(session, spec.seed, spec.keys),
            duration=spec.duration,
            mode=spec.workload,
            arrivals=_build_arrivals(spec, session) if spec.workload == "open" else (),
            think_time=think if spec.workload == "closed" else 0.0,
            start_at=think * (session + 1) / spec.clients,
            failover_delay=spec.failover_delay,
        )

    def route_commit(pid: int, request: Request, result: Any, at: float) -> None:
        driver = drivers.get(request.session)
        if driver is not None:
            driver.on_commit(pid, request, result, at)

    for replica in replicas.values():
        replica.add_commit_listener(route_commit)

    def on_mid_run_crash(pid: int) -> None:
        serving.remove(pid)
        for driver in drivers.values():
            driver.on_replica_crash(pid, sim.now)

    for node in nodes.values():
        node.add_crash_listener(on_mid_run_crash)
    for driver in drivers.values():
        driver.start()

    # --------------------------------------------------- faults and recovery
    first_lives = dict(replicas)
    learners: dict[int, RsmReplica] = {}
    for pid, at in spec.crash_at:
        nodes[pid].crash_at(at)
        if spec.recover_after is not None:

            def rebuild(pid: int = pid) -> RsmReplica:
                learner = RsmReplica(
                    machine=KvStore(),
                    store=fabric.store(pid),
                    module_factory=None,
                    snapshot_every=spec.snapshot_every,
                    catchup_interval=spec.catchup_interval,
                    tracer=tracer,
                )
                if obs_detail:
                    learner.obs_detail = True
                learners[pid] = learner
                replicas[pid] = learner
                return learner

            nodes[pid].recover_at(at + spec.recover_after, rebuild)

    if spec.nemesis:
        from repro.nemesis.inject import NemesisRuntime  # local: sits above us

        def nemesis_recovery(pid: int, at: float) -> None:
            # Nemesis crashes follow the same learner-rejoin path as
            # spec.crash_at, guarded because a nemesis op may target a pid
            # that is already down (or already recovering) at fire time.
            if spec.recover_after is None:
                return

            def rebuild(pid: int = pid) -> RsmReplica:
                learner = RsmReplica(
                    machine=KvStore(),
                    store=fabric.store(pid),
                    module_factory=None,
                    snapshot_every=spec.snapshot_every,
                    catchup_interval=spec.catchup_interval,
                    tracer=tracer,
                )
                if obs_detail:
                    learner.obs_detail = True
                learners[pid] = learner
                replicas[pid] = learner
                return learner

            def recover_if_down(pid: int = pid) -> None:
                if nodes[pid].crashed:
                    nodes[pid].recover(rebuild())

            sim.schedule_at(at + spec.recover_after, recover_if_down)

        NemesisRuntime(
            spec.nemesis,
            sim=sim,
            network=network,
            nodes=nodes,
            oracle=oracle,
            tracer=tracer,
            crash_hook=nemesis_recovery,
        ).install()

    sim.run(until=spec.horizon, max_events=spec.max_events)

    # ------------------------------------------------------------ validation
    crashed = sorted(
        set(pid for pid, _ in spec.crash_at) | set(cluster.initially_crashed)
    )
    survivors = serving.pids()
    try:
        if not survivors:
            raise TerminationFailure("no serving replica survived the run")
        authority = min(
            survivors, key=lambda pid: (-replicas[pid].applied_index, pid)
        )
        auth = replicas[authority]

        linearizable = True
        try:
            check_rsm_linearizable(
                [(entry.request.command, entry.result) for entry in auth.audit],
                KvStore(),
            )
        except LinearizabilityViolation:
            if spec.check:
                raise
            linearizable = False

        if spec.check:
            check_uniform_total_order(
                {pid: replicas[pid].abcast.delivered_ids for pid in survivors}
            )
            audited = {
                pid: [entry.request.rid for entry in replicas[pid].audit]
                for pid in (*survivors, *learners)
            }
            check_rsm_exactly_once(audited)
            check_rsm_session_order(audited)
            check_rsm_log_consistent(
                {
                    pid: [
                        (entry.index, entry.request.rid)
                        for entry in replicas[pid].audit
                    ]
                    for pid in (*survivors, *learners)
                }
            )
            for pid in survivors:
                if replicas[pid].digest() != auth.digest():
                    raise TerminationFailure(
                        f"survivor {pid} diverged from replica {authority} at drain"
                    )
            for pid, learner in learners.items():
                if learner.digest() != auth.digest():
                    raise TerminationFailure(
                        f"recovered replica {pid} did not converge by the horizon "
                        f"(applied {learner.applied_index}/{auth.applied_index})"
                    )
            unacked = {
                session: sorted(driver.pending)
                for session, driver in drivers.items()
                if driver.pending
            }
            if unacked:
                raise TerminationFailure(
                    f"requests never acknowledged within the horizon: {unacked}"
                )
    except ReproError as err:
        if obs is not None:
            obs.attach_failure(err)
        raise

    return RsmRunResult(
        spec=spec,
        replicas=replicas,
        first_lives=first_lives,
        learners=learners,
        drivers=drivers,
        authority=authority,
        crashed=crashed,
        duration=sim.now,
        network_stats=network.stats.snapshot(),
        linearizable=linearizable,
        sim=sim,
        nodes=nodes,
    )


def window_commit_latencies(result: RsmRunResult) -> tuple[int, list[float]]:
    """(offered, latencies) over requests submitted in ``[warmup, duration]``.

    ``offered`` counts first submissions inside the window; a latency sample
    is the client-observed delay from first submission to the home replica's
    commit acknowledgement (retries therefore *lengthen* the sample rather
    than resetting it).
    """
    spec = result.spec
    offered = 0
    latencies: list[float] = []
    for driver in result.drivers.values():
        for submit_at, ack_at in driver.latencies():
            if spec.warmup <= submit_at <= spec.duration:
                offered += 1
                latencies.append(ack_at - submit_at)
        for record in driver.pending.values():
            if spec.warmup <= record.submit_at <= spec.duration:
                offered += 1
    return offered, latencies


def service_metrics(result) -> dict:
    """JSON-safe service-level metrics section (``RunReport.rsm``).

    Dispatches on the result shape: sharded runs carry per-shard authorities
    and get the extended section from :mod:`repro.rsm.shard`."""
    if hasattr(result, "authorities"):
        from repro.rsm.shard import sharded_service_metrics

        return sharded_service_metrics(result)
    spec = result.spec
    auth = result.replicas[result.authority]
    offered, latencies = window_commit_latencies(result)
    window = spec.duration - spec.warmup

    ordered = sorted(latencies)
    if ordered:
        latency_ms = {
            "mean": summarize(ordered).scaled(1e3).mean,
            "p50": _percentile(ordered, 0.50) * 1e3,
            "p95": _percentile(ordered, 0.95) * 1e3,
            "p99": _percentile(ordered, 0.99) * 1e3,
        }
    else:
        latency_ms = None

    batch_sizes = auth.batch_sizes
    batches = {
        "count": len(batch_sizes),
        "mean_size": (sum(batch_sizes) / len(batch_sizes)) if batch_sizes else 0.0,
        "max_size": max(batch_sizes, default=0),
    }

    # Apply lag: spread of apply times for the same index across survivors.
    survivors = [pid for pid in result.replicas if pid not in result.crashed]
    times_by_index: dict[int, list[float]] = {}
    for pid in survivors:
        for entry in result.replicas[pid].audit:
            times_by_index.setdefault(entry.index, []).append(entry.at)
    lags = [
        max(times) - min(times)
        for times in times_by_index.values()
        if len(times) == len(survivors)
    ]
    apply_lag_ms = (
        {"mean": sum(lags) / len(lags) * 1e3, "max": max(lags) * 1e3}
        if lags
        else None
    )

    snapshot_lives = list(result.first_lives.values()) + list(
        result.learners.values()
    )
    recovery = {
        str(pid): {
            "installed_index": learner.recovered_from_index,
            "replayed": learner.replayed,
            "snapshot_installs": learner.snapshot_installs,
            "digest_match": learner.digest() == auth.digest(),
        }
        for pid, learner in result.learners.items()
    }

    return {
        "committed": auth.applied_index,
        "offered_window": offered,
        "committed_window": len(latencies),
        "ops_per_s": (len(latencies) / window) if window > 0 else 0.0,
        "latency_ms": latency_ms,
        "batches": batches,
        "apply_lag_ms": apply_lag_ms,
        "snapshots": {
            "taken": sum(r.snapshots_taken for r in snapshot_lives),
            "bytes": sum(r.snapshot_bytes for r in snapshot_lives),
            "last_index": auth.last_snapshot_index,
        },
        "dedup": {
            "suppressed": auth.dedup.suppressed,
            "retries": sum(d.retries for d in result.drivers.values()),
        },
        "sessions": spec.clients,
        "crashed": list(result.crashed),
        "recovery": recovery,
        "digest": auth.digest(),
        "linearizable": result.linearizable,
    }
