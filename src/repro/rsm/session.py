"""Client sessions and server-side deduplication.

Exactly-once semantics in a replicated service is a contract between two
sides: clients tag every request with a per-session sequence number and only
retry the *same* (session, seq) pair, and replicas keep a dedup table that
filters re-proposed requests after they already committed.  Because the
dedup check runs inside :meth:`RsmReplica._apply` — i.e. *after* total-order
delivery — every replica makes the identical keep/drop decision, and a
request retried across a leader crash is applied exactly once everywhere.

The dedup table only needs the *latest* sequence number per session (plus
its cached result for client re-reads): sessions submit sequence numbers in
order and the total order preserves per-session submission order, so a
request is a duplicate iff its seq is not newer than the session's
high-water mark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.rsm.machine import Command

__all__ = ["Request", "DedupTable"]


@dataclass(frozen=True, slots=True)
class Request:
    """One client command wrapped for replication.

    ``(session, seq)`` is the exactly-once identity: retries reuse it
    verbatim, and the dedup table collapses them to a single application.
    """

    session: int
    seq: int
    command: Command

    @property
    def rid(self) -> tuple[int, int]:
        return (self.session, self.seq)


class DedupTable:
    """Per-session high-water marks with cached last results."""

    def __init__(self) -> None:
        self._latest: dict[int, tuple[int, Any]] = {}
        self.suppressed = 0

    def is_duplicate(self, session: int, seq: int) -> bool:
        entry = self._latest.get(session)
        return entry is not None and seq <= entry[0]

    def record(self, session: int, seq: int, result: Any) -> None:
        self._latest[session] = (seq, result)

    def note_suppressed(self) -> None:
        self.suppressed += 1

    def cached_result(self, session: int, seq: int) -> Any:
        """The stored result for a session's latest applied request."""
        entry = self._latest.get(session)
        if entry is not None and entry[0] == seq:
            return entry[1]
        return None

    # ------------------------------------------------------- snapshot support

    def snapshot(self) -> dict[int, tuple[int, Any]]:
        return dict(self._latest)

    def install(self, state: dict[int, tuple[int, Any]]) -> None:
        self._latest = {int(k): (v[0], v[1]) for k, v in state.items()}

    def __len__(self) -> int:
        return len(self._latest)
