"""Size- and time-triggered command batching.

One consensus instance per client command wastes the coordination cost on a
single operation; real SMR systems amortise it by packing many commands into
one proposal.  The batcher collects submitted requests and flushes them as a
single atomic-broadcast payload when either trigger fires:

* **size** — the batch reached ``max_batch`` requests (flush immediately);
* **time** — ``max_delay`` seconds elapsed since the first request of the
  batch arrived (bounds the latency a lone request can be held hostage).

The batcher owns no clock; it runs on the hosting replica's environment
timers, so flush scheduling is charged and cancelled exactly like any other
protocol timer (a crash silently drops a pending batch — clients retry).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError
from repro.rsm.session import Request

__all__ = ["Batcher", "BATCH_TIMER"]

#: Plain timer name the batcher arms on its host environment.
BATCH_TIMER = "rsm-batch-flush"


class Batcher:
    """Accumulate requests, emit ``tuple(requests)`` batches into a sink."""

    def __init__(
        self,
        env,
        sink: Callable[[tuple[Request, ...]], None],
        max_batch: int = 8,
        max_delay: float = 2e-3,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if max_delay < 0:
            raise ConfigurationError("max_delay must be >= 0")
        self._env = env
        self._sink = sink
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._pending: list[Request] = []
        self.flushes = 0
        self.batched_requests = 0

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, request: Request) -> None:
        """Queue one request; flush if the size trigger fires."""
        self._pending.append(request)
        if len(self._pending) >= self.max_batch:
            self.flush()
        elif len(self._pending) == 1 and self.max_delay > 0:
            self._env.set_timer(BATCH_TIMER, self.max_delay)
        elif self.max_delay == 0:
            self.flush()

    def on_timer(self, name: Any) -> bool:
        """Handle the flush timer; returns True if the timer was ours."""
        if name != BATCH_TIMER:
            return False
        self.flush()
        return True

    def flush(self) -> None:
        """Emit the pending batch (no-op when empty)."""
        if not self._pending:
            return
        batch = tuple(self._pending)
        self._pending.clear()
        self._env.cancel_timer(BATCH_TIMER)
        self.flushes += 1
        self.batched_requests += len(batch)
        self._sink(batch)

    def pending(self) -> Sequence[Request]:
        return tuple(self._pending)
