"""Conservative-parallel execution of sharded RSM runs.

A sharded spec with no cross-shard transaction sessions is *perfectly*
partitionable: every consensus group has its own replicas, failure
detector, serving set and pinned client sessions, and the key router keeps
every command inside its shard.  This module runs each shard group as one
partition on the :mod:`repro.sim.parallel` substrate — its own
:class:`~repro.sim.kernel.Simulator` (seeded stably from the partition id,
``derive_seed(spec.seed, "parallel-shard", shard)``), its own network and
storage fabric, its own shard-filtered nemesis schedule — and merges the
per-shard outcomes back into a result that duck-types
:class:`~repro.rsm.shard.ShardedRsmRunResult` for metrics, checkers and
reports.

Because shards exchange no messages, the partition plan has no cross links
(``lookahead=None``) and conservative synchronization degenerates to its
fastest case: a single window to the horizon, no null messages, no barrier
IPC.  The lookahead/window machinery still governs any plan *with* cross
links (see :func:`repro.sim.parallel.run_partitions`); cross-shard 2PC
sessions would need it, which is why ``parallel=True`` with
``txn_clients > 0`` is rejected at spec validation.

Determinism: the partition plan, per-shard seeds and per-shard nemesis
filters depend only on the spec — never on the worker count — so
``workers=1`` (in-process) and ``workers=N`` (multiprocess) produce
byte-identical merged traces and reports.  Note the per-shard RNG streams
differ *by construction* from the single-kernel serial path (one shared
``"network"`` stream there, one per shard here), so ``parallel=True`` is a
different — equally valid, self-consistent — sample of the same workload
distribution; byte-identity holds across worker counts, not across the
parallel/serial switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.engine.context import RunContext
from repro.engine.spec import RsmRunSpec
from repro.errors import (
    ConfigurationError,
    LinearizabilityViolation,
    ReproError,
    TerminationFailure,
)
from repro.fd.oracle import OracleFailureDetector
from repro.harness.checkers import (
    check_cross_shard_serializable,
    check_rsm_exactly_once,
    check_rsm_linearizable,
    check_rsm_log_consistent,
    check_rsm_session_order,
    check_uniform_total_order,
)
from repro.harness.registry import ABCAST, get_protocol
from repro.nemesis.spec import (
    CpuSkewOp,
    CrashOp,
    DelayOp,
    DropOp,
    DupOp,
    FdFlapOp,
    NemesisSpec,
    PartitionOp,
)
from repro.rsm.client import ServingSet, SessionDriver
from repro.rsm.machine import TxnKvStore
from repro.rsm.replica import RsmReplica
from repro.rsm.runner import _build_arrivals
from repro.rsm.session import Request
from repro.rsm.shard import ShardKeyStream, ShardRouter, shard_pid_groups
from repro.sim.kernel import Simulator, derive_seed
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.parallel import ParallelStats, PartitionPlan, run_partitions
from repro.sim.storage import StorageFabric
from repro.sim.trace import Tracer

__all__ = [
    "ParallelShardedRunResult",
    "ShardOutcome",
    "filter_nemesis_for_shard",
    "run_parallel_sharded_rsm",
    "shard_partition_plan",
]


def shard_partition_plan(spec: RsmRunSpec) -> PartitionPlan:
    """One partition per shard group, pids numbered as in the serial runner.

    The plan carries ``lookahead=None``: with sessions pinned to shards and
    no transaction drivers, no message ever crosses a partition boundary, so
    the conservative scheduler needs no windows at all.  Cross-shard 2PC
    traffic would require ``lookahead = cluster.delay.min_delay()``; specs
    that need it are rejected before reaching this point.
    """
    if not spec.is_sharded:
        raise ConfigurationError("partition plan needs a sharded topology")
    if spec.txn_clients:
        raise ConfigurationError(
            "parallel execution requires txn_clients == 0: 2PC sessions span "
            "shards and would cross partition boundaries"
        )
    return PartitionPlan(groups=shard_pid_groups(spec), lookahead=None)


def filter_nemesis_for_shard(
    nemesis: NemesisSpec, pids: frozenset[int]
) -> NemesisSpec:
    """The sub-schedule of ``nemesis`` observable inside one shard.

    Point faults (crash, fd-flap, cpu-skew) survive iff their pid is local;
    link faults (drop/delay/dup) survive iff every *named* endpoint is local
    (wildcards match everything, so they survive everywhere — they can only
    ever see intra-shard traffic here, exactly as in the single-kernel run).
    A partition op keeps the intersection of its groups with the shard; when
    nothing intersects, the single-kernel semantics ("pids in no group are
    isolated") means this whole shard goes dark, which one singleton group
    reproduces — its member may talk only to itself, everyone else to no one.
    """
    kept: list[Any] = []
    for op in nemesis.ops:
        kind = type(op)
        if kind in (CrashOp, FdFlapOp, CpuSkewOp):
            if op.pid in pids:
                kept.append(op)
        elif kind in (DropOp, DelayOp, DupOp):
            named = [p for p in (op.src, op.dst) if p is not None]
            if all(p in pids for p in named):
                kept.append(op)
        elif kind is PartitionOp:
            groups = tuple(
                local
                for group in op.groups
                if (local := tuple(p for p in group if p in pids))
            )
            if not groups:
                groups = ((min(pids),),)
            kept.append(PartitionOp(at=op.at, duration=op.duration, groups=groups))
        else:  # pragma: no cover - new op types must choose a filtering rule
            raise ConfigurationError(
                f"no shard-filtering rule for nemesis op {kind.__name__}"
            )
    return NemesisSpec(tuple(kept))


# ------------------------------------------------------------ shard harness


@dataclass
class ShardOutcome:
    """Everything one finished shard partition ships back to the parent.

    Plain data only — this object crosses a process boundary.  ``failure``
    carries the shard's checker error (a :class:`ReproError`) instead of
    raising inside the worker, so the parent can merge every shard's trace
    before re-raising the first failure in shard order.
    """

    shard: int
    trace: list[tuple[float, int, str, Any]]
    network_stats: dict
    kernel: dict
    sessions: dict[int, dict]
    authority: int
    applied_index: int
    digest: str
    dedup_suppressed: int
    commit_order: list[tuple[str, tuple[str, ...]]]
    linearizable: bool
    crashed: list[int]
    snapshots_taken: int
    snapshot_bytes: int
    learner_stats: dict[int, dict]
    failure: ReproError | None = None

    @property
    def events_processed(self) -> int:
        return self.kernel["events_processed"]


class _ShardHarness:
    """One shard group on its own kernel: the partition-side of a run.

    Construction mirrors :func:`repro.rsm.shard.run_sharded_rsm` exactly —
    same global pid numbering, same session-to-shard pinning, same home and
    ``start_at`` formulas — restricted to the pids, sessions and faults this
    shard owns.  Every stream the shard draws from hangs off its own
    simulator, seeded from the partition id, so the shard's behaviour is a
    pure function of (spec, shard): identical wherever the harness runs.
    """

    def __init__(self, spec: RsmRunSpec, shard: int, want_trace: bool,
                 obs_detail: bool) -> None:
        self.spec = spec
        self.shard = shard
        info = get_protocol(spec.protocol, kind=ABCAST)
        cluster = spec.cluster
        groups = spec.topology.groups
        gsize = spec.group_size
        self.pids = list(range(shard * gsize, (shard + 1) * gsize))
        pidset = frozenset(self.pids)
        router = ShardRouter(groups, spec.keys, spec.topology.partitioner)

        tracer = Tracer() if (want_trace or obs_detail) else None
        self.tracer = tracer
        sim = Simulator(
            seed=derive_seed(spec.seed, "parallel-shard", shard),
            batch=spec.batch,
        )
        self.sim = sim
        network = Network(
            sim,
            delay=cluster.delay,
            datagram_delay=cluster.datagram_delay,
            datagram_loss=cluster.datagram_loss,
            capacity=cluster.capacity,
        )
        self.network = network
        if obs_detail:
            network.obs_tracer = tracer
        fabric = StorageFabric()
        initially_crashed = tuple(
            pid for pid in cluster.initially_crashed if pid in pidset
        )
        oracle = OracleFailureDetector(
            sim,
            self.pids,
            detection_delay=cluster.detection_delay,
            initially_crashed=initially_crashed,
        )

        def make_serving(pid: int) -> RsmReplica:
            return RsmReplica(
                machine=TxnKvStore(),
                store=fabric.store(pid),
                module_factory=lambda host, env, pid=pid: info.factory(
                    pid, env, oracle, host
                ),
                batch_max=spec.batch_max,
                batch_delay=spec.batch_delay,
                snapshot_every=spec.snapshot_every,
                catchup_interval=spec.catchup_interval,
                tracer=tracer,
            )

        replicas: dict[int, RsmReplica] = {}
        nodes: dict[int, Node] = {}
        for pid in self.pids:
            replica = make_serving(pid)
            if obs_detail:
                replica.obs_detail = True
            replicas[pid] = replica
            nodes[pid] = Node(
                sim, network, pid, self.pids, replica,
                service_time=cluster.service_time,
            )
            nodes[pid].add_crash_listener(oracle.on_crash)
        self.replicas = replicas
        self.nodes = nodes

        for pid in initially_crashed:
            nodes[pid].crash()
        for pid, node in nodes.items():
            if pid not in initially_crashed:
                node.start()

        serving = ServingSet(
            pid for pid in self.pids if pid not in initially_crashed
        )
        self.serving = serving
        think = spec.clients / spec.rate
        drivers: dict[int, SessionDriver] = {}
        for session in range(spec.clients):
            if session % groups != shard:
                continue
            serving_now = serving.pids()
            drivers[session] = SessionDriver(
                session=session,
                home=serving_now[(session // groups) % len(serving_now)],
                nodes=nodes,
                replicas=replicas,
                serving=serving,
                stream=ShardKeyStream(
                    session, spec.seed, spec.keys, router.keys_for(shard)
                ),
                duration=spec.duration,
                mode=spec.workload,
                arrivals=(
                    _build_arrivals(spec, session)
                    if spec.workload == "open"
                    else ()
                ),
                think_time=think if spec.workload == "closed" else 0.0,
                start_at=think * (session + 1) / spec.clients,
                failover_delay=spec.failover_delay,
            )
        self.drivers = drivers

        def route_commit(
            pid: int, request: Request, result: Any, at: float
        ) -> None:
            driver = drivers.get(request.session)
            if driver is not None:
                driver.on_commit(pid, request, result, at)

        for replica in replicas.values():
            replica.add_commit_listener(route_commit)

        def on_mid_run_crash(pid: int) -> None:
            serving.remove(pid)
            for driver in drivers.values():
                driver.on_replica_crash(pid, sim.now)

        for node in nodes.values():
            node.add_crash_listener(on_mid_run_crash)
        for driver in drivers.values():
            driver.start()

        self.first_lives = dict(replicas)
        self.learners: dict[int, RsmReplica] = {}

        def make_rebuild(pid: int):
            def rebuild() -> RsmReplica:
                learner = RsmReplica(
                    machine=TxnKvStore(),
                    store=fabric.store(pid),
                    module_factory=None,
                    snapshot_every=spec.snapshot_every,
                    catchup_interval=spec.catchup_interval,
                    tracer=tracer,
                )
                if obs_detail:
                    learner.obs_detail = True
                self.learners[pid] = learner
                replicas[pid] = learner
                return learner

            return rebuild

        self.initially_crashed = initially_crashed
        self.crash_at = tuple(
            (pid, at) for pid, at in spec.crash_at if pid in pidset
        )
        for pid, at in self.crash_at:
            nodes[pid].crash_at(at)
            if spec.recover_after is not None:
                nodes[pid].recover_at(at + spec.recover_after, make_rebuild(pid))

        if spec.nemesis:
            from repro.nemesis.inject import NemesisRuntime

            local = filter_nemesis_for_shard(spec.nemesis, pidset)
            if local:

                def nemesis_recovery(pid: int, at: float) -> None:
                    if spec.recover_after is None:
                        return
                    rebuild = make_rebuild(pid)

                    def recover_if_down(pid: int = pid) -> None:
                        if nodes[pid].crashed:
                            nodes[pid].recover(rebuild())

                    sim.schedule_at(at + spec.recover_after, recover_if_down)

                NemesisRuntime(
                    local,
                    sim=sim,
                    network=network,
                    nodes=nodes,
                    oracle=oracle,
                    tracer=tracer,
                    crash_hook=nemesis_recovery,
                ).install()

    # --------------------------------------------- PartitionHarness protocol

    def inject(self, messages) -> None:  # pragma: no cover - no cross links
        raise ConfigurationError(
            f"shard {self.shard} received a cross-partition message; "
            "sharded plans have no cross links"
        )

    def advance(self, until: float) -> list:
        self.sim.run(until=until, max_events=self.spec.max_events)
        return []

    def pending(self) -> bool:
        return self.sim.pending() > 0

    def stopped(self) -> bool:
        return self.sim.stopped

    # ------------------------------------------------------------ validation

    def finish(self) -> ShardOutcome:
        spec = self.spec
        replicas = self.replicas
        failure: ReproError | None = None
        linearizable = True
        authority = min(self.pids)
        commit_order: list[tuple[str, tuple[str, ...]]] = []
        try:
            survivors = self.serving.pids()
            if not survivors:
                raise TerminationFailure(
                    f"no serving replica of shard {self.shard} survived the run"
                )
            authority = min(
                survivors, key=lambda pid: (-replicas[pid].applied_index, pid)
            )
            auth = replicas[authority]
            try:
                check_rsm_linearizable(
                    [(e.request.command, e.result) for e in auth.audit],
                    TxnKvStore(),
                )
            except LinearizabilityViolation:
                if spec.check:
                    raise
                linearizable = False
            if spec.check:
                check_uniform_total_order(
                    {pid: replicas[pid].abcast.delivered_ids for pid in survivors}
                )
                audited = {
                    pid: [e.request.rid for e in replicas[pid].audit]
                    for pid in (*survivors, *self.learners)
                }
                check_rsm_exactly_once(audited)
                check_rsm_session_order(audited)
                check_rsm_log_consistent(
                    {
                        pid: [(e.index, e.request.rid) for e in replicas[pid].audit]
                        for pid in (*survivors, *self.learners)
                    }
                )
                for pid in survivors:
                    if replicas[pid].digest() != auth.digest():
                        raise TerminationFailure(
                            f"shard {self.shard}: survivor {pid} diverged from "
                            f"replica {authority} at drain"
                        )
                for pid, learner in self.learners.items():
                    if learner.digest() != auth.digest():
                        raise TerminationFailure(
                            f"shard {self.shard}: recovered replica {pid} did "
                            f"not converge by the horizon (applied "
                            f"{learner.applied_index}/{auth.applied_index})"
                        )
                leftover = auth.machine.prepared_txids
                if leftover:
                    raise TerminationFailure(
                        f"shard {self.shard} drained with prepared-but-"
                        f"undecided transactions (locks leaked): {leftover}"
                    )
                unacked = {
                    session: sorted(driver.pending)
                    for session, driver in self.drivers.items()
                    if driver.pending
                }
                if unacked:
                    raise TerminationFailure(
                        f"requests never acknowledged within the horizon: "
                        f"{unacked}"
                    )
        except ReproError as err:
            failure = err

        auth = replicas[authority]
        crashed = sorted(
            set(pid for pid, _ in self.crash_at) | set(self.initially_crashed)
        )
        snapshot_lives = list(self.first_lives.values()) + list(
            self.learners.values()
        )
        kernel = {
            "events_processed": self.sim.events_processed,
            "events_scheduled": self.sim.events_scheduled,
            "compactions": self.sim.compactions,
            "drain_batches": self.sim.drain_batches,
            "batched_events": self.sim.batched_events,
            "pending": self.sim.pending(),
            "now": self.sim.now,
        }
        return ShardOutcome(
            shard=self.shard,
            trace=(
                [(r.time, r.pid, r.kind, r.data) for r in self.tracer.records]
                if self.tracer is not None
                else []
            ),
            network_stats=self.network.stats.snapshot(),
            kernel=kernel,
            sessions={
                session: {
                    "latencies": driver.latencies(),
                    "pending": {
                        seq: record.submit_at
                        for seq, record in driver.pending.items()
                    },
                    "retries": driver.retries,
                }
                for session, driver in self.drivers.items()
            },
            authority=authority,
            applied_index=auth.applied_index,
            digest=auth.digest(),
            dedup_suppressed=auth.dedup.suppressed,
            commit_order=commit_order,
            linearizable=linearizable,
            crashed=crashed,
            snapshots_taken=sum(r.snapshots_taken for r in snapshot_lives),
            snapshot_bytes=sum(r.snapshot_bytes for r in snapshot_lives),
            learner_stats={
                pid: {
                    "installed_index": learner.recovered_from_index,
                    "replayed": learner.replayed,
                    "snapshot_installs": learner.snapshot_installs,
                    "digest": learner.digest(),
                }
                for pid, learner in self.learners.items()
            },
            failure=failure,
        )


def _build_shard_harness(partition: int, payload: tuple) -> _ShardHarness:
    """Picklable harness factory for :func:`run_partitions` workers."""
    spec, want_trace, obs_detail = payload
    return _ShardHarness(spec, partition, want_trace, obs_detail)


# ------------------------------------------------------------- parent merge


class _ReplicaStub:
    """Metrics-facing stand-in for a replica that lived in a worker."""

    __slots__ = (
        "applied_index", "_digest", "dedup", "snapshots_taken",
        "snapshot_bytes", "recovered_from_index", "replayed",
        "snapshot_installs",
    )

    def __init__(self, applied_index: int = 0, digest: str = "",
                 suppressed: int = 0, snapshots_taken: int = 0,
                 snapshot_bytes: int = 0, recovered_from_index: int = 0,
                 replayed: int = 0, snapshot_installs: int = 0) -> None:
        self.applied_index = applied_index
        self._digest = digest
        self.dedup = _DedupStub(suppressed)
        self.snapshots_taken = snapshots_taken
        self.snapshot_bytes = snapshot_bytes
        self.recovered_from_index = recovered_from_index
        self.replayed = replayed
        self.snapshot_installs = snapshot_installs

    def digest(self) -> str:
        return self._digest


class _DedupStub:
    __slots__ = ("suppressed",)

    def __init__(self, suppressed: int) -> None:
        self.suppressed = suppressed


class _PendingStub:
    __slots__ = ("submit_at",)

    def __init__(self, submit_at: float) -> None:
        self.submit_at = submit_at


class _DriverStub:
    """Latency/retry surface of a worker-side session driver."""

    __slots__ = ("_latencies", "pending", "retries")

    def __init__(self, stats: dict) -> None:
        self._latencies = [tuple(pair) for pair in stats["latencies"]]
        self.pending = {
            seq: _PendingStub(submit_at)
            for seq, submit_at in sorted(stats["pending"].items())
        }
        self.retries = stats["retries"]

    def latencies(self) -> list[tuple[float, float]]:
        return self._latencies


class _KernelTotals:
    """Summed kernel counters across partitions, shaped like a Simulator.

    :func:`repro.perf.collect` reads these attributes off ``result.sim``;
    the totals make its kernel component meaningful for a partitioned run
    (events/s then measures the whole fleet against the run's wall clock).
    """

    __slots__ = (
        "events_processed", "events_scheduled", "compactions",
        "drain_batches", "batched_events", "now", "_pending",
    )

    def __init__(self, kernels: list[dict]) -> None:
        self.events_processed = sum(k["events_processed"] for k in kernels)
        self.events_scheduled = sum(k["events_scheduled"] for k in kernels)
        self.compactions = sum(k["compactions"] for k in kernels)
        self.drain_batches = sum(k["drain_batches"] for k in kernels)
        self.batched_events = sum(k["batched_events"] for k in kernels)
        self.now = max((k["now"] for k in kernels), default=0.0)
        self._pending = sum(k["pending"] for k in kernels)

    def pending(self) -> int:
        return self._pending


def _merge_values(a: Any, b: Any) -> Any:
    if isinstance(a, dict):
        merged = dict(a)
        for key, value in b.items():
            merged[key] = _merge_values(merged[key], value) if key in merged else value
        return merged
    if isinstance(a, list):
        return a + b
    if isinstance(a, bool) or isinstance(b, bool):
        return a or b
    return a + b


def merge_network_stats(snapshots: list[dict]) -> dict:
    """Fold per-partition ``NetworkStats.snapshot()`` dicts into one.

    Counters add, nested per-channel/per-kind dicts merge key-wise, list
    values (e.g. recorded partition windows) concatenate in partition order.
    """
    merged: dict = {}
    for snapshot in snapshots:
        merged = _merge_values(merged, snapshot) if merged else dict(snapshot)
    return merged


@dataclass
class ParallelShardedRunResult:
    """Merged outcome of a conservative-parallel sharded run.

    Duck-types :class:`~repro.rsm.shard.ShardedRsmRunResult` everywhere the
    engine reads one (``sharded_service_metrics``, ``window_commit_latencies``,
    report assembly, perf collection), with replica/driver surfaces backed by
    worker-shipped stubs and ``sim`` backed by summed kernel counters.  The
    extra ``parallel`` dict is the deterministic scheduler summary that lands
    in ``RunReport.rsm["parallel"]``.
    """

    spec: RsmRunSpec
    router: ShardRouter
    replicas: dict[int, Any]
    first_lives: dict[int, Any]
    learners: dict[int, Any]
    drivers: dict[int, Any]
    txn_drivers: dict[int, Any]
    authorities: dict[int, int]
    commit_orders: dict[int, list]
    crashed: list[int]
    duration: float
    network_stats: dict
    linearizable: bool
    parallel: dict
    sim: Any = field(repr=False)
    nodes: dict[int, Any] = field(repr=False, default_factory=dict)
    parallel_stats: ParallelStats | None = field(repr=False, default=None)

    @property
    def shards(self) -> int:
        return self.router.groups

    @property
    def committed(self) -> int:
        return sum(
            self.replicas[pid].applied_index for pid in self.authorities.values()
        )

    def shard_pids(self, shard: int) -> list[int]:
        gsize = self.spec.group_size
        return list(range(shard * gsize, (shard + 1) * gsize))

    def digests(self) -> dict[int, str]:
        return {pid: replica.digest() for pid, replica in self.replicas.items()}


def run_parallel_sharded_rsm(
    spec: RsmRunSpec,
    ctx: RunContext | None = None,
    tracer=None,
    obs=None,
    workers_cap: int | None = None,
) -> ParallelShardedRunResult:
    """Run one sharded spec with one kernel per shard group, then merge.

    ``workers_cap`` is an *execution* limit (the sweep scheduler's share of
    the CPU budget) — it caps how many worker processes run, never touches
    the spec, and cannot change any deterministic output.
    """
    ctx = RunContext.resolve(ctx, tracer, obs)
    if spec.txn_clients:
        raise ConfigurationError(
            "parallel execution requires txn_clients == 0 (2PC spans shards)"
        )
    if ctx.obs is not None and (
        ctx.obs.registry is not None or ctx.obs.recorder is not None
    ):
        raise ConfigurationError(
            "parallel execution supports obs detail tracing only; disable "
            "obs_metrics_interval / obs_flight_recorder or run serial"
        )
    plan = shard_partition_plan(spec)
    workers = spec.workers if spec.workers else 1
    if workers_cap is not None:
        workers = min(workers, max(1, workers_cap))
    payload = (spec, ctx.tracer is not None, ctx.detail)
    outcomes, stats = run_partitions(
        _build_shard_harness,
        [payload] * plan.partitions,
        plan,
        spec.horizon,
        workers=workers,
    )

    # Merge traces first — even a failing run keeps its evidence.  The
    # interleave key (time, shard, local order) is a deterministic refinement
    # of per-shard emission order, independent of where partitions ran.
    if ctx.tracer is not None:
        tagged = [
            (record[0], outcome.shard, index, record)
            for outcome in outcomes
            for index, record in enumerate(outcome.trace)
        ]
        tagged.sort(key=lambda item: item[:3])
        for _, _, _, (at, pid, kind, data) in tagged:
            ctx.tracer.emit(at, pid, kind, data)

    gsize = spec.group_size
    replicas: dict[int, Any] = {}
    first_lives: dict[int, Any] = {}
    learners: dict[int, Any] = {}
    drivers: dict[int, Any] = {}
    authorities: dict[int, int] = {}
    commit_orders: dict[int, list] = {}
    crashed: list[int] = []
    failure: ReproError | None = None
    for outcome in outcomes:
        shard = outcome.shard
        authorities[shard] = outcome.authority
        commit_orders[shard] = outcome.commit_order
        crashed.extend(outcome.crashed)
        replicas[outcome.authority] = _ReplicaStub(
            applied_index=outcome.applied_index,
            digest=outcome.digest,
            suppressed=outcome.dedup_suppressed,
        )
        # One stub per shard carries the shard's whole snapshot tally (the
        # metrics layer only ever sums over first_lives/learners values).
        first_lives[shard * gsize] = _ReplicaStub(
            snapshots_taken=outcome.snapshots_taken,
            snapshot_bytes=outcome.snapshot_bytes,
        )
        for pid, learner in sorted(outcome.learner_stats.items()):
            stub = _ReplicaStub(
                digest=learner["digest"],
                recovered_from_index=learner["installed_index"],
                replayed=learner["replayed"],
                snapshot_installs=learner["snapshot_installs"],
            )
            learners[pid] = stub
            if pid != outcome.authority:
                replicas[pid] = stub
        for session, session_stats in sorted(outcome.sessions.items()):
            drivers[session] = _DriverStub(session_stats)
        if failure is None and outcome.failure is not None:
            failure = outcome.failure

    if failure is not None:
        raise ctx.attach_failure(failure)
    if spec.check:
        try:
            check_cross_shard_serializable(commit_orders)
        except ReproError as err:
            raise ctx.attach_failure(err)

    events = stats.events_by_partition
    events_total = sum(events)
    max_events = max(events, default=0)
    parallel = {
        "partitions": stats.partitions,
        "workers": spec.workers,
        "lookahead": stats.lookahead,
        "windows": stats.windows,
        "null_messages": stats.null_messages,
        "cross_messages": stats.cross_messages,
        "lookahead_stalls": stats.lookahead_stalls,
        "events_total": events_total,
        "max_partition_events": max_events,
        "speedup_bound": (events_total / max_events) if max_events else 1.0,
    }
    return ParallelShardedRunResult(
        spec=spec,
        router=ShardRouter(
            spec.topology.groups, spec.keys, spec.topology.partitioner
        ),
        replicas=replicas,
        first_lives=first_lives,
        learners=learners,
        drivers={session: drivers[session] for session in sorted(drivers)},
        txn_drivers={},
        authorities=authorities,
        commit_orders=commit_orders,
        crashed=sorted(set(crashed)),
        duration=max((o.kernel["now"] for o in outcomes), default=0.0),
        network_stats=merge_network_stats([o.network_stats for o in outcomes]),
        linearizable=all(o.linearizable for o in outcomes),
        parallel=parallel,
        sim=_KernelTotals([o.kernel for o in outcomes]),
        nodes={},
        parallel_stats=stats,
    )


# Re-exported for tests that exercise the RNG-stream derivation directly.
def shard_seed(root_seed: int, shard: int) -> int:
    """The per-partition kernel seed: stable in (root seed, shard id) only."""
    return derive_seed(root_seed, "parallel-shard", shard)
