"""Sharded multi-group RSM: many consensus groups, one kernel, 2PC on top.

The paper evaluates one n-node group; a production-scale store runs *many*
independent groups (shards) side by side and scales along the shard axis.
This module partitions the KV keyspace across ``TopologySpec.groups``
consensus groups — each a full :class:`~repro.rsm.replica.RsmReplica`
cluster with its own failure detector, serving set and sessions — all
inside one deterministic :class:`~repro.sim.kernel.Simulator`, sharing one
:class:`~repro.sim.network.Network` and storage fabric.

* :class:`ShardRouter` maps keys to shards (``hash`` via CRC-32, or
  ``range`` banding) and hands each shard its key slice;
* plain client sessions are *pinned* to a shard round-robin and draw keys
  only from its slice (:class:`ShardKeyStream`), so per-shard exactly-once
  dedup and session order carry over unchanged;
* :class:`TxnDriver` sessions issue multi-key transactions spanning shards
  via two-phase commit whose every step (``txn-prepare`` / ``txn-decide`` /
  ``txn-commit`` / ``txn-abort``) is an ordinary replicated command — the
  existing (session, seq) dedup makes retried steps exactly-once across
  leader crashes and client failover, and the coordinator shard's
  replicated decision record makes the outcome crash-safe through the
  snapshot/rejoin path.

Validation extends the single-group checks per shard (total order, exactly
once, session order, log agreement, linearizability by replay, digest and
learner convergence) with cross-shard serializability: the commit order of
transactions on each shard defines conflict edges (shared keys), and the
union over shards must stay acyclic
(:func:`repro.harness.checkers.check_cross_shard_serializable`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any
from zlib import crc32

from repro.engine.context import RunContext
from repro.engine.spec import PARTITIONERS, RsmRunSpec
from repro.errors import (
    ConfigurationError,
    LinearizabilityViolation,
    ReproError,
    TerminationFailure,
)
from repro.fd.oracle import OracleFailureDetector
from repro.harness.checkers import (
    check_cross_shard_serializable,
    check_rsm_exactly_once,
    check_rsm_linearizable,
    check_rsm_log_consistent,
    check_rsm_session_order,
    check_uniform_total_order,
)
from repro.harness.registry import ABCAST, get_protocol
from repro.rsm.client import CommandStream, ServingSet, SessionDriver, _PendingRequest
from repro.rsm.machine import TxnCommand, TxnKvStore
from repro.rsm.replica import SUBMIT_TIMER, RsmReplica
from repro.rsm.runner import _build_arrivals
from repro.rsm.session import Request
from repro.sim.kernel import Simulator, derive_seed
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.storage import StorageFabric
from repro.sim.trace import KINDS

__all__ = [
    "ShardRouter",
    "ShardKeyStream",
    "TxnRecord",
    "TxnDriver",
    "ShardedRsmRunResult",
    "run_sharded_rsm",
    "shard_pid_groups",
    "sharded_service_metrics",
]


def shard_pid_groups(spec: RsmRunSpec) -> tuple[tuple[int, ...], ...]:
    """Global pid membership of each shard group, in shard order.

    This is the partition assignment shared by the serial runner and the
    conservative-parallel scheduler (:mod:`repro.rsm.parallel`): pids are
    numbered ``shard * group_size .. (shard + 1) * group_size - 1``, so a
    parallel run's traces carry exactly the serial runner's pids.
    """
    gsize = spec.group_size
    return tuple(
        tuple(range(s * gsize, (s + 1) * gsize))
        for s in range(spec.topology.groups)
    )


class ShardRouter:
    """Maps keys to shards and owns each shard's key slice.

    ``hash`` spreads keys by CRC-32 (stable across processes and Python
    versions, unlike ``hash()``); ``range`` bands the numeric key space into
    contiguous slices.  Both are pure functions of (key, groups), so every
    client and checker agrees on placement without coordination.
    """

    def __init__(self, groups: int, keys: int, partitioner: str = "hash") -> None:
        if partitioner not in PARTITIONERS:
            raise ConfigurationError(
                f"unknown partitioner {partitioner!r}; choices: {PARTITIONERS}"
            )
        if groups < 1:
            raise ConfigurationError("need at least one shard")
        self.groups = groups
        self.keys = keys
        self.partitioner = partitioner
        self._band = -(-keys // groups)  # ceil: only used by "range"
        slices: list[list[str]] = [[] for _ in range(groups)]
        for index in range(keys):
            key = f"k{index}"
            slices[self.shard_of(key)].append(key)
        for shard, slice_keys in enumerate(slices):
            if not slice_keys:
                raise ConfigurationError(
                    f"shard {shard} owns no keys ({keys} keys over {groups} "
                    f"{partitioner}-partitioned shards); add keys or use 'range'"
                )
        self._slices = [tuple(s) for s in slices]

    def shard_of(self, key: str) -> int:
        if self.partitioner == "hash":
            return crc32(key.encode("utf-8")) % self.groups
        return min(int(key[1:]) // self._band, self.groups - 1)

    def keys_for(self, shard: int) -> tuple[str, ...]:
        return self._slices[shard]


class ShardKeyStream(CommandStream):
    """Per-session command stream drawing keys from one shard's slice.

    Same draw structure as the base stream (one rng call per key pick), so
    session workloads stay seed-determined; only the key universe narrows.
    """

    def __init__(
        self, session: int, seed: int, keys: int, slice_keys: tuple[str, ...]
    ) -> None:
        super().__init__(session, seed, keys)
        self._slice = slice_keys

    def _pick_key(self, rng: random.Random) -> str:
        return self._slice[rng.randrange(len(self._slice))]


@dataclass
class TxnRecord:
    """Lifecycle of one cross-shard transaction, as the client saw it."""

    txid: str
    writes: dict[int, tuple[tuple[str, str], ...]]  # shard -> staged writes
    participants: tuple[int, ...]
    coordinator: int
    begin_at: float
    votes: dict[int, str] = field(default_factory=dict)
    decision: str | None = None
    end_at: float | None = None


class TxnDriver:
    """One closed-loop transaction session: 2PC over shard groups.

    Exactly one replicated step is in flight at a time (prepare each
    participant in shard order, then the coordinator's decide, then
    commit/abort the yes-voters), so the session's seqs reach every shard in
    strictly increasing order and the per-shard session-order invariant
    holds without coordination.  A home-replica crash mid-step re-homes to
    the shard's next serving replica and resubmits the *same* (session,
    seq) — the dedup table makes the retry exactly-once and replays the
    original vote/outcome from its cache.
    """

    def __init__(
        self,
        session: int,
        router: ShardRouter,
        nodes: dict[int, Node],
        servings: dict[int, ServingSet],
        homes: dict[int, int],
        duration: float,
        think_time: float,
        txn_keys: int,
        rng: random.Random,
        start_at: float = 1e-4,
        failover_delay: float = 5e-3,
        tracer=None,
    ) -> None:
        self.session = session
        self.router = router
        self.nodes = nodes
        self.servings = servings
        self.homes = dict(homes)  # shard -> current home replica pid
        self.duration = duration
        self.think_time = think_time
        self.txn_keys = txn_keys
        self.rng = rng
        self.start_at = start_at
        self.failover_delay = failover_delay
        self.tracer = tracer

        self.txns: list[TxnRecord] = []
        self.pending: dict[int, _PendingRequest] = {}  # seq -> in-flight step
        self.acked: dict[int, tuple[float, float]] = {}
        self.retries = 0
        self._next_seq = 0
        self._attempt = 0
        self._txn: TxnRecord | None = None
        self._phase: str | None = None  # "prepare" | "decide" | "finish"
        self._queue: list[tuple[int, TxnCommand]] = []
        self._inflight: tuple[int, int] | None = None  # (seq, shard)

    # ----------------------------------------------------------------- wiring

    def start(self) -> None:
        self._begin_txn(self.start_at)

    def _begin_txn(self, at: float) -> None:
        if at >= self.duration:
            return
        txid = f"t{self.session}.{len(self.txns) + 1}"
        spread = min(self.txn_keys, self.router.groups)
        participants = tuple(sorted(self.rng.sample(range(self.router.groups), spread)))
        writes: dict[int, tuple[tuple[str, str], ...]] = {}
        for shard in participants:
            slice_keys = self.router.keys_for(shard)
            key = slice_keys[self.rng.randrange(len(slice_keys))]
            writes[shard] = ((key, txid),)
        txn = TxnRecord(
            txid=txid,
            writes=writes,
            participants=participants,
            coordinator=participants[0],
            begin_at=at,
        )
        self.txns.append(txn)
        self._txn = txn
        self._phase = "prepare"
        self._queue = [
            (shard, TxnCommand("txn-prepare", txid, writes=writes[shard]))
            for shard in participants
        ]
        if self.tracer is not None:
            self.tracer.emit(
                at,
                self.homes[txn.coordinator],
                KINDS.TXN_BEGIN,
                {"txid": txid, "shards": list(participants)},
            )
        self._submit_next(at)

    def _submit_next(self, at: float) -> None:
        shard, command = self._queue.pop(0)
        self._next_seq += 1
        seq = self._next_seq
        request = Request(self.session, seq, command)
        self.pending[seq] = _PendingRequest(request, at, attempts=0)
        self._inflight = (seq, shard)
        self._schedule_submit(request, shard, at)

    def _schedule_submit(self, request: Request, shard: int, at: float) -> None:
        node = self.nodes[self.homes[shard]]
        record = self.pending[request.seq]
        record.attempts += 1
        self._attempt += 1
        delay = max(0.0, at - node.sim.now)
        node.set_timer((SUBMIT_TIMER, self._attempt, request), delay)

    # ------------------------------------------------------------------- acks

    def on_commit(self, pid: int, request: Request, result: Any, at: float) -> None:
        if request.session != self.session or self._inflight is None:
            return
        seq, shard = self._inflight
        if request.seq != seq or pid != self.homes[shard]:
            return
        record = self.pending.pop(seq, None)
        if record is None:
            return
        self.acked[seq] = (record.submit_at, at)
        self._inflight = None
        txn = self._txn
        command = request.command
        if self._phase == "prepare":
            txn.votes[shard] = result
            if self.tracer is not None:
                self.tracer.emit(
                    at, pid, KINDS.TXN_VOTE,
                    {"txid": txn.txid, "shard": shard, "vote": result},
                )
            if self._queue:
                self._submit_next(at)
                return
            decision = (
                "commit"
                if all(v == "yes" for v in txn.votes.values())
                else "abort"
            )
            self._phase = "decide"
            self._queue = [
                (txn.coordinator, TxnCommand("txn-decide", txn.txid, decision=decision))
            ]
            self._submit_next(at)
            return
        if self._phase == "decide":
            txn.decision = result
            if self.tracer is not None:
                self.tracer.emit(
                    at, pid, KINDS.TXN_DECIDE,
                    {"txid": txn.txid, "decision": result},
                )
            finish_op = "txn-commit" if result == "commit" else "txn-abort"
            self._phase = "finish"
            self._queue = [
                (s, TxnCommand(finish_op, txn.txid))
                for s in txn.participants
                if txn.votes.get(s) == "yes"
            ]
            if self._queue:
                self._submit_next(at)
            else:
                self._end_txn(at)
            return
        # finish phase
        if self._queue:
            self._submit_next(at)
        else:
            self._end_txn(at)

    def _end_txn(self, at: float) -> None:
        txn = self._txn
        txn.end_at = at
        if self.tracer is not None:
            self.tracer.emit(
                at,
                self.homes[txn.coordinator],
                KINDS.TXN_END,
                {"txid": txn.txid, "decision": txn.decision},
            )
        self._txn = None
        self._phase = None
        self._begin_txn(at + self.think_time)

    # --------------------------------------------------------------- failover

    def on_replica_crash(self, pid: int, now: float) -> None:
        rehomed = []
        for shard, home in self.homes.items():
            if home == pid:
                self.homes[shard] = self.servings[shard].next_home(pid)
                rehomed.append(shard)
        if self._inflight is None:
            return
        seq, shard = self._inflight
        if shard in rehomed:
            self.retries += 1
            record = self.pending[seq]
            self._schedule_submit(record.request, shard, now + self.failover_delay)

    # ---------------------------------------------------------------- metrics

    def latencies(self) -> list[tuple[float, float]]:
        return [self.acked[seq] for seq in sorted(self.acked)]

    @property
    def committed(self) -> int:
        return sum(1 for t in self.txns if t.decision == "commit")

    @property
    def aborted(self) -> int:
        return sum(1 for t in self.txns if t.decision == "abort")


@dataclass
class ShardedRsmRunResult:
    """Everything a finished sharded RSM run exposes to metrics and tests."""

    spec: RsmRunSpec
    router: ShardRouter
    replicas: dict[int, RsmReplica]          # final incarnation per global pid
    first_lives: dict[int, RsmReplica]
    learners: dict[int, RsmReplica]
    drivers: dict[int, Any]                  # session -> SessionDriver | TxnDriver
    txn_drivers: dict[int, TxnDriver]
    authorities: dict[int, int]              # shard -> reference survivor pid
    commit_orders: dict[int, list[tuple[str, tuple[str, ...]]]]
    crashed: list[int]
    duration: float
    network_stats: dict
    linearizable: bool
    sim: Simulator = field(repr=False)
    nodes: dict[int, Node] = field(repr=False, default_factory=dict)

    @property
    def shards(self) -> int:
        return self.router.groups

    @property
    def committed(self) -> int:
        return sum(
            self.replicas[pid].applied_index for pid in self.authorities.values()
        )

    def shard_pids(self, shard: int) -> list[int]:
        gsize = self.spec.group_size
        return list(range(shard * gsize, (shard + 1) * gsize))

    def digests(self) -> dict[int, str]:
        return {pid: replica.digest() for pid, replica in self.replicas.items()}


def run_sharded_rsm(
    spec: RsmRunSpec, tracer=None, obs=None, ctx: RunContext | None = None
) -> ShardedRsmRunResult:
    """Run one sharded RSM spec: all shard groups in one kernel, checked."""
    ctx = RunContext.resolve(ctx, tracer, obs)
    tracer, obs = ctx.tracer, ctx.obs
    info = get_protocol(spec.protocol, kind=ABCAST)
    cluster = spec.cluster
    groups = spec.topology.groups
    gsize = spec.group_size
    router = ShardRouter(groups, spec.keys, spec.topology.partitioner)
    shard_pids = {s: list(g) for s, g in enumerate(shard_pid_groups(spec))}

    sim = Simulator(seed=spec.seed, batch=spec.batch)
    network = Network(
        sim,
        delay=cluster.delay,
        datagram_delay=cluster.datagram_delay,
        datagram_loss=cluster.datagram_loss,
        capacity=cluster.capacity,
    )
    fabric = StorageFabric()
    oracles = {
        s: OracleFailureDetector(
            sim,
            shard_pids[s],
            detection_delay=cluster.detection_delay,
            initially_crashed=tuple(
                pid for pid in cluster.initially_crashed if pid in shard_pids[s]
            ),
        )
        for s in range(groups)
    }

    def make_serving(shard: int, pid: int) -> RsmReplica:
        return RsmReplica(
            machine=TxnKvStore(),
            store=fabric.store(pid),
            module_factory=lambda host, env, pid=pid, shard=shard: info.factory(
                pid, env, oracles[shard], host
            ),
            batch_max=spec.batch_max,
            batch_delay=spec.batch_delay,
            snapshot_every=spec.snapshot_every,
            catchup_interval=spec.catchup_interval,
            tracer=tracer,
        )

    obs_detail = obs is not None and obs.detail
    replicas: dict[int, RsmReplica] = {}
    nodes: dict[int, Node] = {}
    for shard in range(groups):
        for pid in shard_pids[shard]:
            replica = make_serving(shard, pid)
            if obs_detail:
                replica.obs_detail = True
            replicas[pid] = replica
            nodes[pid] = Node(
                sim,
                network,
                pid,
                shard_pids[shard],
                replica,
                service_time=cluster.service_time,
            )
            # Crash-only wiring, as in the single-group runner: a rejoined
            # learner never re-enters its group's broadcast protocol.
            nodes[pid].add_crash_listener(oracles[shard].on_crash)

    if obs is not None:
        obs.install(sim, network=network)

    for pid in cluster.initially_crashed:
        nodes[pid].crash()
    for pid, node in nodes.items():
        if pid not in cluster.initially_crashed:
            node.start()

    # ------------------------------------------------------------ client side
    servings = {
        s: ServingSet(
            pid for pid in shard_pids[s] if pid not in cluster.initially_crashed
        )
        for s in range(groups)
    }
    think = spec.clients / spec.rate
    drivers: dict[int, Any] = {}
    for session in range(spec.clients):
        shard = session % groups
        serving_now = servings[shard].pids()
        drivers[session] = SessionDriver(
            session=session,
            home=serving_now[(session // groups) % len(serving_now)],
            nodes=nodes,
            replicas=replicas,
            serving=servings[shard],
            stream=ShardKeyStream(
                session, spec.seed, spec.keys, router.keys_for(shard)
            ),
            duration=spec.duration,
            mode=spec.workload,
            arrivals=(
                _build_arrivals(spec, session) if spec.workload == "open" else ()
            ),
            think_time=think if spec.workload == "closed" else 0.0,
            start_at=think * (session + 1) / spec.clients,
            failover_delay=spec.failover_delay,
        )

    txn_drivers: dict[int, TxnDriver] = {}
    if spec.txn_clients:
        txn_think = spec.txn_clients / spec.txn_rate
        for t in range(spec.txn_clients):
            session = spec.clients + t  # txn sessions own a disjoint id space
            txn_drivers[session] = drivers[session] = TxnDriver(
                session=session,
                router=router,
                nodes=nodes,
                servings=servings,
                homes={
                    s: servings[s].pids()[t % len(servings[s].pids())]
                    for s in range(groups)
                },
                duration=spec.duration,
                think_time=txn_think,
                txn_keys=spec.txn_keys,
                rng=random.Random(derive_seed(spec.seed, "rsm-txn", session)),
                start_at=txn_think * (t + 1) / spec.txn_clients,
                failover_delay=spec.failover_delay,
                tracer=tracer,
            )

    def route_commit(pid: int, request: Request, result: Any, at: float) -> None:
        driver = drivers.get(request.session)
        if driver is not None:
            driver.on_commit(pid, request, result, at)

    for replica in replicas.values():
        replica.add_commit_listener(route_commit)

    def on_mid_run_crash(pid: int) -> None:
        servings[pid // gsize].remove(pid)
        for driver in drivers.values():
            driver.on_replica_crash(pid, sim.now)

    for node in nodes.values():
        node.add_crash_listener(on_mid_run_crash)
    for driver in drivers.values():
        driver.start()

    # --------------------------------------------------- faults and recovery
    first_lives = dict(replicas)
    learners: dict[int, RsmReplica] = {}
    for pid, at in spec.crash_at:
        nodes[pid].crash_at(at)
        if spec.recover_after is not None:

            def rebuild(pid: int = pid) -> RsmReplica:
                learner = RsmReplica(
                    machine=TxnKvStore(),
                    store=fabric.store(pid),
                    module_factory=None,
                    snapshot_every=spec.snapshot_every,
                    catchup_interval=spec.catchup_interval,
                    tracer=tracer,
                )
                if obs_detail:
                    learner.obs_detail = True
                learners[pid] = learner
                replicas[pid] = learner
                return learner

            nodes[pid].recover_at(at + spec.recover_after, rebuild)

    if spec.nemesis:
        from repro.nemesis.inject import NemesisRuntime  # local: sits above us

        class _OracleRouter:
            """Routes nemesis FD flaps to the victim's shard oracle."""

            @staticmethod
            def on_crash(pid: int) -> None:
                oracles[pid // gsize].on_crash(pid)

            @staticmethod
            def on_recovery(pid: int) -> None:
                oracles[pid // gsize].on_recovery(pid)

        def nemesis_recovery(pid: int, at: float) -> None:
            if spec.recover_after is None:
                return

            def rebuild(pid: int = pid) -> RsmReplica:
                learner = RsmReplica(
                    machine=TxnKvStore(),
                    store=fabric.store(pid),
                    module_factory=None,
                    snapshot_every=spec.snapshot_every,
                    catchup_interval=spec.catchup_interval,
                    tracer=tracer,
                )
                if obs_detail:
                    learner.obs_detail = True
                learners[pid] = learner
                replicas[pid] = learner
                return learner

            def recover_if_down(pid: int = pid) -> None:
                if nodes[pid].crashed:
                    nodes[pid].recover(rebuild())

            sim.schedule_at(at + spec.recover_after, recover_if_down)

        NemesisRuntime(
            spec.nemesis,
            sim=sim,
            network=network,
            nodes=nodes,
            oracle=_OracleRouter,
            tracer=tracer,
            crash_hook=nemesis_recovery,
        ).install()

    sim.run(until=spec.horizon, max_events=spec.max_events)

    # ------------------------------------------------------------ validation
    crashed = sorted(
        set(pid for pid, _ in spec.crash_at) | set(cluster.initially_crashed)
    )
    authorities: dict[int, int] = {}
    commit_orders: dict[int, list[tuple[str, tuple[str, ...]]]] = {}
    linearizable = True
    try:
        for shard in range(groups):
            survivors = servings[shard].pids()
            if not survivors:
                raise TerminationFailure(
                    f"no serving replica of shard {shard} survived the run"
                )
            authority = min(
                survivors, key=lambda pid: (-replicas[pid].applied_index, pid)
            )
            authorities[shard] = authority
            auth = replicas[authority]

            try:
                check_rsm_linearizable(
                    [(e.request.command, e.result) for e in auth.audit],
                    TxnKvStore(),
                )
            except LinearizabilityViolation:
                if spec.check:
                    raise
                linearizable = False

            shard_learners = {
                pid: learner
                for pid, learner in learners.items()
                if pid in shard_pids[shard]
            }
            if spec.check:
                check_uniform_total_order(
                    {pid: replicas[pid].abcast.delivered_ids for pid in survivors}
                )
                audited = {
                    pid: [e.request.rid for e in replicas[pid].audit]
                    for pid in (*survivors, *shard_learners)
                }
                check_rsm_exactly_once(audited)
                check_rsm_session_order(audited)
                check_rsm_log_consistent(
                    {
                        pid: [(e.index, e.request.rid) for e in replicas[pid].audit]
                        for pid in (*survivors, *shard_learners)
                    }
                )
                for pid in survivors:
                    if replicas[pid].digest() != auth.digest():
                        raise TerminationFailure(
                            f"shard {shard}: survivor {pid} diverged from "
                            f"replica {authority} at drain"
                        )
                for pid, learner in shard_learners.items():
                    if learner.digest() != auth.digest():
                        raise TerminationFailure(
                            f"shard {shard}: recovered replica {pid} did not "
                            f"converge by the horizon (applied "
                            f"{learner.applied_index}/{auth.applied_index})"
                        )
                leftover = auth.machine.prepared_txids
                if leftover:
                    raise TerminationFailure(
                        f"shard {shard} drained with prepared-but-undecided "
                        f"transactions (locks leaked): {leftover}"
                    )

            # Per-shard commit order of transactions, with the keys each
            # staged here (recovered from the same audit's prepare entries).
            staged_keys: dict[str, tuple[str, ...]] = {}
            order: list[tuple[str, tuple[str, ...]]] = []
            for entry in auth.audit:
                command = entry.request.command
                if not isinstance(command, TxnCommand):
                    continue
                if command.op == "txn-prepare":
                    staged_keys[command.txid] = command.keys
                elif command.op == "txn-commit" and entry.result == "committed":
                    order.append((command.txid, staged_keys.get(command.txid, ())))
            commit_orders[shard] = order

        if spec.check:
            check_cross_shard_serializable(commit_orders)
            unfinished = {
                session: [t.txid for t in driver.txns if t.end_at is None]
                for session, driver in txn_drivers.items()
                if any(t.end_at is None for t in driver.txns)
            }
            if unfinished:
                raise TerminationFailure(
                    f"transactions never completed within the horizon: {unfinished}"
                )
            unacked = {
                session: sorted(driver.pending)
                for session, driver in drivers.items()
                if driver.pending
            }
            if unacked:
                raise TerminationFailure(
                    f"requests never acknowledged within the horizon: {unacked}"
                )
    except ReproError as err:
        raise ctx.attach_failure(err)

    return ShardedRsmRunResult(
        spec=spec,
        router=router,
        replicas=replicas,
        first_lives=first_lives,
        learners=learners,
        drivers=drivers,
        txn_drivers=txn_drivers,
        authorities=authorities,
        commit_orders=commit_orders,
        crashed=crashed,
        duration=sim.now,
        network_stats=network.stats.snapshot(),
        linearizable=linearizable,
        sim=sim,
        nodes=nodes,
    )


def sharded_service_metrics(result: ShardedRsmRunResult) -> dict:
    """JSON-safe metrics section for a sharded run (``RunReport.rsm``).

    Mirrors the single-group section's aggregate fields (so plotting and the
    CLI read both shapes), then adds ``topology``, per-shard breakdowns and
    the 2PC transaction counters.
    """
    from repro.rsm.runner import window_commit_latencies
    from repro.workload.metrics import _percentile, summarize

    spec = result.spec
    offered, latencies = window_commit_latencies(result)
    window = spec.duration - spec.warmup

    ordered = sorted(latencies)
    if ordered:
        latency_ms = {
            "mean": summarize(ordered).scaled(1e3).mean,
            "p50": _percentile(ordered, 0.50) * 1e3,
            "p95": _percentile(ordered, 0.95) * 1e3,
            "p99": _percentile(ordered, 0.99) * 1e3,
        }
    else:
        latency_ms = None

    auths = {s: result.replicas[pid] for s, pid in result.authorities.items()}
    per_shard = {
        str(s): {
            "authority": result.authorities[s],
            "committed": auth.applied_index,
            "txns_committed": len(result.commit_orders.get(s, [])),
            "digest": auth.digest(),
            "crashed": [p for p in result.crashed if p in result.shard_pids(s)],
        }
        for s, auth in auths.items()
    }

    txns = [t for d in result.txn_drivers.values() for t in d.txns]
    txn_section = {
        "sessions": spec.txn_clients,
        "started": len(txns),
        "committed": sum(1 for t in txns if t.decision == "commit"),
        "aborted": sum(1 for t in txns if t.decision == "abort"),
        "conflicts": sum(
            1 for t in txns if any(v == "conflict" for v in t.votes.values())
        ),
    }

    snapshot_lives = list(result.first_lives.values()) + list(
        result.learners.values()
    )
    recovery = {
        str(pid): {
            "installed_index": learner.recovered_from_index,
            "replayed": learner.replayed,
            "snapshot_installs": learner.snapshot_installs,
            "digest_match": (
                learner.digest()
                == auths[pid // spec.group_size].digest()
            ),
        }
        for pid, learner in result.learners.items()
    }

    section = {
        "committed": result.committed,
        "offered_window": offered,
        "committed_window": len(latencies),
        "ops_per_s": (len(latencies) / window) if window > 0 else 0.0,
        "latency_ms": latency_ms,
        "topology": spec.topology.to_dict(),
        "shards": per_shard,
        "txns": txn_section,
        "dedup": {
            "suppressed": sum(a.dedup.suppressed for a in auths.values()),
            "retries": sum(d.retries for d in result.drivers.values()),
        },
        "snapshots": {
            "taken": sum(r.snapshots_taken for r in snapshot_lives),
            "bytes": sum(r.snapshot_bytes for r in snapshot_lives),
        },
        "sessions": spec.clients,
        "crashed": list(result.crashed),
        "recovery": recovery,
        "linearizable": result.linearizable,
    }
    # Conservative-parallel runs carry the scheduler's deterministic summary
    # (partitions, windows, null messages, ideal-speedup bound) into the
    # report so `repro obs` distillations can gate on it.
    parallel = getattr(result, "parallel", None)
    if parallel:
        section["parallel"] = parallel
    return section
