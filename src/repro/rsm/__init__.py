"""repro.rsm — a replicated state-machine service layer on atomic broadcast.

The paper motivates atomic broadcast as "the core of state machine
replication"; this package closes that loop.  It turns any registered abcast
protocol (C-Abcast over L/P-Consensus, WABCast, Multi-Paxos) into a fault-
tolerant KV service with the full production shape:

* :mod:`repro.rsm.machine` — the deterministic :class:`StateMachine`
  contract and the reference :class:`KvStore`;
* :mod:`repro.rsm.session` — (session, seq) request identity and the
  server-side :class:`DedupTable` (exactly-once across retries);
* :mod:`repro.rsm.batcher` — size/time-triggered command batching;
* :mod:`repro.rsm.replica` — :class:`RsmReplica`: apply in a-delivery
  order, snapshot + compact, rejoin after a crash as a learner;
* :mod:`repro.rsm.client` — open/closed-loop session drivers with
  crash failover;
* :mod:`repro.rsm.runner` — :func:`run_rsm` executing an
  :class:`~repro.engine.spec.RsmRunSpec` end to end, with the service
  guarantees (exactly-once, session order, log agreement, linearizability,
  recovery convergence) checked on every run;
* :mod:`repro.rsm.shard` — many consensus groups in one kernel: the
  :class:`ShardRouter` keyspace partition, shard-pinned sessions, and
  cross-shard transactions via 2PC (:func:`run_sharded_rsm`), with
  cross-shard serializability checked on top of the per-shard guarantees.
"""

from repro.rsm.batcher import BATCH_TIMER, Batcher
from repro.rsm.client import DEFAULT_MIX, CommandStream, ServingSet, SessionDriver
from repro.rsm.machine import (
    OPS,
    TXN_OPS,
    Command,
    KvStore,
    StateMachine,
    TxnCommand,
    TxnKvStore,
)
from repro.rsm.replica import (
    CATCHUP_TIMER,
    SNAPSHOT_KEY,
    SUBMIT_TIMER,
    AppliedEntry,
    CatchUpReply,
    CatchUpRequest,
    RsmReplica,
)
from repro.rsm.runner import RsmRunResult, run_rsm, service_metrics
from repro.rsm.session import DedupTable, Request
from repro.rsm.shard import (
    ShardedRsmRunResult,
    ShardKeyStream,
    ShardRouter,
    TxnDriver,
    TxnRecord,
    run_sharded_rsm,
    sharded_service_metrics,
)

__all__ = [
    "Command",
    "StateMachine",
    "KvStore",
    "OPS",
    "TxnCommand",
    "TxnKvStore",
    "TXN_OPS",
    "Request",
    "DedupTable",
    "Batcher",
    "BATCH_TIMER",
    "RsmReplica",
    "AppliedEntry",
    "CatchUpRequest",
    "CatchUpReply",
    "CATCHUP_TIMER",
    "SUBMIT_TIMER",
    "SNAPSHOT_KEY",
    "CommandStream",
    "SessionDriver",
    "ServingSet",
    "DEFAULT_MIX",
    "RsmRunResult",
    "run_rsm",
    "service_metrics",
    "ShardRouter",
    "ShardKeyStream",
    "ShardedRsmRunResult",
    "TxnDriver",
    "TxnRecord",
    "run_sharded_rsm",
    "sharded_service_metrics",
]
