"""Client sessions driving the RSM service: workloads, retries, failover.

A :class:`SessionDriver` models one client session from the outside of the
cluster (it is harness machinery, not a simulated process): it injects
requests into its *home* replica through node timers — so submission work is
charged to the replica CPU and dies with a crash, like a real RPC — and
listens for local commits to measure client-observed latency.

Two workload shapes, both fully seed-determined:

* **open-loop** — a Poisson arrival plan fixed up front (rate/clients per
  session); queueing feeds back into latency but never into arrivals,
  matching the paper's fixed-rate generators;
* **closed-loop** — one outstanding request per session; the next command is
  issued ``think_time`` after the previous commit ack.

Failure handling is the exactly-once scenario end to end: when a session's
home replica crashes, the driver re-homes to the next serving replica and
*resubmits every unacknowledged request with its original (session, seq)*.
If the original submission did commit, the retry is suppressed by the
server-side dedup table (or answered from its cache); if it died in the
crashed replica's batcher, the retry is the first and only application.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.rsm.machine import Command
from repro.rsm.replica import SUBMIT_TIMER, RsmReplica
from repro.rsm.session import Request
from repro.sim.kernel import derive_seed
from repro.sim.node import Node

__all__ = ["CommandStream", "SessionDriver", "ServingSet", "DEFAULT_MIX"]

#: Default operation mix: mostly writes (the interesting case for ordering),
#: some reads and CAS, a few deletes.
DEFAULT_MIX: tuple[tuple[str, float], ...] = (
    ("set", 0.70),
    ("get", 0.15),
    ("cas", 0.10),
    ("del", 0.05),
)


class CommandStream:
    """Deterministic per-session command generator."""

    def __init__(
        self,
        session: int,
        seed: int,
        keys: int,
        mix: Sequence[tuple[str, float]] = DEFAULT_MIX,
    ) -> None:
        total = sum(weight for _, weight in mix)
        if not mix or total <= 0:
            raise ConfigurationError("command mix needs positive weights")
        self._rng = random.Random(derive_seed(seed, "rsm-cmds", session))
        self._session = session
        self._keys = keys
        self._mix = [(op, weight / total) for op, weight in mix]

    def _pick_key(self, rng: random.Random) -> str:
        """Draw the command's key (exactly one rng call).

        Subclasses narrow the keyspace — the shard-pinned stream draws from
        its shard's key slice — while keeping the draw structure identical,
        so a one-group topology generates byte-identical workloads.
        """
        return f"k{rng.randrange(self._keys)}"

    def next(self, seq: int) -> Command:
        rng = self._rng
        draw = rng.random()
        acc = 0.0
        op = self._mix[-1][0]
        for name, weight in self._mix:
            acc += weight
            if draw < acc:
                op = name
                break
        key = self._pick_key(rng)
        if op == "set":
            return Command("set", key, value=f"s{self._session}.{seq}")
        if op == "get":
            return Command("get", key)
        if op == "del":
            return Command("del", key)
        # CAS against a plausible previous own write: succeeds occasionally,
        # fails deterministically otherwise — both outcomes are checked.
        expect = f"s{self._session}.{rng.randrange(1, seq + 1)}"
        return Command("cas", key, value=f"s{self._session}.{seq}", expect=expect)


class ServingSet:
    """The replicas currently accepting client traffic.

    A crashed replica leaves the set permanently: its later reincarnation is
    a learner (it does not run the broadcast protocol), so clients never
    route requests to it.
    """

    def __init__(self, pids: Iterable[int]) -> None:
        self._pids = sorted(pids)

    def remove(self, pid: int) -> None:
        if pid in self._pids:
            self._pids.remove(pid)

    def next_home(self, preferred: int) -> int:
        if not self._pids:
            raise ConfigurationError("no serving replicas left for failover")
        for pid in self._pids:
            if pid >= preferred:
                return pid
        return self._pids[0]

    def pids(self) -> list[int]:
        return list(self._pids)

    def __contains__(self, pid: int) -> bool:
        return pid in self._pids


@dataclass
class _PendingRequest:
    request: Request
    submit_at: float  # client-side submit stamp (latency starts here)
    attempts: int


class SessionDriver:
    """One client session: issues commands, tracks acks, fails over."""

    def __init__(
        self,
        session: int,
        home: int,
        nodes: dict[int, Node],
        replicas: dict[int, RsmReplica],
        serving: ServingSet,
        stream: CommandStream,
        duration: float,
        mode: str = "open",
        arrivals: Sequence[float] = (),
        think_time: float = 0.0,
        start_at: float = 1e-4,
        failover_delay: float = 5e-3,
    ) -> None:
        if mode not in ("open", "closed"):
            raise ConfigurationError(f"unknown session mode {mode!r}")
        self.session = session
        self.home = home
        self.nodes = nodes
        self.replicas = replicas
        self.serving = serving
        self.stream = stream
        self.duration = duration
        self.mode = mode
        self.think_time = think_time
        self.start_at = start_at
        self.failover_delay = failover_delay

        self._next_seq = 0
        self._attempt = 0
        self.pending: dict[int, _PendingRequest] = {}  # seq -> in-flight
        self.acked: dict[int, tuple[float, float]] = {}  # seq -> (submit, ack)
        self.retries = 0
        # Open-loop plan: absolute submit times fixed up front.
        self._plan = list(arrivals)
        self._plan_next = 0

    # ----------------------------------------------------------------- wiring

    def start(self) -> None:
        """Schedule the session's initial submissions (at virtual time 0)."""
        if self.mode == "open":
            while self._plan_next < len(self._plan):
                at = self._plan[self._plan_next]
                self._plan_next += 1
                self._issue_next(at, at)
        else:
            self._issue_next(self.start_at, self.start_at)

    def _issue_next(self, at: float, submit_stamp: float) -> None:
        self._next_seq += 1
        seq = self._next_seq
        request = Request(self.session, seq, self.stream.next(seq))
        self.pending[seq] = _PendingRequest(request, submit_stamp, attempts=0)
        self._schedule_submit(request, at)

    def _schedule_submit(self, request: Request, at: float) -> None:
        node = self.nodes[self.home]
        record = self.pending[request.seq]
        record.attempts += 1
        self._attempt += 1
        delay = max(0.0, at - node.sim.now)
        node.set_timer((SUBMIT_TIMER, self._attempt, request), delay)

    # ------------------------------------------------------------------- acks

    def on_commit(self, pid: int, request: Request, result, at: float) -> None:
        """Commit upcall from a replica; only the current home acks us."""
        if request.session != self.session or pid != self.home:
            return
        record = self.pending.pop(request.seq, None)
        if record is None:
            return  # stale duplicate ack
        self.acked[request.seq] = (record.submit_at, at)
        if self.mode == "closed":
            next_at = at + self.think_time
            if next_at < self.duration:
                self._issue_next(next_at, next_at)

    # --------------------------------------------------------------- failover

    def on_replica_crash(self, pid: int, now: float) -> None:
        """Re-home and resubmit everything unacknowledged (same seqs)."""
        if pid != self.home:
            return
        self.home = self.serving.next_home(self.home)
        retry_at = now + self.failover_delay
        for seq in sorted(self.pending):
            record = self.pending[seq]
            # Future open-loop submissions keep their planned times; anything
            # already issued into the dead replica is retried after the
            # failover delay — with the same (session, seq) identity.
            if record.submit_at > now:
                at = record.submit_at
            else:
                at = retry_at
                self.retries += 1
            self._schedule_submit(record.request, at)

    # ---------------------------------------------------------------- metrics

    def latencies(self) -> list[tuple[float, float]]:
        """(submit, ack) pairs for every acknowledged request."""
        return [self.acked[seq] for seq in sorted(self.acked)]
