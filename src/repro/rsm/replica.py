"""The replica: drives an abcast protocol, applies commands, snapshots, recovers.

:class:`RsmReplica` is the node-level process of the RSM service layer.  In
**serving** mode it hosts one atomic-broadcast module (any registered
protocol factory — the paper's C-Abcast stacks, WABCast or Multi-Paxos),
batches client requests into proposals, applies a-delivered batches to its
state machine in total order, and periodically persists a snapshot to stable
storage while compacting its in-memory command log.

In **learner** mode — how a crashed replica rejoins — it hosts *no* abcast
module (a fresh protocol instance must not re-enter decided consensus
rounds): it installs the latest snapshot from its own stable store at boot,
then polls the survivors with :class:`CatchUpRequest` messages.  Survivors
answer from their compacted log, or with their own latest snapshot when the
learner has fallen behind the compaction horizon.  Either way the learner
replays strictly less than the full command log — that is what makes
snapshots *recovery* rather than decoration.

Exactly-once: every request carries a ``(session, seq)`` identity and the
dedup check runs after total-order delivery (:mod:`repro.rsm.session`), so
all replicas suppress the same retries.  A duplicate arriving at
:meth:`submit` (a client retrying into a new home replica) is answered from
the dedup cache without re-proposing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.abcast_base import AbcastModule, AppMessage
from repro.errors import ConfigurationError
from repro.rsm.batcher import Batcher
from repro.rsm.machine import StateMachine
from repro.rsm.session import DedupTable, Request
from repro.sim.process import Environment, HostProcess
from repro.sim.storage import StableStore
from repro.sim.trace import KINDS

__all__ = [
    "RSM_ABCAST_SCOPE",
    "CATCHUP_TIMER",
    "SUBMIT_TIMER",
    "CatchUpRequest",
    "CatchUpReply",
    "AppliedEntry",
    "RsmReplica",
]

RSM_ABCAST_SCOPE = ("abc",)

#: Plain timer names (unscoped — handled by the replica itself).
CATCHUP_TIMER = "rsm-catchup"
#: Submission timers are tuples ``(SUBMIT_TIMER, attempt, request)`` so the
#: session drivers can inject requests through the node CPU model.
SUBMIT_TIMER = "rsm-submit"

#: Stable-store key holding the latest snapshot payload.
SNAPSHOT_KEY = "rsm-snapshot"


@dataclass(frozen=True, slots=True)
class CatchUpRequest:
    """A recovering learner asks for everything after ``applied_index``."""

    applied_index: int


@dataclass(frozen=True, slots=True)
class CatchUpReply:
    """Log suffix (and optionally a snapshot) answering a catch-up request.

    ``entries`` are the applied requests for indices ``start+1 ..
    start+len(entries)``.  When ``snapshot`` is present the learner installs
    it first (its ``index`` equals ``start``), then replays the entries.
    """

    start: int
    entries: tuple[Request, ...]
    snapshot: dict | None = None


@dataclass(frozen=True, slots=True)
class AppliedEntry:
    """One committed command in the authoritative apply order."""

    index: int
    request: Request
    result: Any
    at: float = field(compare=False)


class RsmReplica(HostProcess):
    """One replica of the replicated state-machine service.

    When ``obs_detail`` is set (by the obs runtime), the replica emits
    ``rsm-apply``/``rsm-snapshot``/``rsm-catchup`` trace records alongside
    the always-on broadcast/deliver pair.

    Parameters
    ----------
    machine:
        The deterministic state machine commands apply to.
    store:
        Per-process stable storage; survives crashes, receives snapshots.
    module_factory:
        ``factory(host, env) -> AbcastModule`` building the abcast stack, or
        ``None`` for learner mode (rejoin-after-crash).
    batch_max, batch_delay:
        Batching triggers (see :mod:`repro.rsm.batcher`).
    snapshot_every:
        Take a snapshot (and compact the log) every this many applied
        commands; 0 disables snapshots.
    catchup_interval:
        Learner poll period for :class:`CatchUpRequest` messages.
    """

    #: Detailed rsm-* tracing; flipped on by the obs runtime per run.
    obs_detail = False

    def __init__(
        self,
        machine: StateMachine,
        store: StableStore,
        module_factory: Callable[["RsmReplica", Environment], AbcastModule] | None,
        batch_max: int = 8,
        batch_delay: float = 2e-3,
        snapshot_every: int = 25,
        catchup_interval: float = 0.02,
        tracer=None,
    ) -> None:
        super().__init__()
        if snapshot_every < 0:
            raise ConfigurationError("snapshot_every must be >= 0")
        self.machine = machine
        self.store = store
        self._module_factory = module_factory
        self._batch_max = batch_max
        self._batch_delay = batch_delay
        self.snapshot_every = snapshot_every
        self.catchup_interval = catchup_interval
        self.tracer = tracer

        self.abcast: AbcastModule | None = None
        self.batcher: Batcher | None = None
        self.dedup = DedupTable()

        #: Index of the last applied command (1-based; 0 = nothing applied).
        self.applied_index = 0
        #: Compacted protocol log: requests for indices ``log_base+1 ..
        #: applied_index`` — what this replica can serve to a learner.
        self.log: list[Request] = []
        self.log_base = 0
        #: Full audit log (measurement/checker-only; never compacted and
        #: never sent on the wire — the protocol path uses ``self.log``).
        self.audit: list[AppliedEntry] = []

        self.commit_listeners: list[Callable[[int, Request, Any, float], None]] = []
        self.batch_sizes: list[int] = []
        self.snapshots_taken = 0
        self.snapshot_bytes = 0
        self.last_snapshot_index = 0
        # Learner-side recovery accounting.
        self.recovered_from_index: int | None = None
        self.snapshot_installs = 0
        self.replayed = 0

    # --------------------------------------------------------------- lifecycle

    @property
    def is_learner(self) -> bool:
        return self._module_factory is None

    def on_start(self) -> None:
        snapshot = self.store.get(SNAPSHOT_KEY)
        if self.is_learner:
            # Rejoin: restore the latest durable snapshot, then poll for the
            # suffix.  Without a snapshot the learner starts from index 0 and
            # the survivors will ship theirs on first contact.
            if snapshot is not None:
                self._install_snapshot(snapshot)
            self.recovered_from_index = self.applied_index
            self.env.set_timer(CATCHUP_TIMER, self.catchup_interval)
            return
        self.abcast = self.attach(
            RSM_ABCAST_SCOPE, lambda env: self._module_factory(self, env)
        )
        self.abcast.set_on_deliver(self._on_deliver)
        if self.obs_detail and self.tracer is not None:
            self.abcast.enable_obs(self.tracer)
        self.abcast.on_start()
        self.batcher = Batcher(
            self.env,
            self._propose_batch,
            max_batch=self._batch_max,
            max_delay=self._batch_delay,
        )

    # ------------------------------------------------------------- client side

    def submit(self, request: Request) -> None:
        """Accept one client request (possibly a retry) for replication."""
        if self.is_learner:
            return  # learners never serve clients
        if self.dedup.is_duplicate(request.session, request.seq):
            # Already committed — answer from the dedup cache instead of
            # re-proposing; this is the exactly-once fast path for retries
            # that failed over after their original commit.
            result = self.dedup.cached_result(request.session, request.seq)
            self._ack(request, result)
            return
        self.batcher.add(request)

    def add_commit_listener(
        self, fn: Callable[[int, Request, Any, float], None]
    ) -> None:
        """Register ``fn(pid, request, result, time)`` fired on local commit."""
        self.commit_listeners.append(fn)

    def _ack(self, request: Request, result: Any) -> None:
        now = self.env.now()
        for listener in self.commit_listeners:
            listener(self.env.pid, request, result, now)

    # ---------------------------------------------------------- the apply path

    def _propose_batch(self, batch: tuple[Request, ...]) -> None:
        message = self.abcast.a_broadcast(batch)
        if self.tracer is not None:
            self.tracer.emit_broadcast(self.env.now(), self.env.pid, message.msg_id)

    def _on_deliver(self, message: AppMessage) -> None:
        batch = message.payload
        self.batch_sizes.append(len(batch))
        if self.tracer is not None:
            self.tracer.emit_deliver(self.env.now(), self.env.pid, message.msg_id)
        for request in batch:
            self._apply(request)

    def _apply(self, request: Request) -> None:
        """Apply one totally-ordered request (dedup-filtered, deterministic)."""
        if self.dedup.is_duplicate(request.session, request.seq):
            self.dedup.note_suppressed()
            return
        result = self.machine.apply(request.command)
        self.applied_index += 1
        self.log.append(request)
        self.dedup.record(request.session, request.seq, result)
        self.audit.append(
            AppliedEntry(self.applied_index, request, result, self.env.now())
        )
        if self.obs_detail and self.tracer is not None:
            self.tracer.emit(
                self.env.now(),
                self.env.pid,
                KINDS.RSM_APPLY,
                {
                    "index": self.applied_index,
                    "session": request.session,
                    "seq": request.seq,
                },
            )
        self._ack(request, result)
        if self.snapshot_every and (
            self.applied_index - self.last_snapshot_index >= self.snapshot_every
        ):
            self._take_snapshot()

    # ---------------------------------------------------- snapshots/compaction

    def _take_snapshot(self) -> None:
        payload = {
            "index": self.applied_index,
            "state": self.machine.snapshot(),
            "dedup": self.dedup.snapshot(),
            "digest": self.machine.digest(),
        }
        self.store.put(SNAPSHOT_KEY, payload)
        if self.obs_detail and self.tracer is not None:
            self.tracer.emit(
                self.env.now(),
                self.env.pid,
                KINDS.RSM_SNAPSHOT,
                {"index": self.applied_index},
            )
        self.snapshots_taken += 1
        self.snapshot_bytes += len(repr(payload))
        self.last_snapshot_index = self.applied_index
        # Log compaction: everything up to the snapshot index is now
        # recoverable from the snapshot alone.
        self.log = self.log[self.applied_index - self.log_base :]
        self.log_base = self.applied_index

    def _install_snapshot(self, payload: dict) -> None:
        self.machine.install(payload["state"])
        self.dedup.install(payload["dedup"])
        self.applied_index = payload["index"]
        self.log = []
        self.log_base = payload["index"]
        self.last_snapshot_index = payload["index"]
        self.snapshot_installs += 1

    def digest(self) -> str:
        return self.machine.digest()

    # ----------------------------------------------------------- catch-up path

    def on_plain_timer(self, name: Any) -> None:
        if isinstance(name, tuple) and name and name[0] == SUBMIT_TIMER:
            self.submit(name[2])
            return
        if name == CATCHUP_TIMER:
            for dst in self.env.peers:
                if dst != self.env.pid:
                    self.env.send(dst, CatchUpRequest(self.applied_index))
            self.env.set_timer(CATCHUP_TIMER, self.catchup_interval)
            return
        if self.batcher is not None:
            self.batcher.on_timer(name)

    def on_plain_message(self, src: int, msg: Any) -> None:
        if isinstance(msg, CatchUpRequest):
            self._serve_catchup(src, msg)
        elif isinstance(msg, CatchUpReply):
            self._absorb_catchup(msg)

    def _serve_catchup(self, src: int, req: CatchUpRequest) -> None:
        if self.is_learner or req.applied_index >= self.applied_index:
            return  # nothing newer to offer
        if req.applied_index < self.log_base:
            # The learner is behind our compaction horizon: ship the latest
            # durable snapshot plus the live suffix after it.
            snapshot = self.store.get(SNAPSHOT_KEY)
            self.env.send(
                src,
                CatchUpReply(
                    start=snapshot["index"],
                    entries=tuple(self.log),
                    snapshot=snapshot,
                ),
            )
        else:
            offset = req.applied_index - self.log_base
            self.env.send(
                src,
                CatchUpReply(
                    start=req.applied_index, entries=tuple(self.log[offset:])
                ),
            )

    def _absorb_catchup(self, reply: CatchUpReply) -> None:
        if self.obs_detail and self.tracer is not None:
            self.tracer.emit(
                self.env.now(),
                self.env.pid,
                KINDS.RSM_CATCHUP,
                {
                    "start": reply.start,
                    "entries": len(reply.entries),
                    "snapshot": reply.snapshot is not None,
                },
            )
        if reply.snapshot is not None and reply.snapshot["index"] > self.applied_index:
            self._install_snapshot(reply.snapshot)
        for i, request in enumerate(reply.entries):
            index = reply.start + 1 + i
            if index != self.applied_index + 1:
                continue  # already applied (overlapping replies from peers)
            self.replayed += 1
            self._apply(request)
