"""Value handling shared by all consensus implementations.

Consensus values must be *hashable* (the protocols count equal proposals)
and need a *deterministic total order* for tie-breaking that is stable
across Python processes.  ``repr`` order of sets depends on hash
randomisation, so :func:`canonical_key` recursively canonicalises
containers; two runs with the same seed then make identical tie-break
choices even across interpreter restarts.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Any, Hashable, Iterable

__all__ = ["canonical_key", "majority_value", "value_with_count_at_least"]


#: Per-dataclass-type field-name cache: ``dataclasses.fields`` rebuilds its
#: tuple on every call and canonical_key sits on protocol tie-break paths.
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def canonical_key(value: Any) -> str:
    """A deterministic, hash-randomisation-proof ordering key for a value."""
    if isinstance(value, (frozenset, set)):
        inner = sorted(canonical_key(v) for v in value)
        return "{" + ",".join(inner) + "}"
    if isinstance(value, tuple):
        return "(" + ",".join(canonical_key(v) for v in value) + ")"
    if isinstance(value, list):
        return "[" + ",".join(canonical_key(v) for v in value) + "]"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        tp = type(value)
        names = _FIELD_NAMES.get(tp)
        if names is None:
            _FIELD_NAMES[tp] = names = tuple(
                f.name for f in dataclasses.fields(value)
            )
        fields = (f"{name}={canonical_key(getattr(value, name))}" for name in names)
        return tp.__name__ + "<" + ",".join(fields) + ">"
    return f"{type(value).__name__}:{value!r}"


def value_with_count_at_least(
    values: Iterable[Hashable], threshold: int
) -> Hashable | None:
    """The value appearing at least ``threshold`` times, or None.

    When more than one value crosses the threshold (possible if the caller
    counted over more than ``n - f`` messages), the one with the highest
    count wins; exact ties break on :func:`canonical_key` so every process
    makes the same choice.
    """
    values = list(values)
    if len(values) >= threshold:
        # Fast path: unanimity (the no-collision common case of one-step
        # runs) has a unique winner without building a Counter.
        first = values[0]
        for v in values:
            if v != first:
                break
        else:
            return first
    counts = Counter(values)
    eligible = [(count, v) for v, count in counts.items() if count >= threshold]
    if not eligible:
        return None
    best_count = max(count for count, _ in eligible)
    best = [v for count, v in eligible if count == best_count]
    if len(best) == 1:
        # Common case: a unique winner needs no tie-break, so the (recursive,
        # repr-heavy) canonical_key is computed only for genuine ties.
        return best[0]
    best.sort(key=canonical_key)
    return best[0]


def majority_value(values: Iterable[Hashable]) -> Hashable | None:
    """The strict-majority value among ``values``, or None.

    A strict majority (> half) is unique by definition, so no tie-break is
    needed; this mirrors line 14 of P-Consensus and the majority-voting
    safety argument of L-Consensus.
    """
    values = list(values)
    if not values:
        return None
    counts = Counter(values)
    value, count = counts.most_common(1)[0]
    if count * 2 > len(values):
        return value
    return None
