"""L-Consensus (Algorithm 1 of the paper): Ω-based, zero-degrading consensus.

L-Consensus circumvents the Theorem-1 impossibility by *conditioning one-step
decision on the behaviour of the failure detector*: it decides in a single
communication step when all proposals are equal **and** the run is stable,
and in two steps in every stable run (zero-degradation).  The key mechanism
is that processes are constrained to decide the value backed by the majority
leader:

* **decide** (line 4):  ``n - f`` received PROPs carry the same value ``v``
  *and* name this process's leader ``ld`` in their leader field, and a PROP
  from ``ld`` itself carries ``v``;
* **adopt leader value** (line 7): a majority of PROPs name ``ld`` and ``ld``'s
  own PROP carries ``v``  →  ``est ← v``;
* **adopt majority value** (line 9): some value appears ``n - 2f`` times
  →  ``est ← v`` (safety net for unstable periods — if anyone decided ``v``
  this round, ``v`` necessarily appears ``≥ n - 2f > f`` times, so every
  survivor adopts it).

Requires ``f < n/3``.  Each round is one communication step: broadcast
PROP(r, est, ld), then wait for ``n - f`` round-``r`` PROPs *including one
from ld* — or until Ω stops outputting ``ld`` (the escape hatch that keeps
the protocol live when the leader crashes mid-round).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.interfaces import ConsensusModule
from repro.core.values import value_with_count_at_least
from repro.errors import ConfigurationError
from repro.fd.base import OmegaView
from repro.sim.process import Environment

__all__ = ["LProp", "LConsensus"]


@dataclass(frozen=True, slots=True)
class LProp:
    """Round proposal: ``(r_i, est_i, ld)`` of algorithm 1."""

    round: int
    est: Any
    ld: int | None


class LConsensus(ConsensusModule):
    """One instance of L-Consensus at one process.

    Parameters
    ----------
    env:
        (Scoped) environment.
    omega:
        This process's Ω view; the module subscribes to output changes so the
        line-3 wait re-evaluates as soon as the leader output moves.
    f:
        Resilience bound; must satisfy ``f < n/3``.
    on_decide:
        Upcall invoked exactly once with the decision value.
    """

    def __init__(
        self,
        env: Environment,
        omega: OmegaView,
        f: int | None = None,
        on_decide: Callable[[Any], None] | None = None,
    ) -> None:
        super().__init__(env, on_decide)
        n = env.n
        self.f = (n - 1) // 3 if f is None else f
        if not 0 <= self.f or not 3 * self.f < n:
            raise ConfigurationError(
                f"L-Consensus requires f < n/3 (got n={n}, f={self.f})"
            )
        self.omega = omega
        self.round = 0  # 0 = not started; rounds are 1-based
        self.est: Any = None
        self._round_leader: int | None = None
        # All PROPs ever received, keyed by round then sender (one PROP per
        # sender per round by construction; FIFO channels preserve that).
        self._props: dict[int, dict[int, LProp]] = {}
        omega.subscribe(self._on_omega_change)

    # --------------------------------------------------------------- protocol

    def _start(self, value: Any) -> None:
        self.est = value
        self._begin_round(1)

    def _begin_round(self, r: int) -> None:
        self.round = r
        self._round_leader = self.omega.leader()
        self._emit_round_start(r)
        self.env.broadcast(LProp(r, self.est, self._round_leader))
        # Messages for this round may have been buffered before we got here.
        self._try_complete_round()

    def _on_protocol_message(self, src: int, msg: Any) -> None:
        if not isinstance(msg, LProp):
            return
        self._props.setdefault(msg.round, {})[src] = msg
        if not self.decided and msg.round == self.round:
            self._try_complete_round()

    def _on_omega_change(self) -> None:
        # Line 3's second disjunct: the wait for the leader's PROP is
        # abandoned the moment Ω stops outputting that leader.
        if self._proposed and not self.decided and self.round > 0:
            self._try_complete_round()

    # ------------------------------------------------------------ round logic

    def _try_complete_round(self) -> None:
        r = self.round
        received = self._props.get(r, {})
        n, f = self.env.n, self.f
        if len(received) < n - f:
            return  # line 2: need n - f round-r PROPs
        ld = self._round_leader
        leader_prop = received.get(ld) if ld is not None else None
        if ld is not None and leader_prop is None and self.omega.leader() == ld:
            return  # line 3: keep waiting for the leader's PROP

        # Line 4: n - f PROPs carrying (v, ld) plus v from the leader itself.
        if leader_prop is not None:
            backed = [m.est for m in received.values() if m.ld == ld]
            candidate = value_with_count_at_least(backed, n - f)
            if candidate is not None and leader_prop.est == candidate:
                self._decide(candidate, steps=r)
                return

        # Line 7: majority of PROPs name ld, and ld's PROP carries v.
        named_ld = sum(1 for m in received.values() if m.ld == ld)
        if leader_prop is not None and 2 * named_ld > n:
            self.est = leader_prop.est
        else:
            # Line 9: adopt a value that appears at least n - 2f times.
            candidate = value_with_count_at_least(
                (m.est for m in received.values()), n - 2 * f
            )
            if candidate is not None:
                self.est = candidate

        self._begin_round(r + 1)
