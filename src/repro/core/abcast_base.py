"""Shared machinery for atomic-broadcast protocol modules.

All three atomic broadcast implementations in this repository — the paper's
C-Abcast, the WABCast baseline and the Multi-Paxos baseline — expose the same
two-primitive interface from section 3.3 (``a_broadcast`` / an ``on_deliver``
upcall), so the workload harness and the safety checkers treat them
uniformly.

Messages are :class:`AppMessage` records identified by ``(origin, seq)``;
batches decided by consensus are delivered "atomically in some deterministic
order" (algorithm 3, line 10) — here: sorted by ``(origin, seq)``, a total
order available identically at every process.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.sim.process import Environment

__all__ = ["AppMessage", "AbcastModule", "deterministic_batch_order"]


@dataclass(frozen=True, slots=True)
class AppMessage:
    """An application payload wrapped for atomic broadcast.

    ``origin`` and ``seq`` identify the message uniquely; ``sent_at`` is the
    a-broadcast timestamp used by the latency metrics (it rides along in the
    identity, which is harmless since the tuple is unique anyway).
    """

    origin: int
    seq: int
    payload: Any
    sent_at: float

    @property
    def msg_id(self) -> tuple[int, int]:
        return (self.origin, self.seq)


def deterministic_batch_order(batch: Iterable[AppMessage]) -> list[AppMessage]:
    """The paper's "deterministic order" for intra-batch delivery."""
    return sorted(batch, key=lambda m: (m.origin, m.seq))


class AbcastModule(abc.ABC):
    """Base class for atomic broadcast modules hosted inside a process."""

    #: Detailed observability; ``None`` keeps the module silent.  Wrapper
    #: protocols (C-Abcast spawning consensus instances) override
    #: :meth:`enable_obs` to propagate the tracer to sub-modules.
    tracer = None

    def enable_obs(self, tracer) -> None:
        self.tracer = tracer

    def __init__(
        self,
        env: Environment,
        on_deliver: Callable[[AppMessage], None] | None = None,
    ) -> None:
        self.env = env
        self._on_deliver = on_deliver
        self._next_seq = 0
        self.delivered: list[AppMessage] = []
        self._delivered_ids: set[tuple[int, int]] = set()
        self.broadcast_log: list[AppMessage] = []

    # ------------------------------------------------------------- public API

    def set_on_deliver(self, fn: Callable[[AppMessage], None]) -> None:
        self._on_deliver = fn

    def a_broadcast(self, payload: Any) -> AppMessage:
        """Atomically broadcast ``payload``; returns the wrapped message."""
        self._next_seq += 1
        message = AppMessage(self.env.pid, self._next_seq, payload, self.env.now())
        self.broadcast_log.append(message)
        self._submit(message)
        return message

    @property
    def delivered_ids(self) -> list[tuple[int, int]]:
        """Delivery sequence as ids (what the total-order checker consumes)."""
        return [m.msg_id for m in self.delivered]

    # ------------------------------------------------------ subclass contract

    @abc.abstractmethod
    def _submit(self, message: AppMessage) -> None:
        """Inject a locally a-broadcast message into the protocol."""

    @abc.abstractmethod
    def on_message(self, src: int, msg: Any) -> None:
        """Protocol message dispatch (called by the hosting process)."""

    def on_timer(self, name: Any) -> None:
        """Most abcast modules are timer-free; Multi-Paxos overrides."""

    def on_start(self) -> None:
        """Called once when the hosting node boots."""

    # --------------------------------------------------------------- delivery

    def _deliver_batch(self, batch: Iterable[AppMessage]) -> list[AppMessage]:
        """Deliver every not-yet-delivered message of ``batch`` in order."""
        fresh = []
        for message in deterministic_batch_order(batch):
            if message.msg_id in self._delivered_ids:
                continue
            self._delivered_ids.add(message.msg_id)
            self.delivered.append(message)
            fresh.append(message)
            if self._on_deliver is not None:
                self._on_deliver(message)
        return fresh
