"""P-Consensus (Algorithm 2 of the paper): ◇P-based, one-step *and* zero-degrading.

P-Consensus escapes the Theorem-1 impossibility by using a failure detector
strictly stronger than Ω.  The idea (originally Lamport's, Fast Paxos):
the impossibility needs processes to act on *different* quorums of first-round
messages; ◇P lets every undecided process compute the **same** quorum — the
first ``n - f`` non-suspected processes — wait for a PROP from each of its
non-suspected members, and then apply the same deterministic choice functions
to the same message set.  In a stable run all undecided processes therefore
enter round ``r + 1`` with equal estimates and decide — two steps total, i.e.
zero-degradation — while ``n - f`` equal first-round values always decide in
one step regardless of the detector output (one-step).

Round structure (per round ``r``):

1. broadcast ``PROP(r, est)``; wait for ``n - f`` round-``r`` PROPs (line 2);
2. **decide** if ``n - f`` of them carry the same value (line 3-4);
3. otherwise fix the quorum ``Q`` = first ``n - f`` non-suspected processes
   (line 5) and additionally wait for a PROP from every member of
   ``Q \\ suspected`` (line 6 — re-evaluated whenever ◇P changes);
4. choose the next estimate (lines 7-14):
   * ``Q`` complete (all ``n - f`` PROPs from ``Q`` in hand): the value with
     ``≥ n - 2f`` occurrences in the quorum list, else the estimate of the
     lowest-index member of ``Q`` (the deterministic "leader" pick);
   * ``Q`` incomplete: the strict-majority value among *all* received
     round-``r`` PROPs, if any (the agreement safety net).

Requires ``f < n/3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.interfaces import ConsensusModule
from repro.core.values import majority_value, value_with_count_at_least
from repro.errors import ConfigurationError
from repro.fd.base import SuspectView
from repro.sim.process import Environment

__all__ = ["PProp", "PConsensus"]


@dataclass(frozen=True, slots=True)
class PProp:
    """Round proposal: ``(r_i, est_i)`` of algorithm 2."""

    round: int
    est: Any


class PConsensus(ConsensusModule):
    """One instance of P-Consensus at one process.

    Parameters
    ----------
    env:
        (Scoped) environment.
    suspects:
        This process's ◇P view; the module subscribes to changes so the
        line-6 wait unblocks when a quorum member gets suspected.
    f:
        Resilience bound; must satisfy ``f < n/3``.
    on_decide:
        Upcall invoked exactly once with the decision value.
    """

    def __init__(
        self,
        env: Environment,
        suspects: SuspectView,
        f: int | None = None,
        on_decide: Callable[[Any], None] | None = None,
    ) -> None:
        super().__init__(env, on_decide)
        n = env.n
        self._n = n  # group size is fixed; skip the per-message property
        self.f = (n - 1) // 3 if f is None else f
        if not 0 <= self.f or not 3 * self.f < n:
            raise ConfigurationError(
                f"P-Consensus requires f < n/3 (got n={n}, f={self.f})"
            )
        self.suspects = suspects
        self.round = 0  # 0 = not started; rounds are 1-based
        self.est: Any = None
        self._props: dict[int, dict[int, PProp]] = {}
        # None while in the first wait (line 2); the fixed quorum afterwards.
        self._quorum: tuple[int, ...] | None = None
        suspects.subscribe(self._on_suspects_change)

    # --------------------------------------------------------------- protocol

    def _start(self, value: Any) -> None:
        self.est = value
        self._begin_round(1)

    def _begin_round(self, r: int) -> None:
        self.round = r
        self._quorum = None
        self._emit_round_start(r)
        self.env.broadcast(PProp(r, self.est))
        self._advance()

    def _on_protocol_message(self, src: int, msg: Any) -> None:
        if type(msg) is not PProp:  # exact type: PProp is a final message shape
            return
        self._props.setdefault(msg.round, {})[src] = msg
        if not self.decided and msg.round == self.round:
            self._advance()

    def _on_suspects_change(self) -> None:
        # Line 6 re-evaluation: a newly suspected quorum member no longer
        # blocks the wait.
        if self._proposed and not self.decided and self._quorum is not None:
            self._advance()

    # ------------------------------------------------------------ round logic

    def _advance(self) -> None:
        r = self.round
        received = self._props.get(r, {})
        n, f = self._n, self.f

        if self._quorum is None:
            if len(received) < n - f:
                return  # line 2
            # Line 3-4: n - f equal values decide immediately — no failure
            # detector involved, which is what makes P-Consensus one-step.
            candidate = value_with_count_at_least(
                (m.est for m in received.values()), n - f
            )
            if candidate is not None:
                self._decide(candidate, steps=r)
                return
            # Line 5: fix Q as the first n - f processes not suspected *now*.
            trusted = [p for p in sorted(self.env.peers) if p not in self.suspects.suspected()]
            self._quorum = tuple(trusted[: n - f])

        # Line 6: wait for a PROP from every not-currently-suspected member of Q.
        pending = [
            p
            for p in self._quorum
            if p not in received and p not in self.suspects.suspected()
        ]
        if pending:
            return

        # Lines 7-14: choose the next estimate.
        qlist = [received[p].est for p in self._quorum if p in received]
        if len(qlist) == n - f:
            candidate = value_with_count_at_least(qlist, n - 2 * f)
            if candidate is not None:
                self.est = candidate  # line 10
            else:
                self.est = received[min(self._quorum)].est  # line 12
        else:
            vlist = [m.est for m in received.values()]
            candidate = majority_value(vlist)
            if candidate is not None:
                self.est = candidate  # line 14 (agreement safety net)

        self._begin_round(r + 1)
