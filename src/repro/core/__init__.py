"""The paper's primary contribution: L-Consensus, P-Consensus, C-Abcast,
and the executable Theorem-1 lower bound."""

from repro.core.interfaces import ConsensusModule, Decide, DecisionRecord
from repro.core.lconsensus import LConsensus, LProp
from repro.core.pconsensus import PConsensus, PProp
from repro.core.values import canonical_key, majority_value, value_with_count_at_least

__all__ = [
    "ConsensusModule",
    "Decide",
    "DecisionRecord",
    "LConsensus",
    "LProp",
    "PConsensus",
    "PProp",
    "canonical_key",
    "majority_value",
    "value_with_count_at_least",
]
