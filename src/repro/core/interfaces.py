"""Common interfaces for consensus modules and the shared DECIDE task.

Every consensus implementation in this repository (L-Consensus, P-Consensus,
Paxos, Brasileiro, Fast Paxos) is a *module*: it lives inside a host process
under a scope, reacts to ``on_message``/``on_timer`` and reports its decision
through an ``on_decide`` upcall.  The atomic-broadcast reductions swap these
modules freely, exactly as the paper's evaluation "exchang[ed] the consensus
module of C-Abcast" (section 8.1).

:class:`ConsensusModule` also implements the paper's *task T2*, shared
verbatim by algorithms 1 and 2: upon first reception of ``DECIDE(v)``,
forward ``DECIDE(v)`` to every other process and decide ``v``.  This makes
decision dissemination reliable — once any correct process decides, no
correct process can block in a round forever.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.sim.process import Environment

__all__ = ["Decide", "ConsensusModule", "DecisionRecord"]


@dataclass(frozen=True, slots=True)
class Decide:
    """Decision broadcast of task T2; ``round`` is carried for metrics only."""

    value: Any
    round: int


@dataclass(frozen=True)
class DecisionRecord:
    """How and when this module decided (one record per module)."""

    value: Any
    steps: int  # communication steps (= protocol rounds) to this decision
    via: str  # "round" if decided inside the round structure, "forward" if via DECIDE
    at: float  # environment time of the decision


class ConsensusModule(abc.ABC):
    """Base class: decision plumbing, T2 forwarding, per-instance metrics."""

    #: Subclasses whose protocol already disseminates decisions all-to-all
    #: (e.g. Paxos learning via ACCEPTED) set this False to skip the DECIDE
    #: broadcast/forward of task T2.
    announce_decide: bool = True

    #: Detailed observability (propose / round-start / round-end records).
    #: ``None`` keeps the module silent; :meth:`enable_obs` turns it on.
    tracer = None
    #: Label distinguishing concurrent instances (e.g. the C-Abcast slot k).
    instance_label = None

    def __init__(self, env: Environment, on_decide: Callable[[Any], None] | None = None) -> None:
        self.env = env
        # T2 announcement targets (everyone but self), fixed for the
        # module's lifetime — one grouped send per decision.
        self._announce_targets = tuple(p for p in env.peers if p != env.pid)
        self._on_decide = on_decide
        self.decision: DecisionRecord | None = None
        self._proposed = False

    # ------------------------------------------------------------- public API

    @property
    def decided(self) -> bool:
        return self.decision is not None

    @property
    def proposed(self) -> bool:
        return self._proposed

    def set_on_decide(self, fn: Callable[[Any], None]) -> None:
        if self._on_decide is not None:
            raise ConfigurationError("on_decide callback already set")
        self._on_decide = fn

    def enable_obs(self, tracer, instance_label: Any = None) -> None:
        """Turn on detailed tracing for this module (and any sub-modules).

        Wrapper protocols that own an underlying consensus module override
        this to propagate the tracer downward.
        """
        self.tracer = tracer
        self.instance_label = instance_label

    def propose(self, value: Any) -> None:
        """Propose ``value``; may be called at most once per module."""
        if self._proposed:
            raise ConfigurationError("a consensus module accepts a single proposal")
        self._proposed = True
        if self.tracer is not None:
            self.tracer.emit_propose(self.env.now(), self.env.pid, value, self.instance_label)
        if self.decided:
            # A DECIDE arrived before we proposed (this process lagged); the
            # decision stands and there is nothing left to do.
            return
        self._start(value)

    def on_message(self, src: int, msg: Any) -> None:
        if type(msg) is Decide:  # exact type: Decide is a final message shape
            self._on_decide_message(src, msg)
        else:
            self._on_protocol_message(src, msg)

    def on_timer(self, name: Any) -> None:
        """Consensus modules are timer-free by default (round-asynchronous)."""

    # ----------------------------------------------------- subclass contract

    @abc.abstractmethod
    def _start(self, value: Any) -> None:
        """Begin the protocol with the local proposal ``value``."""

    @abc.abstractmethod
    def _on_protocol_message(self, src: int, msg: Any) -> None:
        """Handle a non-DECIDE protocol message."""

    # --------------------------------------------------------------- tracing

    def _emit_round_start(self, round_no: int, phase: str | None = None) -> None:
        """Record a round (or named phase) transition when tracing is on."""
        if self.tracer is not None:
            self.tracer.emit_round_start(
                self.env.now(), self.env.pid, round_no, self.instance_label, phase
            )

    # -------------------------------------------------------------- decisions

    def _decide(self, value: Any, steps: int) -> None:
        """Decide inside the round structure (e.g. line 5 of algorithm 1)."""
        if self.decided:
            return
        self.decision = DecisionRecord(value, steps, "round", self.env.now())
        if self.tracer is not None:
            self.tracer.emit_round_end(
                self.env.now(), self.env.pid, "decided", steps, "round", value, self.instance_label
            )
        if self.announce_decide:
            # One shared (immutable) DECIDE for all peers: byte accounting
            # then pays a single repr instead of n - 1, and the grouped send
            # rides the network's fan-out fast path.
            self.env.send_many(self._announce_targets, Decide(value, steps))
        self._deliver_decision(value)

    def _on_decide_message(self, src: int, msg: Decide) -> None:
        """Task T2: forward on first reception, then decide."""
        if self.decided:
            return
        self.decision = DecisionRecord(msg.value, msg.round, "forward", self.env.now())
        if self.tracer is not None:
            self.tracer.emit_round_end(
                self.env.now(),
                self.env.pid,
                "forward",
                msg.round,
                "forward",
                msg.value,
                self.instance_label,
            )
        if self.announce_decide:
            self.env.send_many(self._announce_targets, Decide(msg.value, msg.round))
        self._deliver_decision(msg.value)

    def _deliver_decision(self, value: Any) -> None:
        if self._on_decide is not None:
            self._on_decide(value)
