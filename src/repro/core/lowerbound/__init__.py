"""Executable Theorem 1 (section 4, Figure 1): the one-step/zero-degradation
lower bound for Ω-based consensus."""

from repro.core.lowerbound.checker import RuleReport, check_rule
from repro.core.lowerbound.model import (
    LEADER,
    PIDS,
    RunSpec,
    format_state1,
    hear_options,
    iter_runs,
    one_step_value,
    state1,
    state2,
)
from repro.core.lowerbound.rules import (
    BrasileiroRule,
    DecisionRule,
    LConsensusRule,
    NaiveCombinedRule,
)
from repro.core.lowerbound.theorem import (
    Certificate,
    ChainLink,
    Run,
    build_runs,
    prove_theorem1,
)

__all__ = [
    "LEADER",
    "PIDS",
    "RunSpec",
    "format_state1",
    "hear_options",
    "iter_runs",
    "one_step_value",
    "state1",
    "state2",
    "RuleReport",
    "check_rule",
    "DecisionRule",
    "NaiveCombinedRule",
    "LConsensusRule",
    "BrasileiroRule",
    "Certificate",
    "ChainLink",
    "Run",
    "build_runs",
    "prove_theorem1",
]
