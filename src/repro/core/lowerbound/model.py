"""Full-information run model behind the Theorem-1 lower bound (section 4).

The proof of Theorem 1 argues about two-round runs of an arbitrary
*full-information* protocol for ``n = 4, f = 1``: in every round each process
broadcasts its complete state and then acts on the messages received from
``n - f = 3`` processes (one entry missing — waiting for the fourth message
is not fault-tolerant, so the adversary may withhold it).

This module is the executable version of the proof's "Preliminary notes":

* a :class:`RunSpec` fixes the initial values and, per round, which
  3-process subset (always containing itself) each process hears;
* :func:`state1` / :func:`state2` compute the paper's state vectors — a
  process's state after round 1 is the received initial values
  (``011-`` style), after round 2 the vector of round-1 states of the
  processes heard (the ``s1 .. s5`` matrices of Figure 1);
* Ω outputs ``p1`` at every process throughout, exactly as in the proof
  ("Ω outputs the same leader process p1 at all processes in every run
  considered in the proof"), so every run in the model is *stable* in the
  sense of Definition 2 and the zero-degradation obligation applies to all
  of them;
* a run is *one-step-obliging* for process ``i`` when ``i``'s round-1 state
  shows ``n - f`` equal values ``v``: such a state is indistinguishable from
  a state in a run where all proposals equal ``v`` and the missing process
  crashed initially, so a one-step protocol must already have decided ``v``
  (Definition 1 applied through indistinguishability).

Processes are numbered 1..4 in this package to match Figure 1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError

__all__ = [
    "PIDS",
    "N",
    "F",
    "LEADER",
    "RunSpec",
    "state1",
    "state2",
    "one_step_value",
    "hear_options",
    "iter_runs",
    "format_state1",
]

PIDS: tuple[int, ...] = (1, 2, 3, 4)
N = 4
F = 1
LEADER = 1  # Ω outputs p1 everywhere, as in the proof.

State1 = tuple  # 4 entries: initial value heard, or None
State2 = tuple  # 4 entries: State1 of the process heard, or None


@dataclass(frozen=True)
class RunSpec:
    """A two-round run: initial values plus per-round hear-sets.

    ``hears1[i]`` / ``hears2[i]`` are the (sorted) 3-tuples of pids process
    ``i + 1`` hears in rounds 1 and 2.  Every hear-set contains the process
    itself (its own message is always available).
    """

    initial: tuple[int, int, int, int]
    hears1: tuple[tuple[int, ...], ...]
    hears2: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if len(self.initial) != N or len(self.hears1) != N or len(self.hears2) != N:
            raise ConfigurationError("RunSpec needs exactly 4 processes")
        for i, pid in enumerate(PIDS):
            for hears in (self.hears1[i], self.hears2[i]):
                if len(hears) != N - F:
                    raise ConfigurationError(
                        f"p{pid} must hear exactly n-f={N - F} processes, got {hears}"
                    )
                if pid not in hears:
                    raise ConfigurationError(f"p{pid}'s hear-set {hears} must contain itself")
                if any(q not in PIDS for q in hears):
                    raise ConfigurationError(f"unknown pid in hear-set {hears}")

    def value_of(self, pid: int) -> int:
        return self.initial[pid - 1]


def state1(run: RunSpec, pid: int) -> State1:
    """Process ``pid``'s state after round 1: the initial values it heard."""
    heard = run.hears1[pid - 1]
    return tuple(run.value_of(q) if q in heard else None for q in PIDS)


def state2(run: RunSpec, pid: int) -> State2:
    """Process ``pid``'s state after round 2: the round-1 states it heard.

    Because each hear-set contains the process itself, ``state2`` determines
    ``state1`` (its own entry), so any decision taken *by the end of round 2*
    is a function of ``state2`` alone — the similarity notion of the proof.
    """
    heard = run.hears2[pid - 1]
    return tuple(state1(run, q) if q in heard else None for q in PIDS)


def one_step_value(s1: State1) -> int | None:
    """The value a one-step protocol is obliged to decide in state ``s1``.

    If the ``n - f`` received values are all equal to ``v``, the state is
    indistinguishable from one arising in a run where every process proposed
    ``v`` and the missing process crashed initially; Definition 1 then forces
    an immediate decision, and Validity forces the value ``v``.
    Returns None when the state carries no obligation.
    """
    values = {v for v in s1 if v is not None}
    if len(values) == 1:
        return values.pop()
    return None


def hear_options(pid: int) -> list[tuple[int, ...]]:
    """All hear-sets available to the adversary for ``pid``: the 3-subsets
    of {1..4} containing ``pid``."""
    return [
        tuple(sorted(combo))
        for combo in itertools.combinations(PIDS, N - F)
        if pid in combo
    ]


def iter_runs(
    initials: Iterator[tuple[int, int, int, int]] | None = None,
    restrict_hears: list[tuple[int, ...]] | None = None,
) -> Iterator[RunSpec]:
    """Enumerate the run space.

    ``initials`` defaults to all 16 binary assignments; ``restrict_hears``
    optionally limits each process's hear-set choices to those (of its own
    admissible options) appearing in the given list — used to keep exhaustive
    sweeps tractable.
    """
    if initials is None:
        initials = itertools.product((0, 1), repeat=N)  # type: ignore[assignment]
    per_pid = []
    for pid in PIDS:
        options = hear_options(pid)
        if restrict_hears is not None:
            options = [o for o in options if o in restrict_hears]
        if not options:
            raise ConfigurationError(f"restriction removed all hear-sets for p{pid}")
        per_pid.append(options)
    for initial in initials:
        for hears1 in itertools.product(*per_pid):
            for hears2 in itertools.product(*per_pid):
                yield RunSpec(tuple(initial), hears1, hears2)


def format_state1(s1: State1) -> str:
    """Figure-1 rendering of a round-1 state, e.g. ``011-``."""
    return "".join("-" if v is None else str(v) for v in s1)
