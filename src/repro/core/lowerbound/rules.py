"""Concrete decision rules for the lower-bound model.

Each rule is a *full-information protocol skeleton* for the two-round model
of :mod:`repro.core.lowerbound.model` (n = 4, f = 1, Ω ≡ p1):

* :class:`NaiveCombinedRule` — the "obvious" combination sketched at the
  start of section 4: Brasileiro's one-step round glued onto a leader round,
  engineered to be both one-step and zero-degrading.  Theorem 1 says it
  cannot be correct, and the checker exhibits its agreement violation.
* :class:`LConsensusRule` — the decision structure of algorithm 1: waits for
  the leader's message, decides on ``n - f`` leader-backed equal values.
  Safe and zero-degrading, but *not* one-step (it refuses to act on a
  leaderless quorum).
* :class:`BrasileiroRule` — the decision structure of [2]: decides on
  ``n - f`` equal first-round values, otherwise defers to an underlying
  consensus (i.e. decides nothing by round 2).  Safe and one-step, but
  *not* zero-degrading.

Together the three rules trace the boundary of Theorem 1: each corner of
{one-step, zero-degrading, safe} minus one is achievable, all three at once
are not.
"""

from __future__ import annotations

import abc
from collections import Counter

from repro.core.lowerbound.model import LEADER, N, F, PIDS

__all__ = ["DecisionRule", "NaiveCombinedRule", "LConsensusRule", "BrasileiroRule"]


class DecisionRule(abc.ABC):
    """A full-information protocol skeleton under Ω ≡ p1."""

    name: str = "rule"

    @abc.abstractmethod
    def acceptable1(self, pid: int, s1: tuple) -> bool:
        """May ``pid`` end round 1 in state ``s1`` (or would it keep waiting)?"""

    def acceptable2(self, pid: int, s2: tuple) -> bool:
        """May ``pid`` end round 2 in state ``s2``?  Defaults to round-1 rule."""
        heard = tuple(q for q in PIDS if s2[q - 1] is not None)
        return self._accepts_heard(heard)

    @abc.abstractmethod
    def decide1(self, pid: int, s1: tuple) -> int | None:
        """Decision at the end of round 1, or None."""

    @abc.abstractmethod
    def decide2(self, pid: int, s2: tuple) -> int | None:
        """Decision at the end of round 2 (given no round-1 decision), or None."""

    def _accepts_heard(self, heard: tuple) -> bool:
        return True

    # ------------------------------------------------------------ conveniences

    @staticmethod
    def heard_values(s1: tuple) -> list[int]:
        return [v for v in s1 if v is not None]

    @staticmethod
    def majority_at_least(values: list[int], threshold: int) -> int | None:
        counts = Counter(values)
        winners = [v for v, c in counts.items() if c >= threshold]
        if not winners:
            return None
        # Deterministic tie-break (two winners can only happen below a strict
        # majority threshold): highest count, then smallest value.
        winners.sort(key=lambda v: (-counts[v], v))
        return winners[0]


def _estimate_after_round1(s1: tuple, own_pid: int) -> int:
    """The round-2 proposal of the naive combined protocol.

    Majority value if one appears at least ``n - 2f`` times (needed for
    agreement with a one-step decider), else the leader's value if heard,
    else the process's own value.
    """
    values = [v for v in s1 if v is not None]
    majority = DecisionRule.majority_at_least(values, N - 2 * F)
    if majority is not None:
        return majority
    if s1[LEADER - 1] is not None:
        return s1[LEADER - 1]
    return s1[own_pid - 1]


class NaiveCombinedRule(DecisionRule):
    """One-step + zero-degrading by construction — hence unsafe (Theorem 1)."""

    name = "naive-combined"

    def acceptable1(self, pid: int, s1: tuple) -> bool:
        return True  # acts on any n - f messages: that is what one-step costs

    def decide1(self, pid: int, s1: tuple) -> int | None:
        values = self.heard_values(s1)
        unanimous = self.majority_at_least(values, N - F)
        return unanimous

    def decide2(self, pid: int, s2: tuple) -> int | None:
        # Zero-degradation forces a decision here.  Decide the leader-backed
        # estimate if visible, else the majority estimate.
        estimates = []
        for q in PIDS:
            inner = s2[q - 1]
            if inner is not None:
                estimates.append(_estimate_after_round1(inner, q))
        leader_state = s2[LEADER - 1]
        if leader_state is not None:
            return _estimate_after_round1(leader_state, LEADER)
        majority = self.majority_at_least(estimates, (len(estimates) // 2) + 1)
        if majority is not None:
            return majority
        return estimates[0]


class LConsensusRule(DecisionRule):
    """Algorithm 1's decision structure: leader-waiting, leader-backed decisions."""

    name = "l-consensus"

    def _accepts_heard(self, heard: tuple) -> bool:
        # Line 3: with Ω stuck on p1, a round never ends without p1's message.
        return LEADER in heard

    def acceptable1(self, pid: int, s1: tuple) -> bool:
        return s1[LEADER - 1] is not None

    def decide1(self, pid: int, s1: tuple) -> int | None:
        values = self.heard_values(s1)
        unanimous = self.majority_at_least(values, N - F)
        if unanimous is not None and s1[LEADER - 1] == unanimous:
            return unanimous  # line 4: n - f equal values backed by the leader
        return None

    def decide2(self, pid: int, s2: tuple) -> int | None:
        # In a stable run every process adopted the leader's value after
        # round 1 (line 7), so round 2 shows n - f equal leader-backed values.
        estimates = []
        for q in PIDS:
            inner = s2[q - 1]
            if inner is None:
                continue
            if inner[LEADER - 1] is not None:
                estimates.append(inner[LEADER - 1])  # line 7 adoption
            else:
                estimates.append(_estimate_after_round1(inner, q))
        unanimous = self.majority_at_least(estimates, N - F)
        leader_state = s2[LEADER - 1]
        if unanimous is not None and leader_state is not None:
            return unanimous
        return None


class BrasileiroRule(DecisionRule):
    """[2]'s decision structure: one-step vote, then an underlying consensus."""

    name = "brasileiro"

    def acceptable1(self, pid: int, s1: tuple) -> bool:
        return True

    def decide1(self, pid: int, s1: tuple) -> int | None:
        values = self.heard_values(s1)
        return self.majority_at_least(values, N - F)

    def decide2(self, pid: int, s2: tuple) -> int | None:
        # Round 2 merely starts the underlying consensus: no decision yet —
        # the protocol is one-step but needs three or more rounds otherwise.
        return None
