"""Machine-checked Theorem 1: one-step ∧ zero-degradation is impossible on Ω.

This module re-derives the paper's Figure-1 contradiction automatically.
Instead of hard-coding the eight runs R1..R8, it builds the full constraint
system the proof reasons with and lets breadth-first propagation find an
indistinguishability chain ending in a contradiction.  The produced
:class:`Certificate` *is* Figure 1 — each link names the runs, the pivot
process and the forced value — except discovered rather than transcribed.

The constraint system (for ``n = 4, f = 1``, Ω ≡ p1 as in the proof):

* **stable runs** — no crashes; by Definition 2 every such run is stable, so
  zero-degradation obliges every process to decide by round 2; that decision
  is a deterministic function ``D`` of the process's two-round state, and
  agreement + validity tie all of a run's decisions to one value
  ``val(R) ∈ {proposed values}``.
* **one-step obligations** — a round-1 state with ``n - f`` equal values
  ``v`` forces an immediate decision ``v`` (indistinguishable from an
  all-``v`` run with an initial crash), seeding ``val(R) = v``.
* **crash runs** — p1 completes round 2 and then crashes, its round-2
  messages lost.  p1 cannot distinguish this from a stable run with the same
  state, so ``D`` applies to its state; the survivors decide only eventually,
  but termination + agreement still give the run a single value, and two
  crash runs in which all three survivors have identical two-round states
  have a common continuation — hence the same value.
* **realizability** — the chain must apply to *every* one-step protocol,
  including leader-waiting ones (which refuse to end a round without p1's
  message while Ω outputs p1).  A hear-set that omits p1 is therefore only
  used when its values are all equal (the one-step obligation forces the
  process to act) or when p1 has crashed (survivor round-2 sets).

Running :func:`prove_theorem1` propagates values from the one-step seeds
through the equality edges until a run is forced to two different values —
the agreement/validity contradiction of the proof.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.core.lowerbound.model import (
    F,
    LEADER,
    N,
    PIDS,
    RunSpec,
    format_state1,
    hear_options,
    one_step_value,
    state1,
    state2,
)
from repro.errors import ReproError

__all__ = ["Run", "ChainLink", "Certificate", "prove_theorem1", "build_runs"]

SURVIVOR_ROUND2 = tuple(sorted(set(PIDS) - {LEADER}))


@dataclass(frozen=True)
class Run:
    """A run of the constraint system: a :class:`RunSpec` plus crash flag."""

    spec: RunSpec
    p1_crashes: bool  # p1 crashes after round 2; its round-2 messages are lost

    def describe(self) -> str:
        kind = "crash(p1)" if self.p1_crashes else "stable"
        initial = "".join(str(v) for v in self.spec.initial)
        hears = ";".join(
            f"p{pid}<{''.join(map(str, self.spec.hears1[pid - 1]))}|"
            f"{''.join(map(str, self.spec.hears2[pid - 1]))}>"
            for pid in PIDS
        )
        return f"[{kind} init={initial} {hears}]"


@dataclass(frozen=True)
class ChainLink:
    """One propagation step of the discovered Figure-1 chain."""

    run: Run
    value: int
    reason: str


@dataclass
class Certificate:
    """A machine-checked witness of Theorem 1."""

    chain_zero: list[ChainLink]
    chain_one: list[ChainLink]
    conflict_run: Run

    @property
    def length(self) -> int:
        return len(self.chain_zero) + len(self.chain_one)

    def explain(self) -> str:
        lines = [
            "Theorem 1 certificate: assuming a one-step AND zero-degrading",
            "Omega-based protocol (n=4, f=1, Omega = p1 as in the paper's proof),",
            f"run {self.conflict_run.describe()} is forced to decide both 0 and 1.",
            "",
            "Chain forcing value 1:",
        ]
        for link in self.chain_one:
            lines.append(f"  val=1 in {link.run.describe()}  [{link.reason}]")
        lines.append("")
        lines.append("Chain forcing value 0:")
        for link in self.chain_zero:
            lines.append(f"  val=0 in {link.run.describe()}  [{link.reason}]")
        lines.append("")
        lines.append(
            "Both chains meet: agreement (or validity) is violated, so no such"
            " protocol exists — Theorem 1."
        )
        return "\n".join(lines)


def _realizable_stable(spec: RunSpec) -> bool:
    """Realizable for every one-step protocol, including leader-waiting ones."""
    for pid in PIDS:
        s1 = state1(spec, pid)
        decided_round1 = one_step_value(s1) is not None
        if LEADER not in spec.hears1[pid - 1] and not decided_round1:
            return False
        if LEADER not in spec.hears2[pid - 1] and not decided_round1:
            return False
    return True


def _realizable_crash(spec: RunSpec) -> bool:
    """Crash-run realizability: survivors' round-2 sets are {2,3,4} (p1's
    round-2 messages are lost); round-1 constraints are as in stable runs."""
    for pid in PIDS:
        s1 = state1(spec, pid)
        decided_round1 = one_step_value(s1) is not None
        if LEADER not in spec.hears1[pid - 1] and not decided_round1:
            return False
        if pid == LEADER:
            if LEADER not in spec.hears2[pid - 1]:
                return False
        elif spec.hears2[pid - 1] != SURVIVOR_ROUND2:
            return False
    return True


def build_runs(
    restrict_hears: list[tuple[int, ...]] | None = None,
) -> tuple[list[Run], list[Run]]:
    """Enumerate realizable stable and crash runs of the model."""
    stable: list[Run] = []
    crash: list[Run] = []
    per_pid_options = []
    for pid in PIDS:
        options = hear_options(pid)
        if restrict_hears is not None:
            options = [o for o in options if o in restrict_hears] or options
        per_pid_options.append(options)
    for initial in itertools.product((0, 1), repeat=N):
        for hears1 in itertools.product(*per_pid_options):
            for hears2 in itertools.product(*per_pid_options):
                spec = RunSpec(tuple(initial), hears1, hears2)
                if _realizable_stable(spec):
                    stable.append(Run(spec, False))
            # Crash runs: survivors' round-2 sets are forced, so only p1's
            # round-2 choice varies.
            for p1_hears2 in per_pid_options[0]:
                hears2 = (p1_hears2,) + tuple(SURVIVOR_ROUND2 for _ in range(N - 1))
                spec = RunSpec(tuple(initial), hears1, hears2)
                if _realizable_crash(spec):
                    crash.append(Run(spec, True))
    return stable, crash


def prove_theorem1(
    restrict_hears: list[tuple[int, ...]] | None = None,
) -> Certificate:
    """Derive the Theorem-1 contradiction by constraint propagation.

    Returns a :class:`Certificate`; raises :class:`ReproError` if no
    contradiction is found (which would falsify the reproduction — the test
    suite asserts it never happens on the full space).
    """
    stable, crash = build_runs(restrict_hears)
    runs = stable + crash

    # Equality edges.  Key 1: decisions-by-round-2 are a function of the
    # two-round state, defined for every process of a stable run and for p1
    # of a crash run whenever the same state occurs in some stable run.
    d_key_to_runs: dict[tuple[int, tuple], list[int]] = {}
    stable_d_keys: set[tuple[int, tuple]] = set()
    for index, run in enumerate(stable):
        for pid in PIDS:
            key = (pid, state2(run.spec, pid))
            stable_d_keys.add(key)
            d_key_to_runs.setdefault(key, []).append(index)
    offset = len(stable)
    for index, run in enumerate(crash):
        key = (LEADER, state2(run.spec, LEADER))
        if key in stable_d_keys:
            d_key_to_runs.setdefault(key, []).append(offset + index)

    # Key 2: two crash runs whose three survivors have identical two-round
    # states share a continuation, hence an eventual decision value.
    future_key_to_runs: dict[tuple, list[int]] = {}
    for index, run in enumerate(crash):
        key = tuple(state2(run.spec, pid) for pid in SURVIVOR_ROUND2)
        future_key_to_runs.setdefault(key, []).append(offset + index)

    adjacency: dict[int, list[tuple[int, str]]] = {}

    def connect(members: list[int], reason: str) -> None:
        for a, b in zip(members, members[1:]):
            adjacency.setdefault(a, []).append((b, reason))
            adjacency.setdefault(b, []).append((a, reason))

    for (pid, _), members in d_key_to_runs.items():
        if len(members) > 1:
            connect(members, f"p{pid} has the same two-round state (decides alike by round 2)")
    for members in future_key_to_runs.values():
        if len(members) > 1:
            connect(members, "all survivors share states; common continuation")

    # Seeds: one-step obligations.
    value_of: dict[int, int] = {}
    parent: dict[int, tuple[int | None, str]] = {}
    queue: deque[int] = deque()
    for index, run in enumerate(runs):
        for pid in PIDS:
            s1 = state1(run.spec, pid)
            forced = one_step_value(s1)
            if forced is None:
                continue
            reason = (
                f"one-step: p{pid} received {format_state1(s1)} "
                f"(n-f equal values) and must decide {forced} immediately"
            )
            if index in value_of:
                if value_of[index] != forced:
                    return _certificate(runs, value_of, parent, index, forced, reason)
                continue
            value_of[index] = forced
            parent[index] = (None, reason)
            queue.append(index)

    # Propagate.
    while queue:
        current = queue.popleft()
        value = value_of[current]
        for neighbour, reason in adjacency.get(current, ()):  # noqa: B905
            if neighbour in value_of:
                if value_of[neighbour] != value:
                    return _certificate(
                        runs, value_of, parent, neighbour, value, reason, via=current
                    )
                continue
            value_of[neighbour] = value
            parent[neighbour] = (current, reason)
            queue.append(neighbour)

    raise ReproError(
        "no contradiction found — the Theorem 1 propagation space is too small"
    )


def _trace(
    runs: list[Run],
    value_of: dict[int, int],
    parent: dict[int, tuple[int | None, str]],
    index: int,
) -> list[ChainLink]:
    links: list[ChainLink] = []
    cursor: int | None = index
    while cursor is not None:
        origin, reason = parent[cursor]
        links.append(ChainLink(runs[cursor], value_of[cursor], reason))
        cursor = origin
    links.reverse()
    return links


def _certificate(
    runs: list[Run],
    value_of: dict[int, int],
    parent: dict[int, tuple[int | None, str]],
    conflict: int,
    incoming_value: int,
    reason: str,
    via: int | None = None,
) -> Certificate:
    existing_chain = _trace(runs, value_of, parent, conflict)
    if via is not None:
        incoming_chain = _trace(runs, value_of, parent, via)
    else:
        incoming_chain = []
    incoming_chain.append(ChainLink(runs[conflict], incoming_value, reason))
    if value_of[conflict] == 0:
        chain_zero, chain_one = existing_chain, incoming_chain
    else:
        chain_zero, chain_one = incoming_chain, existing_chain
    return Certificate(
        chain_zero=chain_zero, chain_one=chain_one, conflict_run=runs[conflict]
    )
