"""Property checker for concrete decision rules in the lower-bound model.

Given a :class:`~repro.core.lowerbound.rules.DecisionRule`, the checker
sweeps the (rule-realizable) stable run space and reports, with witnesses:

* **one-step failures** — round-1 states with ``n - f`` equal values where
  the rule keeps waiting or decides late/wrong (Definition 1);
* **zero-degradation failures** — stable runs in which some process reaches
  the end of round 2 undecided (Definition 3);
* **safety violations** — runs whose decisions disagree, or decide a value
  nobody proposed.

Theorem 1 guarantees that every rule fails at least one category; the test
suite checks that each of the three reference rules fails *exactly* the
expected one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.lowerbound.model import (
    F,
    N,
    PIDS,
    RunSpec,
    format_state1,
    hear_options,
    state1,
    state2,
)
from repro.core.lowerbound.rules import DecisionRule

__all__ = ["RuleReport", "check_rule"]


@dataclass
class RuleReport:
    """Verdict for one decision rule."""

    rule: str
    one_step_failures: list[str] = field(default_factory=list)
    zero_degradation_failures: list[str] = field(default_factory=list)
    safety_violations: list[str] = field(default_factory=list)
    runs_checked: int = 0

    @property
    def is_one_step(self) -> bool:
        return not self.one_step_failures

    @property
    def is_zero_degrading(self) -> bool:
        return not self.zero_degradation_failures

    @property
    def is_safe(self) -> bool:
        return not self.safety_violations

    def summary(self) -> str:
        def mark(ok: bool) -> str:
            return "yes" if ok else "NO"

        return (
            f"{self.rule}: one-step={mark(self.is_one_step)} "
            f"zero-degrading={mark(self.is_zero_degrading)} "
            f"safe={mark(self.is_safe)} ({self.runs_checked} runs)"
        )


def _one_step_states() -> list[tuple]:
    """Every round-1 state with n - f equal values (one missing entry)."""
    states = []
    for missing in PIDS:
        for v in (0, 1):
            states.append(tuple(None if q == missing else v for q in PIDS))
    return states


def check_rule(
    rule: DecisionRule,
    max_violations: int = 5,
    restrict_hears: list[tuple[int, ...]] | None = None,
) -> RuleReport:
    """Sweep the stable run space and grade ``rule`` on the three properties."""
    report = RuleReport(rule=rule.name)

    # --- one-step obligations are state-level; check them directly.
    for s1 in _one_step_states():
        values = {v for v in s1 if v is not None}
        v = values.pop()
        pid = next(q for q in PIDS if s1[q - 1] is not None)
        if not rule.acceptable1(pid, s1):
            report.one_step_failures.append(
                f"p{pid} keeps waiting in state {format_state1(s1)} "
                f"instead of deciding {v} in one step"
            )
        else:
            decided = rule.decide1(pid, s1)
            if decided != v:
                report.one_step_failures.append(
                    f"p{pid} in state {format_state1(s1)} decides {decided!r}, "
                    f"one-step requires {v}"
                )

    # --- zero-degradation and safety need the run sweep.
    per_pid = []
    for pid in PIDS:
        options = hear_options(pid)
        if restrict_hears is not None:
            options = [o for o in options if o in restrict_hears] or options
        per_pid.append(options)

    for initial in itertools.product((0, 1), repeat=N):
        for hears1 in itertools.product(*per_pid):
            for hears2 in itertools.product(*per_pid):
                spec = RunSpec(tuple(initial), hears1, hears2)
                states1 = {pid: state1(spec, pid) for pid in PIDS}
                # The run is realizable for this rule only if every process
                # is willing to end its rounds on the chosen hear-sets (a
                # process that already decided in round 1 no longer waits).
                realizable = True
                for pid in PIDS:
                    decided_r1 = (
                        rule.acceptable1(pid, states1[pid])
                        and rule.decide1(pid, states1[pid]) is not None
                    )
                    if not rule.acceptable1(pid, states1[pid]):
                        realizable = False
                        break
                    if not decided_r1 and not rule.acceptable2(pid, state2(spec, pid)):
                        realizable = False
                        break
                if not realizable:
                    continue
                report.runs_checked += 1

                decisions: dict[int, int] = {}
                undecided: list[int] = []
                for pid in PIDS:
                    d = rule.decide1(pid, states1[pid])
                    if d is None:
                        d = rule.decide2(pid, state2(spec, pid))
                    if d is None:
                        undecided.append(pid)
                    else:
                        decisions[pid] = d

                if undecided and len(report.zero_degradation_failures) < max_violations:
                    report.zero_degradation_failures.append(
                        f"{_describe(spec)}: p{undecided} undecided after round 2 "
                        f"of a stable run"
                    )
                distinct = set(decisions.values())
                if len(distinct) > 1 and len(report.safety_violations) < max_violations:
                    report.safety_violations.append(
                        f"{_describe(spec)}: agreement violated — decisions {decisions}"
                    )
                bad = distinct - set(initial)
                if bad and len(report.safety_violations) < max_violations:
                    report.safety_violations.append(
                        f"{_describe(spec)}: validity violated — decided {bad}, "
                        f"proposed {set(initial)}"
                    )
    return report


def _describe(spec: RunSpec) -> str:
    initial = "".join(str(v) for v in spec.initial)
    hears = ";".join(
        f"p{pid}<{''.join(map(str, spec.hears1[pid - 1]))}|"
        f"{''.join(map(str, spec.hears2[pid - 1]))}>"
        for pid in PIDS
    )
    return f"run(init={initial} {hears})"
