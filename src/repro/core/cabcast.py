"""C-Abcast (Algorithm 3 of the paper): consensus-based atomic broadcast.

C-Abcast reduces atomic broadcast to a sequence of consensus instances, like
Chandra-Toueg, but feeds the consensus module proposals obtained from a WAB
ordering oracle so that — absent collisions — **all processes propose the
same value** and a one-step consensus module decides in a single
communication step:

* no collisions: 1δ (WAB) + 1δ (one-step consensus)          = **2δ**
* collisions, stable run: 1δ (WAB) + 2δ (zero-degradation)   = **3δ**

Round ``k`` at process ``i`` (lines 5-15): w-broadcast ``estimate_i`` in WAB
instance ``k``; wait for the *first* w-delivered message of instance ``k``;
propose its content to consensus instance ``k``; a-deliver the decided batch
(minus what is already delivered) in a deterministic order; then either start
round ``k+1`` immediately, or — when the estimate is empty — sit idle until
either a local a-broadcast or the first w-delivery of instance ``k+1`` wakes
the process.  Every non-first w-delivery of any instance merges into the
local estimate (lines 16-17), which is what guarantees Validity.

Deviation note: the literal pseudo-code w-broadcasts an initial empty round
before reaching the line-14 idle wait; this implementation starts idle at
``k = 1``, which only removes spurious empty instances and shifts no
behaviour (the idle wake conditions are exactly line 15's).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.abcast_base import AbcastModule, AppMessage
from repro.core.interfaces import ConsensusModule
from repro.oracles.wab import WabOracle
from repro.sim.process import Environment, Scoped, ScopedEnvironment

__all__ = ["CAbcast"]

_IDLE = "idle"
_AWAIT_FIRST = "await_first"
_AWAIT_DECISION = "await_decision"


class CAbcast(AbcastModule):
    """C-Abcast with a pluggable consensus module.

    Parameters
    ----------
    env:
        (Scoped) environment of the hosting process.
    consensus_factory:
        ``factory(scoped_env) -> ConsensusModule``; one instance is created
        per round, exactly the "exchangeable consensus module" of the
        paper's evaluation.
    on_deliver:
        Upcall invoked for every a-delivered message, in delivery order.
    wab_repeats:
        Retransmissions for the WAB oracle (0 = paper-faithful plain UDP).
    """

    def __init__(
        self,
        env: Environment,
        consensus_factory: Callable[[Environment], ConsensusModule],
        on_deliver: Callable[[AppMessage], None] | None = None,
        wab_repeats: int = 0,
    ) -> None:
        super().__init__(env, on_deliver)
        self._consensus_factory = consensus_factory
        self.wab = WabOracle(env, self._w_deliver, repeats=wab_repeats)
        self.round = 1
        self.state = _IDLE
        self.estimate: set[AppMessage] = set()
        self._first_payload: dict[int, frozenset[AppMessage]] = {}
        self._decisions: dict[int, frozenset[AppMessage]] = {}
        self._instances: dict[int, ConsensusModule] = {}
        # Metrics: rounds that decided off the one-step path vs the slow path
        # are distinguished by the consensus modules' own DecisionRecords.
        self.rounds_completed = 0

    # -------------------------------------------------------------- plumbing

    def on_message(self, src: int, msg: Any) -> None:
        if type(msg) is Scoped:
            scope = msg.scope
            if scope and scope[0] == "cons":
                # _instance's dict hit, inlined: nearly every message lands
                # on an already-created consensus instance.
                instance = self._instances.get(scope[1])
                if instance is None:
                    instance = self._instance(scope[1])
                instance.on_message(src, msg.inner)
                return
        self.wab.on_message(src, msg)

    def enable_obs(self, tracer) -> None:
        super().enable_obs(tracer)
        for k, instance in self._instances.items():
            instance.enable_obs(tracer, instance_label=k)

    def _instance(self, k: int) -> ConsensusModule:
        instance = self._instances.get(k)
        if instance is None:
            scoped = ScopedEnvironment(self.env, ("cons", k))
            instance = self._consensus_factory(scoped)
            instance.set_on_decide(lambda value, k=k: self._decided(k, value))
            if self.tracer is not None:
                instance.enable_obs(self.tracer, instance_label=k)
            self._instances[k] = instance
        return instance

    # -------------------------------------------------------- the round loop

    def _submit(self, message: AppMessage) -> None:
        self.estimate.add(message)
        if self.state == _IDLE:
            self._enter_round()

    def _w_deliver(self, instance: int, payload: frozenset, position: int) -> None:
        if position == 0:
            self._first_payload[instance] = payload
            if instance != self.round:
                return  # future round: recorded for line 7's retroactive wait
            if self.state == _AWAIT_FIRST:
                self._propose()
            elif self.state == _IDLE:
                self._enter_round()  # line 15, first wake condition
        else:
            # Lines 16-17: fold every late w-delivery into the estimate.
            fresh = {m for m in payload if m.msg_id not in self._delivered_ids}
            self.estimate |= fresh
            if fresh and self.state == _IDLE:
                self._enter_round()  # line 15, second wake condition

    def _enter_round(self) -> None:
        """Line 6: w-broadcast the estimate and wait for the first delivery.

        An empty estimate is not broadcast when the round's first message has
        already been w-delivered (the wake-up path of line 15): the broadcast
        would carry nothing and the line-7 wait is already satisfied.  This
        keeps the no-collision cost at the paper's ``n² + n`` messages.
        """
        k = self.round
        self.state = _AWAIT_FIRST
        if self.estimate or k not in self._first_payload:
            self.wab.w_broadcast(k, frozenset(self.estimate))
        if k in self._decisions:
            self._drain()
        elif k in self._first_payload:
            self._propose()

    def _propose(self) -> None:
        """Line 8: propose the first w-delivered value of this round."""
        k = self.round
        self.state = _AWAIT_DECISION
        instance = self._instance(k)
        if not instance.proposed and not instance.decided:
            instance.propose(self._first_payload[k])

    def _decided(self, k: int, value: frozenset) -> None:
        self._decisions[k] = value
        if k == self.round:
            self._drain()

    def _drain(self) -> None:
        """Lines 9-15: deliver every consecutively decided round."""
        while self.round in self._decisions:
            batch = self._decisions.pop(self.round)
            self._deliver_batch(batch)
            self.estimate = {
                m for m in self.estimate if m.msg_id not in self._delivered_ids
            }
            self.round += 1
            self.rounds_completed += 1
        k = self.round
        if self.estimate or k in self._first_payload:
            self._enter_round()
        else:
            self.state = _IDLE
