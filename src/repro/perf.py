"""Run-time observability for simulator runs.

The simulator is deterministic, so *what* a run computes never depends on
wall-clock time — but *how fast* it computes it is exactly what the PR-2
hot-path work optimises.  This module turns one finished run into a
:class:`PerfReport`: per-component event counters (kernel, network, nodes,
tracer), throughput (events per wall-second) and the time-dilation factor
(virtual seconds simulated per wall second).

Collection is strictly opt-in.  The default sweep path never imports this
module and never reads the wall clock, so enabling or disabling perf
collection cannot perturb a run's trace, decisions or JSON output.

Entry points
------------
* :func:`collect` — distil a finished run (simulator + stats snapshots)
  into a :class:`PerfReport`;
* :func:`profile_call` — run any callable under :mod:`cProfile` and return
  its result plus the formatted hot-function table;
* ``python -m repro profile <spec args>`` — the CLI front-end
  (:mod:`repro.cli`), which executes one spec with collection enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = ["PERF_SCHEMA", "PerfReport", "collect", "profile_call", "format_perf"]

#: Schema tag written into every serialised perf section.
PERF_SCHEMA = "repro.perf.v1"


@dataclass(frozen=True)
class PerfReport:
    """Observed cost of one run.

    ``components`` maps component name (``"kernel"``, ``"network"``,
    ``"nodes"``, ``"trace"``) to its counter dict; see :func:`collect` for
    the exact keys.  ``profile``, when present, is the formatted
    :mod:`pstats` table of the hottest functions (one string per line).
    """

    wall_seconds: float
    sim_seconds: float
    events_processed: int
    events_per_wall_second: float
    virtual_seconds_per_wall_second: float
    components: dict
    profile: tuple[str, ...] | None = field(default=None)

    # ----------------------------------------------------------- persistence

    def to_dict(self) -> dict:
        data = {
            "schema": PERF_SCHEMA,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "events_processed": self.events_processed,
            "events_per_wall_second": self.events_per_wall_second,
            "virtual_seconds_per_wall_second": self.virtual_seconds_per_wall_second,
            "components": self.components,
        }
        if self.profile is not None:
            data["profile"] = list(self.profile)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PerfReport":
        profile = data.get("profile")
        return cls(
            wall_seconds=data["wall_seconds"],
            sim_seconds=data["sim_seconds"],
            events_processed=data["events_processed"],
            events_per_wall_second=data["events_per_wall_second"],
            virtual_seconds_per_wall_second=data["virtual_seconds_per_wall_second"],
            components=data["components"],
            profile=None if profile is None else tuple(profile),
        )


def collect(
    sim,
    *,
    wall_seconds: float,
    network_stats: Mapping[str, Any] | None = None,
    nodes: Mapping[int, Any] | None = None,
    trace_counts: Mapping[str, int] | None = None,
    parallel: Mapping[str, Any] | None = None,
    profile: tuple[str, ...] | None = None,
) -> PerfReport:
    """Distil a finished run into a :class:`PerfReport`.

    Parameters
    ----------
    sim:
        The :class:`~repro.sim.kernel.Simulator` after :meth:`run` returned.
    wall_seconds:
        Wall-clock duration of the run, measured by the caller around the
        drive loop (this module never reads the clock itself).
    network_stats:
        A :meth:`~repro.sim.network.NetworkStats.snapshot` dict, if the run
        had a network.
    nodes:
        pid -> :class:`~repro.sim.node.Node` mapping, for per-node handler
        counts and CPU-model busy time.
    trace_counts:
        Per-kind record counts from :meth:`~repro.sim.trace.Tracer.counts`.
    parallel:
        A :meth:`~repro.sim.parallel.ParallelStats.to_dict` dict for
        conservative-parallel runs: partitions, *actual* workers used,
        window/null-message/lookahead-stall counts and the wall-clock time
        the parent spent blocked on straggler partitions.  (The spec-level
        ``workers`` request lives in the deterministic report sections;
        this component records what execution really did.)
    profile:
        Pre-formatted profiler output from :func:`profile_call`, if any.
    """
    processed = sim.events_processed
    sim_seconds = sim.now
    components: dict[str, dict] = {
        "kernel": {
            "events_processed": processed,
            "events_scheduled": sim.events_scheduled,
            "events_pending": sim.pending(),
            "compactions": sim.compactions,
            # Sorted-cohort drain counters: how many gather cycles ran and
            # how many events they covered (the rest went through per-event
            # pops — shallow-queue fallback or merge-guard executions).
            "drain_batches": getattr(sim, "drain_batches", 0),
            "batched_events": getattr(sim, "batched_events", 0),
        }
    }
    if network_stats is not None:
        network_component = {
            "sent": network_stats.get("sent", 0),
            "delivered": network_stats.get("delivered", 0),
            "dropped": network_stats.get("dropped", 0),
            "bytes_sent": network_stats.get("bytes_sent", 0),
            "by_kind": dict(network_stats.get("by_kind", {})),
        }
        if nodes:
            # Fan-out fast-path counters live on the live NetworkStats
            # object (kept out of snapshot() so report JSON stays stable
            # across send paths); reach it through any registered node.
            live = next(iter(nodes.values())).network.stats
            network_component["fanout_batches"] = getattr(live, "fanout_batches", 0)
            network_component["fanout_messages"] = getattr(live, "fanout_messages", 0)
        components["network"] = network_component
    if nodes is not None:
        components["nodes"] = {
            str(pid): {
                "events_handled": node.events_handled,
                "busy_time": node.busy_time,
                "utilization": node.utilization(),
            }
            for pid, node in sorted(nodes.items())
        }
    if trace_counts is not None:
        components["trace"] = dict(trace_counts)
    if parallel is not None:
        components["parallel"] = dict(parallel)
    safe_wall = wall_seconds if wall_seconds > 0.0 else float("inf")
    return PerfReport(
        wall_seconds=wall_seconds,
        sim_seconds=sim_seconds,
        events_processed=processed,
        events_per_wall_second=processed / safe_wall,
        virtual_seconds_per_wall_second=sim_seconds / safe_wall,
        components=components,
        profile=profile,
    )


def profile_call(
    fn: Callable[..., Any], *args: Any, top: int = 20, **kwargs: Any
) -> tuple[Any, tuple[str, ...]]:
    """Run ``fn(*args, **kwargs)`` under :mod:`cProfile`.

    Returns ``(result, lines)`` where ``lines`` is the :mod:`pstats` table
    of the ``top`` functions by cumulative time.  Note that cProfile's
    tracing overhead inflates wall time severalfold — use the output for
    *ratios* between functions, not absolute speed.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(top)
    lines = tuple(
        line.rstrip() for line in stream.getvalue().splitlines() if line.strip()
    )
    return result, lines


def format_perf(perf: Mapping[str, Any]) -> str:
    """Render a serialised perf section (``PerfReport.to_dict``) for humans."""
    lines: list[str] = []
    wall = perf["wall_seconds"]
    lines.append(
        f"wall     : {wall:.3f} s for {perf['sim_seconds']:.3f} virtual-s "
        f"({perf['virtual_seconds_per_wall_second']:.1f} virtual-s / wall-s)"
    )
    lines.append(
        f"events   : {perf['events_processed']:,} processed "
        f"({perf['events_per_wall_second']:,.0f} events/s)"
    )
    components = perf["components"]
    kernel = components.get("kernel", {})
    if kernel:
        lines.append(
            f"kernel   : {kernel['events_scheduled']:,} scheduled, "
            f"{kernel['events_pending']:,} pending at exit, "
            f"{kernel['compactions']} compaction(s)"
        )
        batched = kernel.get("batched_events", 0)
        if batched:
            batches = kernel.get("drain_batches", 0)
            mean = batched / batches if batches else 0.0
            lines.append(
                f"  drain  : {batched:,} events in {batches:,} sorted "
                f"cohort(s) (mean {mean:,.0f}/batch)"
            )
    network = components.get("network")
    if network is not None:
        lines.append(
            f"network  : {network['sent']:,} sent, {network['delivered']:,} "
            f"delivered, {network['dropped']:,} dropped, "
            f"{network['bytes_sent']:,} bytes on the wire"
        )
        fanout_messages = network.get("fanout_messages", 0)
        if fanout_messages:
            fanout_batches = network.get("fanout_batches", 0)
            lines.append(
                f"  fan-out: {fanout_messages:,} messages in "
                f"{fanout_batches:,} batch(es)"
            )
        by_kind = network.get("by_kind", {})
        if by_kind:
            ranked = sorted(by_kind.items(), key=lambda kv: (-kv[1], kv[0]))
            kinds = ", ".join(f"{kind} {count:,}" for kind, count in ranked)
            lines.append(f"  by kind: {kinds}")
    nodes = components.get("nodes")
    if nodes:
        for pid, counters in nodes.items():
            lines.append(
                f"node p{pid} : {counters['events_handled']:,} handled, "
                f"busy {counters['busy_time']:.3f} s "
                f"({counters['utilization']:.0%} util)"
            )
    parallel = components.get("parallel")
    if parallel:
        lookahead = parallel.get("lookahead")
        lines.append(
            f"parallel : {parallel['partitions']} partition(s) on "
            f"{parallel['workers']} worker(s), {parallel['windows']:,} "
            f"window(s)"
            + (f" of {lookahead:g} s lookahead" if lookahead else "")
        )
        lines.append(
            f"  sync   : {parallel['cross_messages']:,} cross-partition "
            f"message(s), {parallel['null_messages']:,} null message(s), "
            f"{parallel['lookahead_stalls']:,} lookahead stall(s), "
            f"blocked {parallel['blocked_time']:.3f} s on stragglers"
        )
        events = parallel.get("events_by_partition") or []
        if events:
            spread = ", ".join(f"{count:,}" for count in events)
            lines.append(f"  events : per partition {spread}")
    trace = components.get("trace")
    if trace:
        ranked = sorted(trace.items(), key=lambda kv: (-kv[1], kv[0]))
        counts = ", ".join(f"{kind} {count:,}" for kind, count in ranked)
        lines.append(f"trace    : {counts}")
    return "\n".join(lines)
