"""Brasileiro et al.'s one-step consensus (PACT 2001) — related-work baseline.

The original "consensus in one communication step" construction (section 2 of
the paper): a preliminary voting round in front of an arbitrary underlying
consensus module.

Round structure:

1. broadcast ``VOTE(v_i)`` and wait for ``n - f`` votes (``f < n/3``);
2. if ``n - f`` votes carry the same value ``v`` → **decide v** (one step);
3. otherwise propose to the underlying consensus module: the value seen at
   least ``n - 2f`` times if one exists (anyone who decided in step 2 forces
   this), else the own initial value.

Agreement holds because a one-step decision on ``v`` means every process sees
``v`` at least ``n - 2f > f`` times, so *every* process enters the underlying
consensus proposing ``v``, whose own validity then pins the outcome to ``v``.

The drawback the paper's Theorem 1 formalises: from mixed initial
configurations this needs **1 + (steps of the underlying protocol)**
communication steps — three or more even in stable runs, i.e. the protocol is
one-step but *not* zero-degrading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.interfaces import ConsensusModule
from repro.core.values import value_with_count_at_least
from repro.errors import ConfigurationError
from repro.sim.process import Environment, Scoped, ScopedEnvironment

__all__ = ["Vote", "BrasileiroConsensus"]

_UNDERLYING_SCOPE = ("underlying",)


@dataclass(frozen=True)
class Vote:
    """First-round value exchange."""

    value: Any


class BrasileiroConsensus(ConsensusModule):
    """One-step consensus with a pluggable underlying consensus module.

    Parameters
    ----------
    env, on_decide:
        As for every :class:`ConsensusModule`.
    underlying_factory:
        ``factory(scoped_env) -> ConsensusModule`` building the fallback
        protocol (typically :class:`~repro.protocols.paxos.PaxosConsensus`
        or :class:`~repro.core.lconsensus.LConsensus`).
    f:
        Resilience bound, ``f < n/3``.
    """

    def __init__(
        self,
        env: Environment,
        underlying_factory: Callable[[Environment], ConsensusModule],
        f: int | None = None,
        on_decide: Callable[[Any], None] | None = None,
    ) -> None:
        super().__init__(env, on_decide)
        n = env.n
        self.f = (n - 1) // 3 if f is None else f
        if not 0 <= self.f or not 3 * self.f < n:
            raise ConfigurationError(
                f"Brasileiro's protocol requires f < n/3 (got n={n}, f={self.f})"
            )
        self.est: Any = None
        self._votes: dict[int, Any] = {}
        self._phase1_done = False
        self.underlying = underlying_factory(ScopedEnvironment(env, _UNDERLYING_SCOPE))
        self.underlying.set_on_decide(self._on_underlying_decide)

    def enable_obs(self, tracer, instance_label: Any = None) -> None:
        super().enable_obs(tracer, instance_label)
        label = "underlying" if instance_label is None else (instance_label, "underlying")
        self.underlying.enable_obs(tracer, label)

    # --------------------------------------------------------------- protocol

    def _start(self, value: Any) -> None:
        self.est = value
        self._emit_round_start(1, phase="vote")
        self.env.broadcast(Vote(value))
        self._try_phase1()

    def _on_protocol_message(self, src: int, msg: Any) -> None:
        if isinstance(msg, Scoped) and msg.scope == _UNDERLYING_SCOPE:
            self.underlying.on_message(src, msg.inner)
            return
        if not isinstance(msg, Vote):
            return
        self._votes[src] = msg.value
        if self._proposed and not self.decided:
            self._try_phase1()

    def on_timer(self, name: Any) -> None:
        if isinstance(name, Scoped) and name.scope == _UNDERLYING_SCOPE:
            self.underlying.on_timer(name.inner)

    def _try_phase1(self) -> None:
        if self._phase1_done:
            return
        n, f = self.env.n, self.f
        if len(self._votes) < n - f:
            return
        self._phase1_done = True
        unanimous = value_with_count_at_least(self._votes.values(), n - f)
        if unanimous is not None:
            self._decide(unanimous, steps=1)
            return
        fallback = value_with_count_at_least(self._votes.values(), n - 2 * f)
        proposal = fallback if fallback is not None else self.est
        self.underlying.propose(proposal)

    def _on_underlying_decide(self, value: Any) -> None:
        steps = 1
        if self.underlying.decision is not None:
            steps += self.underlying.decision.steps
        self._decide(value, steps=steps)
