"""Chandra & Toueg's ◇S rotating-coordinator consensus (reference [5]).

The classic unreliable-failure-detector consensus the paper builds on: the
CT atomic broadcast it cites reduces to a sequence of these instances, and
the paper's own protocols are best understood as optimised alternatives to
it.  Included as a baseline so the step-count comparisons span the whole
design space the paper discusses.

Round ``r`` (coordinator ``c = r mod n``), four asynchronous phases:

1. every process sends its ``(est, ts)`` to ``c`` — 1 step;
2. ``c`` gathers a majority of estimates, adopts the one with the highest
   timestamp and broadcasts it — 1 step;
3. every process waits for ``c``'s estimate *or* for its detector to suspect
   ``c``; it answers with an ACK (adopting the estimate, ``ts ← r``) or a
   NACK — 1 step;
4. on a majority of ACKs, ``c`` decides and disseminates the decision via
   task T2.

Resilience ``f < n/2``; termination needs only ◇S (we wire the stronger ◇P
views, which is sound).  In a stable run with coordinator p0 the decision
takes 3 communication steps at the coordinator — strictly slower than
L-/P-Consensus's 2, which is the gap the paper's zero-degradation closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.interfaces import ConsensusModule
from repro.errors import ConfigurationError
from repro.fd.base import SuspectView
from repro.sim.process import Environment

__all__ = ["Estimate", "CoordEstimate", "Ack", "ChandraTouegConsensus"]


@dataclass(frozen=True)
class Estimate:
    """Phase 1: process → coordinator."""

    round: int
    est: Any
    ts: int


@dataclass(frozen=True)
class CoordEstimate:
    """Phase 2: coordinator → all."""

    round: int
    est: Any


@dataclass(frozen=True)
class Ack:
    """Phase 3: process → coordinator (positive or negative)."""

    round: int
    positive: bool


class ChandraTouegConsensus(ConsensusModule):
    """One CT-consensus instance at one process."""

    def __init__(
        self,
        env: Environment,
        suspects: SuspectView,
        f: int | None = None,
        on_decide: Callable[[Any], None] | None = None,
    ) -> None:
        super().__init__(env, on_decide)
        n = env.n
        self.f = (n - 1) // 2 if f is None else f
        if not 0 <= self.f or not 2 * self.f < n:
            raise ConfigurationError(
                f"CT consensus requires f < n/2 (got n={n}, f={self.f})"
            )
        self.suspects = suspects
        self.round = 0
        self.est: Any = None
        self.ts = 0
        self._waiting_coord = False
        self._answered: set[int] = set()
        # Coordinator state, per round.
        self._estimates: dict[int, dict[int, Estimate]] = {}
        self._acks: dict[int, dict[int, bool]] = {}
        self._proposals: dict[int, Any] = {}  # rounds we coordinated: r -> value
        # Buffered coordinator estimates for rounds we have not reached.
        self._coord_estimates: dict[int, Any] = {}
        suspects.subscribe(self._on_suspects_change)

    @property
    def majority(self) -> int:
        return self.env.n // 2 + 1

    def _coordinator(self, r: int) -> int:
        peers = sorted(self.env.peers)
        return peers[(r - 1) % len(peers)]

    # --------------------------------------------------------------- protocol

    def _start(self, value: Any) -> None:
        self.est = value
        self._begin_round(1)

    def _begin_round(self, r: int) -> None:
        self.round = r
        self._emit_round_start(r)
        self._waiting_coord = True
        self.env.send(self._coordinator(r), Estimate(r, self.est, self.ts))
        self._maybe_answer()
        self._coordinate()

    def _on_protocol_message(self, src: int, msg: Any) -> None:
        if self.decided:
            return
        if isinstance(msg, Estimate):
            self._estimates.setdefault(msg.round, {})[src] = msg
            self._coordinate()
        elif isinstance(msg, CoordEstimate):
            self._coord_estimates[msg.round] = msg.est
            self._maybe_answer()
        elif isinstance(msg, Ack):
            self._acks.setdefault(msg.round, {})[src] = msg.positive
            self._coordinate()

    def _on_suspects_change(self) -> None:
        if self._proposed and not self.decided:
            self._maybe_answer()

    # ------------------------------------------------------------ participant

    def _maybe_answer(self) -> None:
        """Phase 3: adopt-or-nack once the coordinator speaks or is suspected."""
        r = self.round
        if not self._waiting_coord or r in self._answered:
            return
        coordinator = self._coordinator(r)
        if r in self._coord_estimates:
            self.est = self._coord_estimates[r]
            self.ts = r
            self._answered.add(r)
            self._waiting_coord = False
            self.env.send(coordinator, Ack(r, True))
            self._advance_after_answer(r)
        elif coordinator in self.suspects.suspected():
            self._answered.add(r)
            self._waiting_coord = False
            self.env.send(coordinator, Ack(r, False))
            self._advance_after_answer(r)

    def _advance_after_answer(self, r: int) -> None:
        # CT processes proceed to the next round immediately after answering;
        # decisions arrive via task T2 whenever some coordinator succeeds.
        if not self.decided:
            self._begin_round(r + 1)

    # ------------------------------------------------------------ coordinator

    def _coordinate(self) -> None:
        """Phases 2 and 4, for every round this process coordinates."""
        if self.decided:
            return
        for r in list(self._estimates):
            if self._coordinator(r) != self.env.pid or r in self._proposals:
                continue
            estimates = self._estimates[r]
            if len(estimates) < self.majority:
                continue
            best = max(estimates.values(), key=lambda e: e.ts)
            self._proposals[r] = best.est
            self.env.broadcast(CoordEstimate(r, best.est))
        for r, acks in list(self._acks.items()):
            if self._coordinator(r) != self.env.pid or r not in self._proposals:
                continue
            positives = sum(1 for ok in acks.values() if ok)
            if positives >= self.majority:
                self._decide(self._proposals[r], steps=3 * r)
                return
