"""WABCast — Pedone & Schiper's WAB-based atomic broadcast (baseline).

The paper's second experimental baseline (Figure 2) is the atomic broadcast
of "Solving agreement problems with weak ordering oracles" [19]: atomic
broadcast built *directly* on the spontaneous-order oracle, with no failure
detector at all.  Each abcast round ``k`` runs inner voting rounds ``r``:

1. w-broadcast ``(k, r, est)`` — for ``r = 1`` the estimate is the set of
   pending messages; the WAB oracle's spontaneous order makes the *first*
   w-delivered value the shared candidate;
2. broadcast ``CHECK(k, r, candidate)`` and wait for ``n - f`` checks:
   * ``n - f`` equal values → **a-deliver** that batch (2δ total — one WAB
     step plus one check step);
   * ``≥ n - 2f`` equal values ``v`` → adopt ``v`` (someone may have
     delivered ``v``; since ``n - 2f > f`` the adoption is unambiguous);
   * otherwise adopt the first w-delivered value of the next inner round;
   then start inner round ``r + 1``.

Termination rests *only* on spontaneous order: while collisions persist the
inner rounds keep repeating — this is the ``∞`` entry in Table 1 and the
sharp degradation above ~100 msg/s in Figure 2.  Deciders broadcast a
``WabDecision`` so processes stuck in inner rounds catch up (the original
protocol's decision dissemination).

Requires ``f < n/3``; tolerates any asynchrony but no crash of more than
``f`` processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.abcast_base import AbcastModule, AppMessage
from repro.core.values import value_with_count_at_least
from repro.errors import ConfigurationError
from repro.oracles.wab import WabOracle
from repro.sim.process import Environment

__all__ = ["WabCheck", "WabDecision", "WabCast"]


@dataclass(frozen=True, slots=True)
class WabCheck:
    """Inner-round verification vote."""

    round: int  # abcast round k
    inner: int  # inner voting round r
    value: frozenset


@dataclass(frozen=True, slots=True)
class WabDecision:
    """Decision dissemination for laggards."""

    round: int
    value: frozenset


_IDLE = "idle"
_AWAIT_FIRST = "await_first"
_AWAIT_CHECKS = "await_checks"


class WabCast(AbcastModule):
    """One WABCast endpoint."""

    def __init__(
        self,
        env: Environment,
        f: int | None = None,
        on_deliver: Callable[[AppMessage], None] | None = None,
        wab_repeats: int = 0,
    ) -> None:
        super().__init__(env, on_deliver)
        n = env.n
        self.f = (n - 1) // 3 if f is None else f
        if not 0 <= self.f or not 3 * self.f < n:
            raise ConfigurationError(f"WABCast requires f < n/3 (got n={n}, f={self.f})")
        self.wab = WabOracle(env, self._w_deliver, repeats=wab_repeats)
        self.round = 1
        self.inner = 1
        self.state = _IDLE
        self.estimate: set[AppMessage] = set()
        self._first: dict[tuple[int, int], frozenset] = {}
        self._checks: dict[tuple[int, int], dict[int, frozenset]] = {}
        self._decisions: dict[int, frozenset] = {}
        self.inner_rounds_run = 0  # metric: > rounds_completed ⇒ collisions hit
        self.rounds_completed = 0

    # -------------------------------------------------------------- plumbing

    def on_message(self, src: int, msg: Any) -> None:
        if isinstance(msg, WabCheck):
            self._checks.setdefault((msg.round, msg.inner), {})[src] = msg.value
            if (
                self.state == _AWAIT_CHECKS
                and msg.round == self.round
                and msg.inner == self.inner
            ):
                self._tally()
        elif isinstance(msg, WabDecision):
            if msg.round not in self._decisions:
                self._decisions[msg.round] = msg.value
                self._drain()
        else:
            self.wab.on_message(src, msg)

    # -------------------------------------------------------- the round loop

    def _submit(self, message: AppMessage) -> None:
        self.estimate.add(message)
        if self.state == _IDLE:
            self._start_inner(frozenset(self.estimate))

    def _w_deliver(self, instance: tuple[int, int], payload: frozenset, position: int) -> None:
        if position == 0:
            self._first[instance] = payload
            if instance == (self.round, self.inner):
                if self.state == _AWAIT_FIRST:
                    self._vote(payload)
                elif self.state == _IDLE:
                    # Another process started this abcast round; join it.
                    self._start_inner(frozenset(self.estimate))
        else:
            fresh = {m for m in payload if m.msg_id not in self._delivered_ids}
            self.estimate |= fresh
            if fresh and self.state == _IDLE:
                self._start_inner(frozenset(self.estimate))

    def _start_inner(self, proposal: frozenset) -> None:
        """Stage 1 of an inner round: w-broadcast and await the first value.

        As in C-Abcast, an empty proposal is not broadcast when the round's
        first message is already in (the idle wake-up path) — this keeps the
        no-collision cost at Table 1's ``n² + n`` messages.
        """
        key = (self.round, self.inner)
        self.state = _AWAIT_FIRST
        self.inner_rounds_run += 1
        if self.tracer is not None:
            self.tracer.emit_round_start(
                self.env.now(), self.env.pid, self.inner, self.round, "wab"
            )
        if proposal or key not in self._first:
            self.wab.w_broadcast(key, proposal)
        if self.round in self._decisions:
            self._drain()
        elif key in self._first:
            self._vote(self._first[key])

    def _vote(self, candidate: frozenset) -> None:
        """Stage 2: verify the spontaneous order with an all-to-all check."""
        self.state = _AWAIT_CHECKS
        self.env.broadcast(WabCheck(self.round, self.inner, candidate))
        self._tally()

    def _tally(self) -> None:
        key = (self.round, self.inner)
        received = self._checks.get(key, {})
        n, f = self.env.n, self.f
        if len(received) < n - f:
            return
        unanimous = value_with_count_at_least(received.values(), n - f)
        if unanimous is not None:
            if self.round not in self._decisions:
                self._decisions[self.round] = unanimous
                self.env.broadcast(WabDecision(self.round, unanimous))
            self._drain()
            return
        adopted = value_with_count_at_least(received.values(), n - 2 * f)
        self.inner += 1
        next_key = (self.round, self.inner)
        if adopted is not None:
            proposal = adopted
        else:
            # No safety constraint: follow the oracle if it spoke already.
            proposal = self._first.get(next_key, frozenset(self.estimate))
        self._start_inner(proposal)

    def _drain(self) -> None:
        while self.round in self._decisions:
            batch = self._decisions.pop(self.round)
            self._deliver_batch(batch)
            self.estimate = {
                m for m in self.estimate if m.msg_id not in self._delivered_ids
            }
            self.round += 1
            self.inner = 1
            self.rounds_completed += 1
        if self.estimate:
            self._start_inner(frozenset(self.estimate))
        else:
            self.state = _IDLE
