"""Multi-Paxos atomic broadcast — the paper's primary baseline (Figure 3).

Classic Paxos run as a replicated log, the way the paper benchmarks "Paxos":

* a process a-broadcasts by sending a ``Request`` to the current leader
  (Ω's output) — 1δ;
* the leader assigns the next log instance and phase-2 broadcasts
  ``LogAccept(ballot, instance, batch)`` — 1δ;
* acceptors broadcast ``LogAccepted`` to everyone, so all processes learn a
  chosen instance one step later — 1δ.

Total: **3δ in every stable run**, with ``n² + n + 1`` messages per decision
(1 request + n accepts + n² accepteds) — exactly the Paxos row of Table 1.
The trade against L-/P-Consensus is resilience (``f < n/2``) and a central
coordinator: fewer messages, one more communication step at low load, and a
natural batching advantage at high load (requests arriving while an instance
is in flight share the next instance).

Leader changes run a full phase 1 over the unchosen suffix of the log
(``NewLeaderPrepare``/``NewLeaderPromise``), re-proposing any value that may
have been chosen; gaps are filled with empty batches.  Pending requests are
re-sent to each new leader, and duplicate choices are suppressed at
delivery, so Validity and Integrity survive coordinator crashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.abcast_base import AbcastModule, AppMessage
from repro.errors import ConfigurationError
from repro.fd.base import OmegaView
from repro.sim.process import Environment

__all__ = [
    "Request",
    "LogAccept",
    "LogAccepted",
    "NewLeaderPrepare",
    "NewLeaderPromise",
    "CatchUpRequest",
    "CatchUpReply",
    "MultiPaxosAbcast",
]


@dataclass(frozen=True)
class Request:
    """Client-to-leader relay of one a-broadcast message."""

    message: AppMessage


@dataclass(frozen=True)
class LogAccept:
    """Phase 2a for one log instance."""

    ballot: int
    instance: int
    batch: frozenset


@dataclass(frozen=True)
class LogAccepted:
    """Phase 2b, broadcast to all learners."""

    ballot: int
    instance: int
    batch: frozenset


@dataclass(frozen=True)
class NewLeaderPrepare:
    """Phase 1a over the whole unchosen log suffix."""

    ballot: int
    from_instance: int


@dataclass(frozen=True)
class NewLeaderPromise:
    """Phase 1b: every acceptance at or above ``from_instance``."""

    ballot: int
    accepted: tuple  # tuple of (instance, ballot, batch)


@dataclass(frozen=True)
class CatchUpRequest:
    """A recovered process asks peers for chosen instances it missed."""

    from_instance: int


@dataclass(frozen=True)
class CatchUpReply:
    """Chosen log suffix: tuple of (instance, batch)."""

    entries: tuple


class MultiPaxosAbcast(AbcastModule):
    """One Multi-Paxos endpoint (proposer when leading, always acceptor+learner)."""

    def __init__(
        self,
        env: Environment,
        omega: OmegaView,
        f: int | None = None,
        on_deliver: Callable[[AppMessage], None] | None = None,
        storage=None,
    ) -> None:
        """``storage`` (a :class:`repro.sim.storage.StableStore`) enables the
        crash-recovery regime: acceptor state and delivery progress are
        persisted, and a recovered incarnation catches up on the chosen log
        it missed via ``CatchUpRequest``/``CatchUpReply``."""
        super().__init__(env, on_deliver)
        n = env.n
        self.f = (n - 1) // 2 if f is None else f
        if not 0 <= self.f or not 2 * self.f < n:
            raise ConfigurationError(f"Multi-Paxos requires f < n/2 (got n={n}, f={self.f})")
        self.omega = omega
        self.storage = storage
        self._recovering_incarnation = bool(storage) and storage.get("initialized", False)
        # Acceptor state.  Ballot 0 (owned by the lowest pid) is pre-promised:
        # the initial leader starts in steady state, as in the paper's runs.
        self._promised = 0
        self._accepted: dict[int, tuple[int, frozenset]] = {}
        # Leader state.
        self._leading = False
        self._ballot: int | None = 0 if env.pid == min(env.peers) else None
        self._attempt = 0
        self._next_instance = 1
        self._in_flight: set[int] = set()
        self._backlog: list[AppMessage] = []
        self._promises: dict[int, NewLeaderPromise] = {}
        self._phase1_done = False
        # Learner state.
        self._votes: dict[tuple[int, int], set[int]] = {}
        self._chosen: dict[int, frozenset] = {}
        self._next_deliver = 1
        # Requests this process originated that are not yet delivered.
        self._pending: dict[tuple[int, int], AppMessage] = {}
        if self._recovering_incarnation:
            self._restore()
        omega.subscribe(self._on_omega_change)

    # ----------------------------------------------------------- persistence

    def _restore(self) -> None:
        """Reload the durable acceptor/learner state after a recovery."""
        self._promised = self.storage.get("promised", self._promised)
        self._accepted = dict(self.storage.get("accepted", {}))
        self._attempt = self.storage.get("attempt", 0)
        self._next_deliver = self.storage.get("next_deliver", 1)
        self._delivered_ids = set(self.storage.get("delivered_ids", set()))
        self._next_seq = self.storage.get("next_seq", 0)

    def _persist_acceptor(self) -> None:
        if self.storage is not None:
            self.storage.put("promised", self._promised)
            self.storage.put("accepted", dict(self._accepted))

    def _persist_learner(self) -> None:
        if self.storage is not None:
            self.storage.put("next_deliver", self._next_deliver)
            self.storage.put("delivered_ids", set(self._delivered_ids))

    # ------------------------------------------------------------- lifecycle

    def on_start(self) -> None:
        if self.storage is not None:
            self.storage.put("initialized", True)
        if self._recovering_incarnation:
            # Ask the group for the chosen log suffix we slept through.
            for dst in self.env.peers:
                if dst != self.env.pid:
                    self.env.send(dst, CatchUpRequest(self._next_deliver))
        if self.omega.leader() == self.env.pid:
            # A recovered incarnation must not reuse the pre-promised ballot
            # 0 shortcut: intervening ballots may exist, so run phase 1.
            self._assume_leadership(initial=not self._recovering_incarnation)

    @property
    def quorum(self) -> int:
        return self.env.n - self.f

    # ------------------------------------------------------------ client side

    def _submit(self, message: AppMessage) -> None:
        if self.storage is not None:
            self.storage.put("next_seq", self._next_seq)
        self._pending[message.msg_id] = message
        leader = self.omega.leader()
        if leader == self.env.pid:
            self._leader_enqueue(message)
        elif leader is not None:
            self.env.send(leader, Request(message))

    def _on_omega_change(self) -> None:
        leader = self.omega.leader()
        if leader == self.env.pid:
            self._assume_leadership(initial=False)
            # The new leader's own pending messages re-enter via its backlog
            # (they may have been lost in flight to the crashed coordinator).
            for message in self._pending.values():
                self._leader_enqueue(message)
        else:
            self._leading = False
            if leader is not None:
                # Re-route everything not yet delivered to the new leader.
                for message in self._pending.values():
                    self.env.send(leader, Request(message))

    # ------------------------------------------------------------ leader side

    def _assume_leadership(self, initial: bool) -> None:
        if self._leading:
            return
        self._leading = True
        if initial and self.env.pid == min(self.env.peers):
            # Ballot 0 is pre-promised everywhere: steady state from step one.
            self._phase1_done = True
            return
        self._attempt += 1
        if self.storage is not None:
            self.storage.put("attempt", self._attempt)
        self._ballot = self._attempt * self.env.n + self.env.pid
        self._phase1_done = False
        self._promises = {}
        self.env.broadcast(NewLeaderPrepare(self._ballot, self._next_deliver))

    def _leader_enqueue(self, message: AppMessage) -> None:
        if message.msg_id in self._delivered_ids:
            return
        self._backlog.append(message)
        self._flush_backlog()

    def _flush_backlog(self) -> None:
        """Propose the whole backlog as one instance when the pipe is free.

        One instance in flight at a time: requests arriving meanwhile share
        the next batch, which is what gives Paxos its batching advantage at
        high throughput.
        """
        if not self._leading or not self._phase1_done or self._ballot is None:
            return
        if self._in_flight or not self._backlog:
            return
        batch = frozenset(
            m for m in self._backlog if m.msg_id not in self._delivered_ids
        )
        self._backlog = []
        if not batch:
            return
        instance = self._next_instance
        self._next_instance += 1
        self._in_flight.add(instance)
        self.env.broadcast(LogAccept(self._ballot, instance, batch))

    # ---------------------------------------------------------- message plumbing

    def on_message(self, src: int, msg: Any) -> None:
        if isinstance(msg, Request):
            self._on_request(src, msg)
        elif isinstance(msg, LogAccept):
            self._on_accept(src, msg)
        elif isinstance(msg, LogAccepted):
            self._on_accepted(src, msg)
        elif isinstance(msg, NewLeaderPrepare):
            self._on_prepare(src, msg)
        elif isinstance(msg, NewLeaderPromise):
            self._on_promise(src, msg)
        elif isinstance(msg, CatchUpRequest):
            self._on_catchup_request(src, msg)
        elif isinstance(msg, CatchUpReply):
            self._on_catchup_reply(src, msg)

    def _on_request(self, src: int, msg: Request) -> None:
        if self._leading:
            self._leader_enqueue(msg.message)
        else:
            leader = self.omega.leader()
            if leader is not None and leader != self.env.pid:
                self.env.send(leader, Request(msg.message))  # best-effort forward

    # ------------------------------------------------------------ acceptor side

    def _on_prepare(self, src: int, msg: NewLeaderPrepare) -> None:
        if msg.ballot <= self._promised and not (
            msg.ballot == 0 and self._promised == 0
        ):
            return
        self._promised = msg.ballot
        self._persist_acceptor()
        accepted = tuple(
            (instance, ballot, batch)
            for instance, (ballot, batch) in sorted(self._accepted.items())
            if instance >= msg.from_instance
        )
        self.env.send(src, NewLeaderPromise(msg.ballot, accepted))

    def _on_accept(self, src: int, msg: LogAccept) -> None:
        if msg.ballot < self._promised:
            return
        self._promised = msg.ballot
        self._accepted[msg.instance] = (msg.ballot, msg.batch)
        self._persist_acceptor()
        self.env.broadcast(LogAccepted(msg.ballot, msg.instance, msg.batch))

    # ------------------------------------------------------------ new leader

    def _on_promise(self, src: int, msg: NewLeaderPromise) -> None:
        if not self._leading or self._phase1_done or msg.ballot != self._ballot:
            return
        self._promises[src] = msg
        if len(self._promises) < self.quorum:
            return
        self._phase1_done = True
        # Re-propose the highest-ballot acceptance per instance; fill gaps
        # with empty batches so delivery can progress past them.
        best: dict[int, tuple[int, frozenset]] = {}
        for promise in self._promises.values():
            for instance, ballot, batch in promise.accepted:
                if instance not in best or ballot > best[instance][0]:
                    best[instance] = (ballot, batch)
        top = max(best, default=self._next_deliver - 1)
        self._next_instance = max(self._next_instance, top + 1)
        for instance in range(self._next_deliver, top + 1):
            _, batch = best.get(instance, (0, frozenset()))
            if instance in self._chosen:
                continue
            self._in_flight.add(instance)
            self.env.broadcast(LogAccept(self._ballot, instance, batch))
        self._flush_backlog()

    # ------------------------------------------------------------- learner side

    def _on_accepted(self, src: int, msg: LogAccepted) -> None:
        key = (msg.instance, msg.ballot)
        voters = self._votes.setdefault(key, set())
        voters.add(src)
        if len(voters) < self.quorum or msg.instance in self._chosen:
            return
        self._chosen[msg.instance] = msg.batch
        self._in_flight.discard(msg.instance)
        self._deliver_ready()
        self._flush_backlog()

    def _deliver_ready(self) -> None:
        progressed = False
        while self._next_deliver in self._chosen:
            batch = self._chosen[self._next_deliver]
            delivered = self._deliver_batch(batch)
            for message in delivered:
                self._pending.pop(message.msg_id, None)
            self._next_deliver += 1
            progressed = True
        if progressed:
            self._persist_learner()

    # ------------------------------------------------------------- catch-up

    def _on_catchup_request(self, src: int, msg: CatchUpRequest) -> None:
        entries = tuple(
            (instance, batch)
            for instance, batch in sorted(self._chosen.items())
            if instance >= msg.from_instance
        )
        self.env.send(src, CatchUpReply(entries))

    def _on_catchup_reply(self, src: int, msg: CatchUpReply) -> None:
        for instance, batch in msg.entries:
            self._chosen.setdefault(instance, batch)
            self._in_flight.discard(instance)
        self._deliver_ready()
        self._flush_backlog()
