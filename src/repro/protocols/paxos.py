"""Single-decree Paxos consensus (the paper's primary baseline).

A faithful implementation of the synod protocol from "The Part-Time
Parliament" [13], driven by Ω for proposer election, with every process
playing all three roles:

* **proposer** — the process Ω outputs as leader runs ballots.  Ballot
  numbers are ``attempt * n + pid``, so ballots are unique and every process
  can always out-ballot a competitor.
* **acceptor** — classic promise/accept duties; a rejected request is
  answered with an explicit NACK carrying the highest promised ballot, which
  lets a preempted proposer retry immediately instead of on a timeout.
* **learner** — acceptors broadcast ACCEPTED to everyone, so each process
  learns a chosen value one communication step after acceptance.

With the initial leader's first ballot *pre-promised* (``prepared_ballot=0``
belongs to the lowest pid by convention, mirroring Multi-Paxos steady state),
a stable run decides in two communication steps: ACCEPT + ACCEPTED.  Without
pre-promising, add one round-trip of PREPARE/PROMISE.

Resilience: ``f < n/2`` — the trade shown in Table 1 (Paxos tolerates more
failures than the ``f < n/3`` one-step protocols but can never decide in one
step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.interfaces import ConsensusModule
from repro.errors import ConfigurationError
from repro.fd.base import OmegaView
from repro.sim.process import Environment

__all__ = ["Prepare", "Promise", "Accept", "Accepted", "Nack", "PaxosConsensus"]


@dataclass(frozen=True)
class Prepare:
    """Phase 1a."""

    ballot: int


@dataclass(frozen=True)
class Promise:
    """Phase 1b: promise plus the highest accepted (ballot, value), if any."""

    ballot: int
    accepted_ballot: int | None
    accepted_value: Any


@dataclass(frozen=True)
class Accept:
    """Phase 2a."""

    ballot: int
    value: Any


@dataclass(frozen=True)
class Accepted:
    """Phase 2b, broadcast to all learners."""

    ballot: int
    value: Any


@dataclass(frozen=True)
class Nack:
    """Rejection of a phase 1a/2a message; carries the blocking ballot."""

    ballot: int
    promised: int


class PaxosConsensus(ConsensusModule):
    """One single-decree Paxos instance at one process.

    Parameters
    ----------
    env, on_decide:
        As for every :class:`ConsensusModule`.
    omega:
        Leader-election oracle.  Only the current leader runs ballots.
    f:
        Resilience bound, ``f < n/2`` (defaults to the maximum).
    pre_promised:
        When True (default), ballot 0 — owned by the lowest pid — skips
        phase 1, modelling Multi-Paxos steady state.  Set False to measure
        the full 4-step cold-start protocol.
    """

    announce_decide = False  # learners hear ACCEPTED from everyone already

    def __init__(
        self,
        env: Environment,
        omega: OmegaView,
        f: int | None = None,
        on_decide: Callable[[Any], None] | None = None,
        pre_promised: bool = True,
    ) -> None:
        super().__init__(env, on_decide)
        n = env.n
        self.f = (n - 1) // 2 if f is None else f
        if not 0 <= self.f or not 2 * self.f < n:
            raise ConfigurationError(f"Paxos requires f < n/2 (got n={n}, f={self.f})")
        self.omega = omega
        self.pre_promised = pre_promised
        self.est: Any = None
        # Acceptor state.
        self._promised: int = 0 if pre_promised else -1
        self._accepted_ballot: int | None = None
        self._accepted_value: Any = None
        # Proposer state.
        self._attempt = -1
        self._ballot: int | None = None
        self._promises: dict[int, Promise] = {}
        self._accept_sent = False
        # Learner state: ballot -> set of acceptors that accepted it.
        self._accepted_by: dict[int, set[int]] = {}
        self._accepted_values: dict[int, Any] = {}
        self.steps_taken = 0  # communication steps this process initiated
        omega.subscribe(self._on_omega_change)

    # ------------------------------------------------------------------ quorum

    @property
    def quorum(self) -> int:
        return self.env.n - self.f

    # ---------------------------------------------------------------- proposer

    def _start(self, value: Any) -> None:
        self.est = value
        self._maybe_lead()

    def _on_omega_change(self) -> None:
        if self._proposed and not self.decided:
            self._maybe_lead()

    def _maybe_lead(self) -> None:
        if self.omega.leader() != self.env.pid:
            return
        if self._ballot is not None and not self._accept_sent:
            return  # a ballot of ours is already in flight
        self._new_ballot()

    def _new_ballot(self) -> None:
        self._attempt += 1
        ballot = self._attempt * self.env.n + self.env.pid
        if self.pre_promised and ballot == 0 and self.env.pid == min(self.env.peers):
            # Steady state: ballot 0 is pre-promised at every acceptor, so the
            # initial leader goes straight to phase 2 with its own value.
            self._ballot = 0
            self._promises = {}
            self._accept_sent = True
            self.steps_taken += 1
            self._emit_round_start(0, phase="accept")
            self.env.broadcast(Accept(0, self.est))
            return
        if ballot <= (self._ballot if self._ballot is not None else -1):
            self._attempt = (self._promised // self.env.n) + 1
            ballot = self._attempt * self.env.n + self.env.pid
        self._ballot = ballot
        self._promises = {}
        self._accept_sent = False
        self.steps_taken += 1
        self._emit_round_start(ballot, phase="prepare")
        self.env.broadcast(Prepare(ballot))

    # -------------------------------------------------------------- message IO

    def _on_protocol_message(self, src: int, msg: Any) -> None:
        if isinstance(msg, Prepare):
            self._on_prepare(src, msg)
        elif isinstance(msg, Promise):
            self._on_promise(src, msg)
        elif isinstance(msg, Accept):
            self._on_accept(src, msg)
        elif isinstance(msg, Accepted):
            self._on_accepted(src, msg)
        elif isinstance(msg, Nack):
            self._on_nack(src, msg)

    # ---------------------------------------------------------------- acceptor

    def _on_prepare(self, src: int, msg: Prepare) -> None:
        if msg.ballot > self._promised:
            self._promised = msg.ballot
            self.env.send(
                src, Promise(msg.ballot, self._accepted_ballot, self._accepted_value)
            )
        else:
            self.env.send(src, Nack(msg.ballot, self._promised))

    def _on_accept(self, src: int, msg: Accept) -> None:
        if msg.ballot >= self._promised:
            self._promised = msg.ballot
            self._accepted_ballot = msg.ballot
            self._accepted_value = msg.value
            self.env.broadcast(Accepted(msg.ballot, msg.value))
        else:
            self.env.send(src, Nack(msg.ballot, self._promised))

    # ---------------------------------------------------------------- proposer

    def _on_promise(self, src: int, msg: Promise) -> None:
        if self.decided or msg.ballot != self._ballot or self._accept_sent:
            return
        self._promises[src] = msg
        if len(self._promises) < self.quorum:
            return
        # Pick the value of the highest-ballot acceptance among the quorum,
        # falling back to our own estimate — the Paxos safety rule.
        best: Promise | None = None
        for promise in self._promises.values():
            if promise.accepted_ballot is None:
                continue
            if best is None or promise.accepted_ballot > (best.accepted_ballot or -1):
                best = promise
        value = best.accepted_value if best is not None else self.est
        self._accept_sent = True
        self.steps_taken += 1
        self._emit_round_start(self._ballot, phase="accept")
        self.env.broadcast(Accept(self._ballot, value))

    def _on_nack(self, src: int, msg: Nack) -> None:
        if self.decided or msg.ballot != self._ballot:
            return
        if self.omega.leader() != self.env.pid:
            return
        # Preempted: jump past the blocking ballot and retry.
        self._attempt = msg.promised // self.env.n + 1
        self._ballot = None
        self._new_ballot()

    # ----------------------------------------------------------------- learner

    def _on_accepted(self, src: int, msg: Accepted) -> None:
        if self.decided:
            return
        voters = self._accepted_by.setdefault(msg.ballot, set())
        voters.add(src)
        self._accepted_values[msg.ballot] = msg.value
        if len(voters) >= self.quorum:
            # Steps: with the pre-promised fast path this is 2 (ACCEPT,
            # ACCEPTED); a full ballot adds the PREPARE/PROMISE round trip.
            steps = 2 if msg.ballot == 0 and self.pre_promised else 4
            self._decide(msg.value, steps=steps)
