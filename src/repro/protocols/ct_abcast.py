"""Consensus-sequence atomic broadcast on raw message sets (CT / MR style).

The reduction the paper's C-Abcast refines (sections 2 and 7): a-broadcast
disseminates the message to everyone; processes repeatedly run consensus on
their sets of undelivered messages and a-deliver each decision in a
deterministic order — Chandra & Toueg's reduction, with the one-step
optimisation this becomes Mostefaoui & Raynal's low-cost atomic broadcast
[17].

The crucial difference from C-Abcast is the *absence* of the WAB oracle:
each process proposes its **own** pending buffer.  With a single
uncontended sender the dissemination rides the same FIFO links as the
proposals, buffers coincide, and a one-step module still decides in one
step (the "two message delays in the best case" of [17]).  Under
*concurrent* senders, buffers practically never match ("it is very
unlikely that all buffers have the same length when their content is
proposed" — section 2) and the protocol works in the slower mode, which is
precisely the weakness the WAB oracle fixes.  The ``ct_vs_cabcast``
ablation bench quantifies that gap with the same L-Consensus module under
both reductions.

Any :class:`~repro.core.interfaces.ConsensusModule` factory plugs in, like
in C-Abcast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.abcast_base import AbcastModule, AppMessage
from repro.core.interfaces import ConsensusModule
from repro.sim.process import Environment, Scoped, ScopedEnvironment

__all__ = ["Disseminate", "CtAbcast"]


@dataclass(frozen=True)
class Disseminate:
    """Reliable-broadcast carrier for one a-broadcast message."""

    message: AppMessage


class CtAbcast(AbcastModule):
    """Consensus-sequence atomic broadcast without an ordering oracle."""

    def __init__(
        self,
        env: Environment,
        consensus_factory: Callable[[Environment], ConsensusModule],
        on_deliver: Callable[[AppMessage], None] | None = None,
    ) -> None:
        super().__init__(env, on_deliver)
        self._consensus_factory = consensus_factory
        self.round = 1
        self.estimate: set[AppMessage] = set()
        self._decisions: dict[int, frozenset] = {}
        self._instances: dict[int, ConsensusModule] = {}
        self._proposed_rounds: set[int] = set()
        self.rounds_completed = 0

    # -------------------------------------------------------------- plumbing

    def on_message(self, src: int, msg: Any) -> None:
        if isinstance(msg, Disseminate):
            if msg.message.msg_id not in self._delivered_ids:
                self.estimate.add(msg.message)
                self._maybe_propose()
        elif isinstance(msg, Scoped) and msg.scope and msg.scope[0] == "cons":
            k = msg.scope[1]
            self._instance(k).on_message(src, msg.inner)
            # A foreign proposal for our current round obliges us to join it
            # even with an empty estimate, so the instance can gather n - f.
            if k == self.round:
                self._maybe_propose(force=True)

    def enable_obs(self, tracer) -> None:
        super().enable_obs(tracer)
        for k, instance in self._instances.items():
            instance.enable_obs(tracer, instance_label=k)

    def _instance(self, k: int) -> ConsensusModule:
        instance = self._instances.get(k)
        if instance is None:
            scoped = ScopedEnvironment(self.env, ("cons", k))
            instance = self._consensus_factory(scoped)
            instance.set_on_decide(lambda value, k=k: self._decided(k, value))
            if self.tracer is not None:
                instance.enable_obs(self.tracer, instance_label=k)
            self._instances[k] = instance
        return instance

    # -------------------------------------------------------- the round loop

    def _submit(self, message: AppMessage) -> None:
        self.estimate.add(message)
        for dst in self.env.peers:
            if dst != self.env.pid:
                self.env.send(dst, Disseminate(message))
        self._maybe_propose()

    def _maybe_propose(self, force: bool = False) -> None:
        k = self.round
        if k in self._proposed_rounds or k in self._decisions:
            return
        if not self.estimate and not force:
            return
        self._proposed_rounds.add(k)
        instance = self._instance(k)
        if not instance.proposed and not instance.decided:
            instance.propose(frozenset(self.estimate))

    def _decided(self, k: int, value: frozenset) -> None:
        self._decisions[k] = value
        self._drain()

    def _drain(self) -> None:
        while self.round in self._decisions:
            batch = self._decisions.pop(self.round)
            self._deliver_batch(batch)
            self.estimate = {
                m for m in self.estimate if m.msg_id not in self._delivered_ids
            }
            self.round += 1
            self.rounds_completed += 1
        # If the new round already has foreign traffic, join it even with an
        # empty estimate (same obligation as the force path above).
        self._maybe_propose(force=self.round in self._instances)
