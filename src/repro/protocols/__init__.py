"""Baseline protocols the paper evaluates against (plus extensions)."""

from repro.protocols.brasileiro import BrasileiroConsensus, Vote
from repro.protocols.chandra_toueg import ChandraTouegConsensus
from repro.protocols.ct_abcast import CtAbcast
from repro.protocols.fastpaxos import FastPaxosConsensus
from repro.protocols.lamport_onestep import LamportOneStepConsensus
from repro.protocols.paxos import (
    Accept,
    Accepted,
    Nack,
    PaxosConsensus,
    Prepare,
    Promise,
)
from repro.protocols.paxos_abcast import MultiPaxosAbcast
from repro.protocols.wabcast import WabCast, WabCheck, WabDecision

__all__ = [
    "BrasileiroConsensus",
    "Vote",
    "FastPaxosConsensus",
    "ChandraTouegConsensus",
    "LamportOneStepConsensus",
    "CtAbcast",
    "PaxosConsensus",
    "Prepare",
    "Promise",
    "Accept",
    "Accepted",
    "Nack",
    "MultiPaxosAbcast",
    "WabCast",
    "WabCheck",
    "WabDecision",
]
