"""Fast Paxos (Lamport, MSR-TR-2005-112) — extension baseline.

Sections 2 and 9 of the paper position their contribution against Fast
Paxos: it also has a fast path that commits in fewer message delays when
there are no concurrent proposals, and its conflict-recovery round is driven
by a coordinator.  The paper's conclusion notes that the failure detector
Fast Paxos effectively relies on is *strictly stronger* than Ω — which is
exactly how it escapes Theorem 1.

This module implements the single-instance protocol with every process
playing proposer, acceptor, learner and potential coordinator:

* **fast round 0** (pre-promised): a proposer broadcasts ``FastPropose(v)``;
  each acceptor accepts the *first* round-0 value it receives and broadcasts
  ``FastAccepted``.  A learner decides once a **fast quorum** of ``n - e``
  acceptors accepted the same value — two communication steps.
* **collision recovery**: if the coordinator (Ω's leader) observes ``n - f``
  round-0 votes with no fast-quorum winner, it starts classic round 1:
  ``Phase1a/Phase1b``, picks a value by Lamport's O4 rule (any value accepted
  by at least ``n - e - f`` members of the phase-1 quorum at the highest
  round must be preserved), then ``Phase2a``/``Phase2b`` with the classic
  quorum ``n - f``.

Resilience: ``n > 2e + f`` and ``n > 2f``.  The default ``e = f = (n-1)//3``
matches the paper's one-step regime for easy comparison: with ``n = 4``,
fast and classic quorums are both 3, but the fast path needs **two** steps
where L-/P-Consensus need one — the protocols' proposals originate at the
deciding processes themselves, which is precisely the structural advantage
the paper exploits.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.interfaces import ConsensusModule
from repro.core.values import canonical_key
from repro.errors import ConfigurationError
from repro.fd.base import OmegaView
from repro.sim.process import Environment

__all__ = [
    "FastPropose",
    "FastAccepted",
    "Phase1a",
    "Phase1b",
    "Phase2a",
    "Phase2b",
    "FastPaxosConsensus",
]


@dataclass(frozen=True)
class FastPropose:
    """Proposer → acceptors, fast round 0."""

    value: Any


@dataclass(frozen=True)
class FastAccepted:
    """Acceptor → learners, fast round 0 vote."""

    value: Any


@dataclass(frozen=True)
class Phase1a:
    round: int


@dataclass(frozen=True)
class Phase1b:
    round: int
    vrnd: int  # highest round in which a value was accepted (-1 = none)
    vval: Any


@dataclass(frozen=True)
class Phase2a:
    round: int
    value: Any


@dataclass(frozen=True)
class Phase2b:
    round: int
    value: Any


class FastPaxosConsensus(ConsensusModule):
    """One Fast Paxos instance at one process."""

    announce_decide = False  # learners hear 2b votes from everyone already

    def __init__(
        self,
        env: Environment,
        omega: OmegaView,
        f: int | None = None,
        e: int | None = None,
        on_decide: Callable[[Any], None] | None = None,
        recovery_delay: float = 10e-3,
    ) -> None:
        super().__init__(env, on_decide)
        self.recovery_delay = recovery_delay
        n = env.n
        self.f = (n - 1) // 3 if f is None else f
        self.e = self.f if e is None else e
        if not (n > 2 * self.e + self.f and n > 2 * self.f and self.f >= 0 and self.e >= 0):
            raise ConfigurationError(
                f"Fast Paxos requires n > 2e + f and n > 2f (n={n}, e={self.e}, f={self.f})"
            )
        self.omega = omega
        self.est: Any = None
        # Acceptor state.
        self._rnd = 0  # highest round participated in (round 0 pre-promised)
        self._vrnd = -1
        self._vval: Any = None
        # Learner state.
        self._fast_votes: dict[int, Any] = {}  # acceptor -> round-0 value
        self._classic_votes: dict[int, dict[int, Any]] = {}  # round -> acceptor -> value
        # Coordinator state.
        self._recovering = False
        self._round = 0
        self._phase1b: dict[int, Phase1b] = {}
        self._phase2_sent = False
        omega.subscribe(self._on_omega_change)

    @property
    def fast_quorum(self) -> int:
        return self.env.n - self.e

    @property
    def classic_quorum(self) -> int:
        return self.env.n - self.f

    # --------------------------------------------------------------- proposer

    def _start(self, value: Any) -> None:
        self.est = value
        self._emit_round_start(0, phase="fast")
        self.env.broadcast(FastPropose(value))

    # --------------------------------------------------------------- dispatch

    def _on_protocol_message(self, src: int, msg: Any) -> None:
        if isinstance(msg, FastPropose):
            self._on_fast_propose(src, msg)
        elif isinstance(msg, FastAccepted):
            self._on_fast_accepted(src, msg)
        elif isinstance(msg, Phase1a):
            self._on_phase1a(src, msg)
        elif isinstance(msg, Phase1b):
            self._on_phase1b(src, msg)
        elif isinstance(msg, Phase2a):
            self._on_phase2a(src, msg)
        elif isinstance(msg, Phase2b):
            self._on_phase2b(src, msg)

    # --------------------------------------------------------------- acceptor

    def _on_fast_propose(self, src: int, msg: FastPropose) -> None:
        if self._rnd > 0 or self._vrnd >= 0:
            return  # moved on, or already voted in the fast round
        self._vrnd = 0
        self._vval = msg.value
        self.env.broadcast(FastAccepted(msg.value))

    def _on_phase1a(self, src: int, msg: Phase1a) -> None:
        if msg.round <= self._rnd and not (msg.round == self._rnd == 0):
            return
        self._rnd = msg.round
        self.env.send(src, Phase1b(msg.round, self._vrnd, self._vval))

    def _on_phase2a(self, src: int, msg: Phase2a) -> None:
        if msg.round < self._rnd:
            return
        self._rnd = msg.round
        self._vrnd = msg.round
        self._vval = msg.value
        self.env.broadcast(Phase2b(msg.round, msg.value))

    # ---------------------------------------------------------------- learner

    def _on_fast_accepted(self, src: int, msg: FastAccepted) -> None:
        if self.decided:
            return
        self._fast_votes.setdefault(src, msg.value)
        counts = Counter(self._fast_votes.values())
        for value, count in counts.items():
            if count >= self.fast_quorum:
                self._decide(value, steps=2)
                return
        self._maybe_recover()

    def _on_phase2b(self, src: int, msg: Phase2b) -> None:
        if self.decided:
            return
        votes = self._classic_votes.setdefault(msg.round, {})
        votes[src] = msg.value
        count = sum(1 for v in votes.values() if v == msg.value)
        if count >= self.classic_quorum:
            self._decide(msg.value, steps=4)

    # ------------------------------------------------------------ coordinator

    def _maybe_recover(self) -> None:
        """Start classic round 1 once a collision is evident (or suspected).

        A collision is *evident* when no value can reach the fast quorum even
        with every outstanding vote; it is *suspected* when a classic quorum
        of votes is in but the fast round still hangs — then a recovery timer
        covers the case of crashed acceptors whose votes will never arrive.
        """
        if self._recovering or self.decided:
            return
        if self.omega.leader() != self.env.pid:
            return
        if len(self._fast_votes) < self.classic_quorum:
            return
        counts = Counter(self._fast_votes.values())
        most = counts.most_common(1)[0][1] if counts else 0
        outstanding = self.env.n - len(self._fast_votes)
        if most + outstanding >= self.fast_quorum:
            # The fast round may still succeed; give it a grace period.
            self.env.set_timer("fastpaxos-recover", self.recovery_delay)
            return
        self._recover_now()

    def _recover_now(self) -> None:
        if self._recovering or self.decided or self.omega.leader() != self.env.pid:
            return
        self._recovering = True
        self._round = 1
        self._phase1b = {}
        self._emit_round_start(self._round, phase="phase1")
        self.env.broadcast(Phase1a(self._round))

    def on_timer(self, name: Any) -> None:
        if name == "fastpaxos-recover":
            self._recover_now()

    def _on_omega_change(self) -> None:
        if self._proposed and not self.decided:
            self._maybe_recover()

    def _on_phase1b(self, src: int, msg: Phase1b) -> None:
        if self.decided or self._phase2_sent or msg.round != self._round:
            return
        self._phase1b[src] = msg
        if len(self._phase1b) < self.classic_quorum:
            return
        value = self._pick_value(self._phase1b)
        self._phase2_sent = True
        self._emit_round_start(self._round, phase="phase2")
        self.env.broadcast(Phase2a(self._round, value))

    def _pick_value(self, reports: dict[int, Phase1b]) -> Any:
        """Lamport's O4 value-selection rule.

        Let ``k`` be the highest ``vrnd`` among the quorum's reports and
        ``V`` the values reported at ``k``.  Any value accepted by at least
        ``n - e - f`` quorum members at round ``k`` may already be chosen by
        a fast quorum and must be preserved; otherwise the coordinator is
        free (it picks the most common reported value, then its own).
        """
        k = max(r.vrnd for r in reports.values())
        if k >= 0:
            at_k = [r.vval for r in reports.values() if r.vrnd == k]
            counts = Counter(at_k)
            threshold = self.env.n - self.e - self.f
            forced = [v for v, c in counts.items() if c >= threshold]
            if forced:
                # The quorum intersection bound makes two forced values
                # impossible; sort for determinism anyway.
                return sorted(forced, key=canonical_key)[0]
            if at_k:
                return sorted(
                    counts.items(), key=lambda kv: (-kv[1], canonical_key(kv[0]))
                )[0][0]
        return self.est
