"""Lamport's generalised one-step consensus (section 2 of the paper).

Brasileiro's protocol fixes ``e = f < n/3``; Lamport's lower-bound analysis
(cited as [14]) decouples the two thresholds:

* ``n - e`` equal first-round values decide in one communication step;
* ``n - f`` processes suffice for progress;
* safety needs ``n > 2e + f`` (so a one-step decision leaves an unambiguous
  trace: among any ``n - f`` votes, the decided value appears
  ``n - e - f > e`` times, more than any other value can) and liveness
  ``n > 2f``.

Maximising ``e`` gives Brasileiro's ``e = f < n/3``; maximising ``f`` gives
``e ≤ n/4`` with ``f < n/2`` — a one-step protocol that tolerates a minority
of crashes, at the price of needing near-unanimity for the fast path.

Structure (a strict generalisation of :mod:`repro.protocols.brasileiro`):
every process broadcasts its vote; the fast path fires as soon as ``n - e``
equal votes are in (which may be *after* the process already proposed to the
underlying consensus — both paths are mutually consistent, see the agreement
note below); once ``n - f`` votes are in, the process proposes the value
seen at least ``n - e - f`` times (else its own) to the underlying module.

Agreement: if anyone fast-decides ``v``, then at least ``n - e`` processes
voted ``v``, so every set of ``n - f`` votes contains ``v`` at least
``n - e - f`` times while any other value appears at most ``e < n - e - f``
times — every process therefore proposes ``v``, the underlying consensus
decides ``v``, and late fast decisions also output ``v``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.interfaces import ConsensusModule
from repro.core.values import value_with_count_at_least
from repro.errors import ConfigurationError
from repro.sim.process import Environment, Scoped, ScopedEnvironment

__all__ = ["GeneralVote", "LamportOneStepConsensus"]

_UNDERLYING_SCOPE = ("underlying",)


@dataclass(frozen=True)
class GeneralVote:
    """First-round value exchange."""

    value: Any


class LamportOneStepConsensus(ConsensusModule):
    """One-step consensus with independent fast (e) and crash (f) thresholds.

    Parameters
    ----------
    env, on_decide:
        As for every :class:`ConsensusModule`.
    underlying_factory:
        ``factory(scoped_env) -> ConsensusModule`` building the fallback.
    f:
        Crash threshold, ``f < n/2``.
    e:
        Fast-path threshold, ``e <= f`` and ``n > 2e + f``.  Defaults to the
        largest legal value for the given ``f``.
    """

    def __init__(
        self,
        env: Environment,
        underlying_factory: Callable[[Environment], ConsensusModule],
        f: int | None = None,
        e: int | None = None,
        on_decide: Callable[[Any], None] | None = None,
    ) -> None:
        super().__init__(env, on_decide)
        n = env.n
        self.f = (n - 1) // 2 if f is None else f
        if e is None:
            e = min(self.f, (n - self.f - 1) // 2)
        self.e = e
        if not (0 <= self.e <= self.f and n > 2 * self.e + self.f and n > 2 * self.f):
            raise ConfigurationError(
                f"need 0 <= e <= f, n > 2e + f and n > 2f (n={n}, e={self.e}, f={self.f})"
            )
        self.est: Any = None
        self._votes: dict[int, Any] = {}
        self._proposed_underlying = False
        self.underlying = underlying_factory(ScopedEnvironment(env, _UNDERLYING_SCOPE))
        self.underlying.set_on_decide(self._on_underlying_decide)

    def enable_obs(self, tracer, instance_label: Any = None) -> None:
        super().enable_obs(tracer, instance_label)
        label = "underlying" if instance_label is None else (instance_label, "underlying")
        self.underlying.enable_obs(tracer, label)

    # --------------------------------------------------------------- protocol

    def _start(self, value: Any) -> None:
        self.est = value
        self._emit_round_start(1, phase="vote")
        self.env.broadcast(GeneralVote(value))
        self._evaluate()

    def _on_protocol_message(self, src: int, msg: Any) -> None:
        if isinstance(msg, Scoped) and msg.scope == _UNDERLYING_SCOPE:
            self.underlying.on_message(src, msg.inner)
            return
        if not isinstance(msg, GeneralVote):
            return
        self._votes[src] = msg.value
        if self._proposed and not self.decided:
            self._evaluate()

    def on_timer(self, name: Any) -> None:
        if isinstance(name, Scoped) and name.scope == _UNDERLYING_SCOPE:
            self.underlying.on_timer(name.inner)

    def _evaluate(self) -> None:
        n = self.env.n
        # Fast path: n - e equal votes decide immediately, whenever reached.
        fast = value_with_count_at_least(self._votes.values(), n - self.e)
        if fast is not None:
            self._decide(fast, steps=1)
            return
        # Progress path: with n - f votes in, feed the underlying consensus.
        if not self._proposed_underlying and len(self._votes) >= n - self.f:
            self._proposed_underlying = True
            traced = value_with_count_at_least(
                self._votes.values(), n - self.e - self.f
            )
            self.underlying.propose(traced if traced is not None else self.est)

    def _on_underlying_decide(self, value: Any) -> None:
        steps = 1
        if self.underlying.decision is not None:
            steps += self.underlying.decision.steps
        self._decide(value, steps=steps)
