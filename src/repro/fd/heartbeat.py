"""Heartbeat-based ◇P failure detector (message-passing implementation).

The oracle detectors in :mod:`repro.fd.oracle` are the controlled instrument
for reproducing the paper's stable-run experiments; this module is the
realistic counterpart, implementing ◇P the way the paper's testbed would
have: periodic heartbeats plus per-peer timeouts that grow on every false
suspicion.

In any run that is eventually synchronous (in the simulator: bounded message
delays plus bounded CPU service times), the adaptive timeout eventually
exceeds the true bound, after which the detector satisfies both ◇P
properties:

* *strong completeness* — a crashed process stops sending heartbeats and its
  timeout fires at every correct process, forever;
* *eventual strong accuracy* — each false suspicion increases that peer's
  timeout, so only finitely many mistakes happen per peer.

The module is composition-friendly: attach it under a scope of a
:class:`~repro.sim.process.HostProcess` and wire protocols to its
:class:`~repro.fd.base.SuspectView` (and derived Ω) interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.fd.base import OmegaView, SuspectView, omega_from_suspects
from repro.sim.process import Environment

__all__ = ["Heartbeat", "HeartbeatSuspector"]


@dataclass(frozen=True)
class Heartbeat:
    """I-am-alive beacon; ``seq`` only aids debugging and tests."""

    sender: int
    seq: int


class HeartbeatSuspector(SuspectView):
    """◇P module: broadcast heartbeats, suspect on timeout, adapt on mistakes."""

    HB_TIMER = "heartbeat"

    #: Set by the harness when detailed tracing is on; suspicion changes are
    #: then emitted as per-process ``suspect``/``trust`` records.
    tracer = None

    def __init__(
        self,
        env: Environment,
        period: float = 10e-3,
        initial_timeout: float = 30e-3,
        timeout_increment: float = 10e-3,
    ) -> None:
        if period <= 0 or initial_timeout <= 0 or timeout_increment < 0:
            raise ConfigurationError("heartbeat parameters must be positive")
        if initial_timeout <= period:
            raise ConfigurationError(
                f"initial_timeout ({initial_timeout}) must exceed period ({period})"
            )
        self.env = env
        self.period = period
        self.timeout_increment = timeout_increment
        self._timeouts: dict[int, float] = {
            pid: initial_timeout for pid in env.peers if pid != env.pid
        }
        self._suspected: set[int] = set()
        self._seq = 0
        self._subscribers: list[Callable[[], None]] = []
        self.false_suspicions = 0

    # --------------------------------------------------------------- view API

    def suspected(self) -> frozenset[int]:
        return frozenset(self._suspected)

    def subscribe(self, fn: Callable[[], None]) -> None:
        self._subscribers.append(fn)

    def omega(self) -> OmegaView:
        """Derived Ω: lowest-index non-suspected process."""
        return omega_from_suspects(self, self.env.peers)

    def _notify(self) -> None:
        for fn in list(self._subscribers):
            fn()

    # ----------------------------------------------------------- protocol side

    def on_start(self) -> None:
        self._beat()
        for pid in self._timeouts:
            self._arm_watchdog(pid)

    def on_timer(self, name) -> None:
        if name == self.HB_TIMER:
            self._beat()
        elif isinstance(name, tuple) and name and name[0] == "watchdog":
            self._watchdog_fired(name[1])

    def on_message(self, src: int, msg) -> None:
        if not isinstance(msg, Heartbeat):
            return
        if src == self.env.pid:
            return
        if src in self._suspected:
            # Mistake: the peer was alive all along.  Trust it again and
            # raise its timeout so the same mistake cannot recur forever.
            self._suspected.discard(src)
            self._timeouts[src] += self.timeout_increment
            self.false_suspicions += 1
            if self.tracer is not None:
                self.tracer.emit_trust(self.env.now(), self.env.pid, src)
            self._notify()
        self._arm_watchdog(src)

    # ----------------------------------------------------------------- helpers

    def _beat(self) -> None:
        self._seq += 1
        beat = Heartbeat(self.env.pid, self._seq)
        for dst in self.env.peers:
            if dst != self.env.pid:
                self.env.send(dst, beat)
        self.env.set_timer(self.HB_TIMER, self.period)

    def _arm_watchdog(self, pid: int) -> None:
        self.env.set_timer(("watchdog", pid), self._timeouts[pid])

    def _watchdog_fired(self, pid: int) -> None:
        if pid in self._suspected:
            return
        self._suspected.add(pid)
        if self.tracer is not None:
            self.tracer.emit_suspect(self.env.now(), self.env.pid, pid)
        self._notify()
