"""Oracle (god's-eye) failure detectors with controllable stability.

The paper's experiments consider *stable runs only* (section 8.1): the
failure detector makes no mistakes and its output never changes during a
run.  The oracle detectors make stability a first-class experimental knob:

* With ``detection_delay=0`` and crashes only at time 0, the output is
  constant and correct from the start — exactly a stable run.
* With a positive ``detection_delay`` or mid-run crashes, runs become
  recovery runs (the footnote-1 scenario) and the protocols' degradation can
  be measured — bench A2 does precisely this.
* :class:`ScriptedOmega` / :class:`ScriptedSuspects` replay an arbitrary
  output timeline per process, which is how the tests manufacture the
  unstable, mistaken-detector runs of the correctness proofs.

Unlike the heartbeat detectors in :mod:`repro.fd.heartbeat`, oracles send no
messages; they observe crashes through :meth:`repro.sim.node.Node.crash`
listeners.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.fd.base import OmegaView, SuspectView
from repro.sim.kernel import Simulator

__all__ = [
    "OracleFailureDetector",
    "ScriptedOmega",
    "ScriptedSuspects",
]


class _OracleOmegaView(OmegaView):
    def __init__(self, oracle: "OracleFailureDetector", pid: int) -> None:
        self._oracle = oracle
        self.pid = pid
        self._subscribers: list[Callable[[], None]] = []

    def leader(self) -> int | None:
        return self._oracle.current_leader()

    def subscribe(self, fn: Callable[[], None]) -> None:
        self._subscribers.append(fn)

    def _notify(self) -> None:
        for fn in list(self._subscribers):
            fn()


class _OracleSuspectView(SuspectView):
    def __init__(self, oracle: "OracleFailureDetector", pid: int) -> None:
        self._oracle = oracle
        self.pid = pid
        self._subscribers: list[Callable[[], None]] = []

    def suspected(self) -> frozenset[int]:
        return self._oracle.current_suspects()

    def subscribe(self, fn: Callable[[], None]) -> None:
        self._subscribers.append(fn)

    def _notify(self) -> None:
        for fn in list(self._subscribers):
            fn()


class OracleFailureDetector:
    """Central oracle backing both Ω and ◇P views for a whole cluster.

    When observability is enabled the harness sets :attr:`tracer`; the
    oracle then emits ``suspect``/``trust``/``leader-change`` records with
    ``pid=-1`` (it is a god's-eye observer, not a process).

    Parameters
    ----------
    sim:
        The simulator (used to schedule delayed detections).
    pids:
        All process identifiers in the group.
    detection_delay:
        Seconds between a crash and the oracle reflecting it.  Zero gives a
        perfect detector; crashes at time 0 with zero delay give stable runs.
    initially_crashed:
        Pids already crashed when the run starts; they are reflected in the
        very first output, preserving stability.
    """

    #: Set by the harness when detailed tracing is on (pid=-1 records).
    tracer = None

    def __init__(
        self,
        sim: Simulator,
        pids: Iterable[int],
        detection_delay: float = 0.0,
        initially_crashed: Iterable[int] = (),
    ) -> None:
        if detection_delay < 0:
            raise ConfigurationError("detection_delay must be >= 0")
        self.sim = sim
        self.pids = tuple(sorted(pids))
        self.detection_delay = detection_delay
        self._crashed: set[int] = set(initially_crashed)
        unknown = self._crashed - set(self.pids)
        if unknown:
            raise ConfigurationError(f"initially_crashed contains unknown pids {unknown}")
        self._omega_views: dict[int, _OracleOmegaView] = {}
        self._suspect_views: dict[int, _OracleSuspectView] = {}

    # -------------------------------------------------------------- views

    def omega(self, pid: int) -> OmegaView:
        view = self._omega_views.get(pid)
        if view is None:
            view = _OracleOmegaView(self, pid)
            self._omega_views[pid] = view
        return view

    def suspect(self, pid: int) -> SuspectView:
        view = self._suspect_views.get(pid)
        if view is None:
            view = _OracleSuspectView(self, pid)
            self._suspect_views[pid] = view
        return view

    # -------------------------------------------------------------- output

    def current_leader(self) -> int | None:
        for pid in self.pids:
            if pid not in self._crashed:
                return pid
        return None

    def current_suspects(self) -> frozenset[int]:
        return frozenset(self._crashed)

    @property
    def crashed(self) -> frozenset[int]:
        """Pids currently reflected as crashed (for metrics gauges)."""
        return frozenset(self._crashed)

    # -------------------------------------------------------------- wiring

    def watch(self, nodes) -> None:
        """Attach crash/recovery listeners to every node in ``nodes``."""
        node_iter = nodes.values() if hasattr(nodes, "values") else nodes
        for node in node_iter:
            node.add_crash_listener(self.on_crash)
            if hasattr(node, "add_recover_listener"):
                node.add_recover_listener(self.on_recovery)

    def on_crash(self, pid: int) -> None:
        """Record a crash; the views change after ``detection_delay``."""
        if pid in self._crashed:
            return
        if self.detection_delay == 0:
            self._apply_crash(pid)
        else:
            self.sim.schedule(self.detection_delay, self._apply_crash, pid)

    def _apply_crash(self, pid: int) -> None:
        if pid in self._crashed:
            return
        old_leader = self.current_leader()
        self._crashed.add(pid)
        if self.tracer is not None:
            self.tracer.emit_suspect(self.sim.now, -1, pid)
        for view in self._suspect_views.values():
            view._notify()
        if self.current_leader() != old_leader:
            if self.tracer is not None:
                self.tracer.emit_leader_change(self.sim.now, -1, self.current_leader())
            for view in self._omega_views.values():
                view._notify()

    def on_recovery(self, pid: int) -> None:
        """Stop suspecting a recovered process (crash-recovery model)."""
        if pid not in self._crashed:
            return
        old_leader = self.current_leader()
        self._crashed.discard(pid)
        if self.tracer is not None:
            self.tracer.emit_trust(self.sim.now, -1, pid)
        for view in self._suspect_views.values():
            view._notify()
        if self.current_leader() != old_leader:
            if self.tracer is not None:
                self.tracer.emit_leader_change(self.sim.now, -1, self.current_leader())
            for view in self._omega_views.values():
                view._notify()


class _ScriptBase:
    """Shared machinery for scripted views: replay (time, output) steps."""

    def __init__(self, sim: Simulator, steps: Sequence[tuple[float, object]]) -> None:
        if not steps:
            raise ConfigurationError("a scripted detector needs at least one step")
        times = [t for t, _ in steps]
        if times != sorted(times):
            raise ConfigurationError("script steps must be time-ordered")
        if times[0] > 0:
            raise ConfigurationError("the first script step must be at time 0")
        self.sim = sim
        self._output = steps[0][1]
        self._subscribers: list[Callable[[], None]] = []
        for time, output in steps[1:]:
            sim.schedule_at(time, self._switch, output)

    def subscribe(self, fn: Callable[[], None]) -> None:
        self._subscribers.append(fn)

    def _switch(self, output) -> None:
        if output == self._output:
            return
        self._output = output
        for fn in list(self._subscribers):
            fn()


class ScriptedOmega(_ScriptBase, OmegaView):
    """An Ω view that replays a fixed ``[(time, leader_pid), ...]`` timeline."""

    def leader(self) -> int | None:
        return self._output  # type: ignore[return-value]


class ScriptedSuspects(_ScriptBase, SuspectView):
    """A ◇P view that replays a fixed ``[(time, frozenset_of_pids), ...]`` timeline."""

    def __init__(self, sim: Simulator, steps: Sequence[tuple[float, Iterable[int]]]) -> None:
        frozen = [(t, frozenset(s)) for t, s in steps]
        super().__init__(sim, frozen)

    def suspected(self) -> frozenset[int]:
        return self._output  # type: ignore[return-value]
