"""Failure-detector abstractions (section 3.2 of the paper).

Two detector classes are used by the paper's protocols:

* **Ω** (:class:`OmegaView`) — outputs a single trusted leader process and
  eventually outputs the same correct process forever.  It is the weakest
  failure detector that solves consensus and is what L-Consensus queries.
* **◇P** (:class:`SuspectView`) — outputs a set of suspected processes,
  eventually exactly the crashed ones (strong completeness + eventual strong
  accuracy).  P-Consensus builds its deterministic quorum from it.

Protocols never poll on a timer loop: views push a change notification, so
L-Consensus can re-evaluate its line-3 wait (``ld ≠ Ω.leader``) and
P-Consensus its line-6 wait the instant the detector output changes.
"""

from __future__ import annotations

import abc
from typing import Callable

__all__ = ["OmegaView", "SuspectView", "omega_from_suspects"]


class OmegaView(abc.ABC):
    """Local Ω module of one process."""

    @abc.abstractmethod
    def leader(self) -> int | None:
        """Current leader output (None only before the first output)."""

    @abc.abstractmethod
    def subscribe(self, fn: Callable[[], None]) -> None:
        """Register ``fn`` to be called whenever the output changes."""


class SuspectView(abc.ABC):
    """Local ◇P module of one process."""

    @abc.abstractmethod
    def suspected(self) -> frozenset[int]:
        """Current set of suspected pids."""

    @abc.abstractmethod
    def subscribe(self, fn: Callable[[], None]) -> None:
        """Register ``fn`` to be called whenever the output changes."""

    def trusts(self, pid: int) -> bool:
        """Convenience: True iff ``pid`` is not currently suspected."""
        return pid not in self.suspected()


class _DerivedOmega(OmegaView):
    """Ω extracted from a ◇P view: the lowest-index non-suspected process.

    This is the textbook ◇P → Ω reduction (the paper cites Chu's Ω ⪯ ◇W
    reduction); if ◇P eventually outputs exactly the crashed processes, the
    lowest non-suspected index is eventually the same correct process at
    every process.
    """

    def __init__(self, suspect_view: SuspectView, peers: tuple[int, ...]) -> None:
        self._view = suspect_view
        self._peers = tuple(sorted(peers))
        self._subscribers: list[Callable[[], None]] = []
        self._last = self.leader()
        suspect_view.subscribe(self._recheck)

    def leader(self) -> int | None:
        suspected = self._view.suspected()
        for pid in self._peers:
            if pid not in suspected:
                return pid
        return None

    def subscribe(self, fn: Callable[[], None]) -> None:
        self._subscribers.append(fn)

    def _recheck(self) -> None:
        current = self.leader()
        if current != self._last:
            self._last = current
            for fn in list(self._subscribers):
                fn()


def omega_from_suspects(suspect_view: SuspectView, peers) -> OmegaView:
    """Build an Ω view from a ◇P view (lowest non-suspected index)."""
    return _DerivedOmega(suspect_view, tuple(peers))
