"""Failure detectors: Ω and ◇P, oracle-backed and heartbeat-based."""

from repro.fd.base import OmegaView, SuspectView, omega_from_suspects
from repro.fd.heartbeat import Heartbeat, HeartbeatSuspector
from repro.fd.oracle import OracleFailureDetector, ScriptedOmega, ScriptedSuspects

__all__ = [
    "OmegaView",
    "SuspectView",
    "omega_from_suspects",
    "Heartbeat",
    "HeartbeatSuspector",
    "OracleFailureDetector",
    "ScriptedOmega",
    "ScriptedSuspects",
]
