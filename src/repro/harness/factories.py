"""Ready-made module factories for the runners.

These wire each protocol to the oracle failure detector exactly as the
paper's evaluation does (stable runs, detector output constant and correct).
Every factory has the signature expected by
:func:`repro.harness.consensus_runner.run_consensus` /
:func:`repro.harness.abcast_runner.run_abcast`:
``factory(pid, env, oracle, host) -> module``.

The names mirror the paper's protocol line-up: ``L``/``P`` are the
contribution, ``paxos``/``wabcast`` the baselines of Figures 2-3,
``brasileiro``/``fast_paxos`` the related-work protocols of section 2.
"""

from __future__ import annotations

from repro.core import LConsensus, PConsensus
from repro.core.cabcast import CAbcast
from repro.protocols import (
    BrasileiroConsensus,
    ChandraTouegConsensus,
    CtAbcast,
    FastPaxosConsensus,
    MultiPaxosAbcast,
    PaxosConsensus,
    WabCast,
)

__all__ = [
    "l_consensus",
    "p_consensus",
    "paxos_consensus",
    "fast_paxos_consensus",
    "brasileiro_consensus",
    "cabcast_l",
    "cabcast_p",
    "wabcast",
    "multipaxos_abcast",
    "chandra_toueg_consensus",
    "ct_abcast_l",
    "CONSENSUS_FACTORIES",
    "ABCAST_FACTORIES",
]


# ------------------------------------------------------------------ consensus

def l_consensus(pid, env, oracle, host):
    """L-Consensus on the oracle Ω view (algorithm 1)."""
    return LConsensus(env, oracle.omega(pid))


def p_consensus(pid, env, oracle, host):
    """P-Consensus on the oracle ◇P view (algorithm 2)."""
    return PConsensus(env, oracle.suspect(pid))


def paxos_consensus(pid, env, oracle, host):
    """Single-decree Paxos with a pre-promised initial leader."""
    return PaxosConsensus(env, oracle.omega(pid))


def fast_paxos_consensus(pid, env, oracle, host):
    """Fast Paxos with e = f = (n-1)//3."""
    return FastPaxosConsensus(env, oracle.omega(pid))


def brasileiro_consensus(pid, env, oracle, host):
    """Brasileiro's one-step consensus over an underlying Paxos."""
    return BrasileiroConsensus(
        env, lambda senv: PaxosConsensus(senv, oracle.omega(pid))
    )


def chandra_toueg_consensus(pid, env, oracle, host):
    """Chandra & Toueg's rotating-coordinator consensus on the oracle ◇S/◇P view."""
    return ChandraTouegConsensus(env, oracle.suspect(pid))


# --------------------------------------------------------------------- abcast

def cabcast_l(pid, env, oracle, host):
    """C-Abcast with L-Consensus — the paper's "L-Consensus" curve."""
    return CAbcast(env, lambda senv: LConsensus(senv, oracle.omega(pid)))


def cabcast_p(pid, env, oracle, host):
    """C-Abcast with P-Consensus — the paper's "P-Consensus" curve."""
    return CAbcast(env, lambda senv: PConsensus(senv, oracle.suspect(pid)))


def wabcast(pid, env, oracle, host):
    """Pedone & Schiper's WABCast — the Figure-2 baseline."""
    return WabCast(env)


def multipaxos_abcast(pid, env, oracle, host):
    """Multi-Paxos replicated log — the Figure-3 baseline."""
    return MultiPaxosAbcast(env, oracle.omega(pid))


def ct_abcast_l(pid, env, oracle, host):
    """Consensus-sequence abcast (CT/MR style, no WAB) over L-Consensus."""
    return CtAbcast(env, lambda senv: LConsensus(senv, oracle.omega(pid)))


# The canonical name→factory mapping lives in repro.harness.registry; the
# dicts below are derived views kept for the original import surface.  They
# are materialised lazily (PEP 562) because the registry imports this module.

def __getattr__(name: str):
    if name in ("CONSENSUS_FACTORIES", "ABCAST_FACTORIES"):
        from repro.harness.registry import ABCAST, CONSENSUS, protocols_of_kind

        kind = CONSENSUS if name == "CONSENSUS_FACTORIES" else ABCAST
        mapping = {
            key: info.factory for key, info in protocols_of_kind(kind).items()
        }
        globals()[name] = mapping
        return mapping
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
