"""Atomic-broadcast runner: build a cluster, drive a send schedule, check order.

Used by the integration tests and by the Figure-2/Figure-3 latency benches.
Each node hosts one abcast module (C-Abcast, WABCast or Multi-Paxos — the
factory decides) plus, optionally, an oracle failure detector.  The send
schedule is injected through node timers so a-broadcast work is accounted by
the node CPU model like any other event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.core.abcast_base import AbcastModule, AppMessage
from repro.errors import ConfigurationError, ReproError, TerminationFailure
from repro.fd.oracle import OracleFailureDetector
from repro.harness.checkers import (
    check_abcast_validity,
    check_uniform_total_order,
)
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.process import Environment, HostProcess

__all__ = ["AbcastHost", "AbcastRunResult", "run_abcast"]

ABCAST_SCOPE = ("abc",)


class AbcastHost(HostProcess):
    """Node-level process hosting one atomic-broadcast module."""

    #: Flipped on by the obs runtime: the hosted module then emits the
    #: detailed propose/round trace kinds through ``tracer``.
    obs_detail = False

    def __init__(
        self,
        module_factory: Callable[["AbcastHost", Environment], AbcastModule],
        schedule: Sequence[tuple[float, Any]] = (),
        tracer=None,
    ) -> None:
        super().__init__()
        self._module_factory = module_factory
        self._schedule = sorted(schedule, key=lambda item: item[0])
        self._next_send = 0
        self.tracer = tracer
        self.abcast: AbcastModule | None = None
        self.delivery_times: dict[tuple[int, int], float] = {}

    def on_start(self) -> None:
        self.abcast = self.attach(
            ABCAST_SCOPE, lambda env: self._module_factory(self, env)
        )
        self.abcast.set_on_deliver(self._record_delivery)
        if self.obs_detail and self.tracer is not None:
            self.abcast.enable_obs(self.tracer)
        self.abcast.on_start()
        self._arm_next_send()

    def _arm_next_send(self) -> None:
        if self._next_send < len(self._schedule):
            at, _ = self._schedule[self._next_send]
            self.env.set_timer("send", max(0.0, at - self.env.now()))

    def on_plain_timer(self, name: Any) -> None:
        if name != "send":
            return
        _, payload = self._schedule[self._next_send]
        self._next_send += 1
        message = self.abcast.a_broadcast(payload)
        if self.tracer is not None:
            self.tracer.emit_broadcast(self.env.now(), self.env.pid, message.msg_id)
        self._arm_next_send()

    def _record_delivery(self, message: AppMessage) -> None:
        self.delivery_times[message.msg_id] = self.env.now()
        if self.tracer is not None:
            self.tracer.emit_deliver(self.env.now(), self.env.pid, message.msg_id)


@dataclass
class AbcastRunResult:
    """Outcome of one simulated atomic-broadcast run."""

    deliveries: dict[int, list[tuple[int, int]]]
    delivery_times: dict[int, dict[tuple[int, int], float]]
    broadcast: dict[tuple[int, int], AppMessage]
    crashed: list[int]
    duration: float
    network_stats: dict
    sim: Simulator = field(repr=False)
    hosts: dict[int, AbcastHost] = field(repr=False)
    nodes: dict[int, Node] = field(repr=False, default_factory=dict)

    def latency_of(self, msg_id: tuple[int, int]) -> float | None:
        """Paper's latency: shortest delay between a-broadcast and a-deliver."""
        message = self.broadcast[msg_id]
        times = [
            table[msg_id] for table in self.delivery_times.values() if msg_id in table
        ]
        if not times:
            return None
        return min(times) - message.sent_at

    def latencies(self, window: tuple[float, float] | None = None) -> list[float]:
        """Latencies of all delivered messages (optionally sent inside ``window``)."""
        out = []
        for msg_id, message in self.broadcast.items():
            if window is not None and not window[0] <= message.sent_at <= window[1]:
                continue
            latency = self.latency_of(msg_id)
            if latency is not None:
                out.append(latency)
        return out

    @property
    def delivered_count(self) -> int:
        return max((len(seq) for seq in self.deliveries.values()), default=0)


def run_abcast(
    make_module,
    n: int | None = None,
    schedules: Mapping[int, Sequence[tuple[float, Any]]] | None = None,
    seed: int = 0,
    delay=None,
    datagram_delay=None,
    datagram_loss: float = 0.0,
    service_time: float = 0.0,
    crash_at: Mapping[int, float] | None = None,
    initially_crashed: tuple[int, ...] = (),
    detection_delay: float = 0.0,
    horizon: float = 60.0,
    check: bool = True,
    require_all_delivered: bool = True,
    use_oracle_fd: bool = True,
    max_events: int | None = None,
    capacity=None,
    batch: bool = True,
    nemesis=None,
    tracer=None,
    obs=None,
    ctx=None,
) -> AbcastRunResult:
    """Run one atomic-broadcast scenario on a fresh simulated cluster.

    The canonical description of a run is an
    :class:`repro.engine.spec.AbcastRunSpec`: ``run_abcast(spec)`` resolves
    the protocol through the registry and generates the workload from the
    spec.  The original kwarg signature is kept as a compatible shim:
    ``make_module(pid, env, oracle, host)`` builds the per-process module
    (a registry name string also works) and ``schedules`` maps
    pid -> [(send_time, payload), ...].
    """
    from repro.engine.spec import AbcastRunSpec  # local: engine sits above us

    if isinstance(make_module, AbcastRunSpec):
        from repro.engine.runner import run_abcast_spec

        return run_abcast_spec(make_module, tracer=tracer, obs=obs, ctx=ctx)
    if isinstance(make_module, str):
        from repro.harness.registry import ABCAST, get_protocol

        make_module = get_protocol(make_module, kind=ABCAST).factory
    if n is None or schedules is None:
        raise ConfigurationError("run_abcast needs n and schedules (or a RunSpec)")
    if n < 2:
        raise ConfigurationError("atomic broadcast needs at least two processes")
    from repro.engine.context import RunContext  # local: engine sits above us

    ctx = RunContext.resolve(ctx, tracer, obs)
    tracer, obs = ctx.tracer, ctx.obs
    pids = list(range(n))
    sim = Simulator(seed=seed, batch=batch)
    network = Network(
        sim,
        delay=delay,
        datagram_delay=datagram_delay,
        datagram_loss=datagram_loss,
        capacity=capacity,
    )
    oracle = (
        OracleFailureDetector(
            sim, pids, detection_delay=detection_delay, initially_crashed=initially_crashed
        )
        if use_oracle_fd
        else None
    )

    hosts: dict[int, AbcastHost] = {}
    nodes: dict[int, Node] = {}
    for pid in pids:
        host = AbcastHost(
            module_factory=lambda h, env, pid=pid: make_module(pid, env, oracle, h),
            schedule=schedules.get(pid, ()),
            tracer=tracer,
        )
        if obs is not None and obs.detail:
            host.obs_detail = True
        hosts[pid] = host
        nodes[pid] = Node(sim, network, pid, pids, host, service_time=service_time)

    if oracle is not None:
        oracle.watch(nodes)
    if obs is not None:
        obs.install(sim, network=network, oracle=oracle)

    for pid in initially_crashed:
        nodes[pid].crash()
    for pid, node in nodes.items():
        if pid not in initially_crashed:
            node.start()
    for pid, at in (crash_at or {}).items():
        nodes[pid].crash_at(at)

    if nemesis:
        from repro.nemesis.inject import NemesisRuntime  # local: sits above us

        NemesisRuntime(
            nemesis, sim=sim, network=network, nodes=nodes, oracle=oracle, tracer=tracer
        ).install()

    sim.run(until=horizon, max_events=max_events)

    deliveries = {
        pid: host.abcast.delivered_ids for pid, host in hosts.items() if host.abcast
    }
    broadcast: dict[tuple[int, int], AppMessage] = {}
    for host in hosts.values():
        if host.abcast is None:
            continue
        for message in host.abcast.broadcast_log:
            broadcast[message.msg_id] = message
    crashed = [pid for pid, node in nodes.items() if node.crashed]

    if check:
        try:
            check_uniform_total_order(deliveries)
            check_abcast_validity(broadcast, deliveries)
            if require_all_delivered:
                alive = [pid for pid in pids if pid not in crashed]
                expected = {
                    mid
                    for mid, msg in broadcast.items()
                    if msg.origin not in crashed  # crashed senders' msgs may be lost
                }
                for pid in alive:
                    missing = expected - set(deliveries[pid])
                    if missing:
                        raise TerminationFailure(
                            f"p{pid} never a-delivered {sorted(missing)[:5]} "
                            f"({len(missing)} missing) within {horizon}s"
                        )
        except ReproError as err:
            if obs is not None:
                obs.attach_failure(err)
            raise

    return AbcastRunResult(
        deliveries=deliveries,
        delivery_times={pid: host.delivery_times for pid, host in hosts.items()},
        broadcast=broadcast,
        crashed=crashed,
        duration=sim.now,
        network_stats=network.stats.snapshot(),
        sim=sim,
        hosts=hosts,
        nodes=nodes,
    )
