"""Single-instance consensus runner: build a cluster, run one instance, check it.

This is the workhorse behind most protocol tests and the step-count/message
benchmarks (Table 1, ablations A1/A2).  It assembles a simulated cluster,
wires the requested failure-detector flavour, runs one consensus instance to
quiescence and returns a :class:`ConsensusRunResult` that has already been
validated against Agreement and Validity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.interfaces import ConsensusModule, DecisionRecord
from repro.errors import ConfigurationError, ReproError, TerminationFailure
from repro.fd.heartbeat import HeartbeatSuspector
from repro.fd.base import omega_from_suspects
from repro.fd.oracle import OracleFailureDetector
from repro.harness.checkers import check_consensus_agreement, check_consensus_validity
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.process import Environment, HostProcess

__all__ = ["ConsensusRunResult", "ConsensusHost", "run_consensus", "CONSENSUS_SCOPE"]

CONSENSUS_SCOPE = ("cons",)
FD_SCOPE = ("fd",)


class ConsensusHost(HostProcess):
    """A node-level process hosting one consensus module (plus, optionally,
    a heartbeat failure detector sharing the same node)."""

    #: Flipped on by the obs runtime: the hosted module (and any heartbeat
    #: detector) then emits the detailed trace kinds through ``tracer``.
    obs_detail = False

    def __init__(
        self,
        module_factory: Callable[["ConsensusHost", Environment], ConsensusModule],
        proposal: Any,
        propose_at: float = 0.0,
        fd_factory: Callable[[Environment], Any] | None = None,
        tracer=None,
    ) -> None:
        super().__init__()
        self._module_factory = module_factory
        self._fd_factory = fd_factory
        self.proposal = proposal
        self.propose_at = propose_at
        self.tracer = tracer
        self.consensus: ConsensusModule | None = None
        self.fd_module: Any = None
        self.decision_value: Any = None
        self.decided_at: float | None = None

    def on_start(self) -> None:
        if self._fd_factory is not None:
            self.fd_module = self.attach(FD_SCOPE, self._fd_factory)
            if self.obs_detail and self.tracer is not None:
                self.fd_module.tracer = self.tracer
            self.fd_module.on_start()
        self.consensus = self.attach(
            CONSENSUS_SCOPE, lambda env: self._module_factory(self, env)
        )
        self.consensus.set_on_decide(self._record_decision)
        if self.obs_detail and self.tracer is not None:
            self.consensus.enable_obs(self.tracer)
        if self.propose_at <= 0.0:
            self.consensus.propose(self.proposal)
        else:
            self.env.set_timer("propose", self.propose_at)

    def on_plain_timer(self, name: Any) -> None:
        if name == "propose" and not self.consensus.proposed:
            self.consensus.propose(self.proposal)

    def _record_decision(self, value: Any) -> None:
        self.decision_value = value
        self.decided_at = self.env.now()
        if self.tracer is not None:
            record = self.consensus.decision
            self.tracer.emit_decide(
                self.env.now(), self.env.pid, value, record.steps, record.via
            )


@dataclass
class ConsensusRunResult:
    """Outcome of one simulated consensus instance."""

    proposals: dict[int, Any]
    decisions: dict[int, Any]
    records: dict[int, DecisionRecord]
    crashed: list[int]
    duration: float
    network_stats: dict
    sim: Simulator = field(repr=False)
    nodes: dict[int, Node] = field(repr=False)

    @property
    def min_steps(self) -> int:
        """Communication steps of the earliest in-round decision."""
        in_round = [r.steps for r in self.records.values() if r.via == "round"]
        if not in_round:
            raise TerminationFailure("no process decided inside the round structure")
        return min(in_round)

    @property
    def messages_sent(self) -> int:
        return self.network_stats["sent"]

    def steps_of(self, pid: int) -> int:
        return self.records[pid].steps


def run_consensus(
    make_module,
    proposals: Mapping[int, Any] | None = None,
    seed: int = 0,
    delay=None,
    crash_at: Mapping[int, float] | None = None,
    initially_crashed: tuple[int, ...] = (),
    detection_delay: float = 0.0,
    fd_factory: Callable[[int, Environment], Any] | None = None,
    propose_at: Mapping[int, float] | None = None,
    horizon: float = 60.0,
    check: bool = True,
    require_all_alive_decide: bool = True,
    service_time: float = 0.0,
    batch: bool = True,
    nemesis=None,
    tracer=None,
    obs=None,
    ctx=None,
) -> ConsensusRunResult:
    """Run one consensus instance on a fresh simulated cluster.

    The canonical description of a run is an
    :class:`repro.engine.spec.ConsensusRunSpec`: ``run_consensus(spec)``
    resolves the protocol through the registry.  The original kwarg
    signature is kept as a compatible shim: ``make_module(pid, env, oracle,
    host)`` builds the protocol module for each process (a registry name
    string also works); ``oracle`` is the shared
    :class:`OracleFailureDetector` (None when ``fd_factory`` supplies a
    message-based detector instead — in that case the factory's module is
    attached under the host's FD scope and the consensus factory can pull
    views off ``host.fd_module``).
    """
    from repro.engine.spec import ConsensusRunSpec  # local: engine sits above us

    if isinstance(make_module, ConsensusRunSpec):
        from repro.engine.runner import run_consensus_spec

        return run_consensus_spec(make_module, tracer=tracer, obs=obs, ctx=ctx)
    if isinstance(make_module, str):
        from repro.harness.registry import CONSENSUS, get_protocol

        make_module = get_protocol(make_module, kind=CONSENSUS).factory
    if proposals is None:
        raise ConfigurationError("run_consensus needs proposals (or a RunSpec)")
    pids = sorted(proposals)
    if len(pids) < 2:
        raise ConfigurationError("consensus needs at least two processes")
    from repro.engine.context import RunContext  # local: engine sits above us

    ctx = RunContext.resolve(ctx, tracer, obs)
    tracer, obs = ctx.tracer, ctx.obs
    sim = Simulator(seed=seed, batch=batch)
    network = Network(sim, delay=delay)
    oracle: OracleFailureDetector | None = None
    if fd_factory is None:
        oracle = OracleFailureDetector(
            sim, pids, detection_delay=detection_delay, initially_crashed=initially_crashed
        )

    hosts: dict[int, ConsensusHost] = {}
    nodes: dict[int, Node] = {}
    for pid in pids:
        host = ConsensusHost(
            module_factory=(
                lambda h, env, pid=pid: make_module(pid, env, oracle, h)
            ),
            proposal=proposals[pid],
            propose_at=(propose_at or {}).get(pid, 0.0),
            fd_factory=(lambda env, pid=pid: fd_factory(pid, env)) if fd_factory else None,
            tracer=tracer,
        )
        if obs is not None and obs.detail:
            host.obs_detail = True
        hosts[pid] = host
        nodes[pid] = Node(sim, network, pid, pids, host, service_time=service_time)

    if oracle is not None:
        oracle.watch(nodes)
    if obs is not None:
        obs.install(sim, network=network, oracle=oracle)

    for pid in initially_crashed:
        nodes[pid].crash()
    for pid, node in nodes.items():
        if pid not in initially_crashed:
            node.start()
    for pid, at in (crash_at or {}).items():
        nodes[pid].crash_at(at)

    if nemesis:
        from repro.nemesis.inject import NemesisRuntime  # local: sits above us

        NemesisRuntime(
            nemesis, sim=sim, network=network, nodes=nodes, oracle=oracle, tracer=tracer
        ).install()

    sim.run(until=horizon)

    decisions = {
        pid: host.decision_value
        for pid, host in hosts.items()
        if host.consensus is not None and host.consensus.decided
    }
    records = {
        pid: host.consensus.decision
        for pid, host in hosts.items()
        if host.consensus is not None and host.consensus.decided
    }
    crashed = [pid for pid, node in nodes.items() if node.crashed]

    if check:
        try:
            alive = [pid for pid in pids if pid not in crashed]
            if require_all_alive_decide:
                missing = [pid for pid in alive if pid not in decisions]
                if missing:
                    raise TerminationFailure(
                        f"correct processes {missing} did not decide within {horizon}s"
                    )
            check_consensus_agreement(decisions)
            check_consensus_validity(dict(proposals), decisions)
        except ReproError as err:
            if obs is not None:
                obs.attach_failure(err)
            raise

    return ConsensusRunResult(
        proposals=dict(proposals),
        decisions=decisions,
        records=records,
        crashed=crashed,
        duration=sim.now,
        network_stats=network.stats.snapshot(),
        sim=sim,
        nodes=nodes,
    )


def heartbeat_fd_factory(
    period: float = 5e-3, initial_timeout: float = 20e-3, timeout_increment: float = 10e-3
) -> Callable[[int, Environment], HeartbeatSuspector]:
    """Factory-of-factories for message-based ◇P detectors in the runner."""

    def build(pid: int, env: Environment) -> HeartbeatSuspector:
        return HeartbeatSuspector(
            env,
            period=period,
            initial_timeout=initial_timeout,
            timeout_increment=timeout_increment,
        )

    return build


def derive_omega(host: ConsensusHost):
    """Ω view derived from a host's heartbeat ◇P module."""
    if host.fd_module is None:
        raise ConfigurationError("host has no attached failure-detector module")
    return omega_from_suspects(host.fd_module, host.env.peers)
