"""Single protocol registry: string key → factory + metadata.

Every entry point that names protocols by string — the CLI, the sweep
engine (:mod:`repro.engine`), the benchmark suite — resolves them here, so
the name→factory mapping exists exactly once.  The legacy
``CONSENSUS_FACTORIES`` / ``ABCAST_FACTORIES`` dicts in
:mod:`repro.harness.factories` are derived views of this registry.

Metadata carried per protocol:

* ``kind`` — :data:`CONSENSUS` or :data:`ABCAST`; the two namespaces share
  one flat registry, so names must be globally unique.
* ``default_n`` — the group size the paper evaluates the protocol at when
  it differs from the experiment-wide default (Multi-Paxos runs at n = 3 in
  Figure 3 while the one-step protocols run at n = 4).
* ``description`` — one-line label for ``--help`` and reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.harness.factories import (
    brasileiro_consensus,
    cabcast_l,
    cabcast_p,
    chandra_toueg_consensus,
    ct_abcast_l,
    fast_paxos_consensus,
    l_consensus,
    multipaxos_abcast,
    p_consensus,
    paxos_consensus,
    wabcast,
)

__all__ = [
    "CONSENSUS",
    "ABCAST",
    "ProtocolInfo",
    "PROTOCOLS",
    "get_protocol",
    "protocols_of_kind",
    "protocol_names",
    "name_of",
]

CONSENSUS = "consensus"
ABCAST = "abcast"


@dataclass(frozen=True)
class ProtocolInfo:
    """One registered protocol: its factory plus evaluation metadata."""

    name: str
    kind: str  # CONSENSUS or ABCAST
    factory: Callable[..., Any] = field(repr=False)
    default_n: int | None = None  # None → use the caller's group size
    description: str = ""


def _build() -> dict[str, ProtocolInfo]:
    entries = [
        # -------------------------------------------------------- consensus
        ProtocolInfo(
            "l-consensus", CONSENSUS, l_consensus,
            description="L-Consensus on Ω (algorithm 1, the paper's contribution)",
        ),
        ProtocolInfo(
            "p-consensus", CONSENSUS, p_consensus,
            description="P-Consensus on ◇P (algorithm 2, the paper's contribution)",
        ),
        ProtocolInfo(
            "paxos", CONSENSUS, paxos_consensus,
            description="single-decree Paxos with a pre-promised initial leader",
        ),
        ProtocolInfo(
            "chandra-toueg", CONSENSUS, chandra_toueg_consensus,
            description="Chandra & Toueg rotating-coordinator consensus",
        ),
        ProtocolInfo(
            "fast-paxos", CONSENSUS, fast_paxos_consensus,
            description="Fast Paxos with e = f = (n-1)//3",
        ),
        ProtocolInfo(
            "brasileiro", CONSENSUS, brasileiro_consensus,
            description="Brasileiro one-step consensus over an underlying Paxos",
        ),
        # ----------------------------------------------------------- abcast
        ProtocolInfo(
            "cabcast-l", ABCAST, cabcast_l,
            description="C-Abcast over L-Consensus (the paper's L-Consensus curve)",
        ),
        ProtocolInfo(
            "cabcast-p", ABCAST, cabcast_p,
            description="C-Abcast over P-Consensus (the paper's P-Consensus curve)",
        ),
        ProtocolInfo(
            "wabcast", ABCAST, wabcast,
            description="Pedone & Schiper WABCast (Figure-2 baseline)",
        ),
        ProtocolInfo(
            "multipaxos", ABCAST, multipaxos_abcast,
            default_n=3,
            description="Multi-Paxos replicated log (Figure-3 baseline, n = 3)",
        ),
        ProtocolInfo(
            "ct-abcast", ABCAST, ct_abcast_l,
            description="consensus-sequence abcast (CT/MR style) over L-Consensus",
        ),
    ]
    registry: dict[str, ProtocolInfo] = {}
    for info in entries:
        if info.name in registry:  # pragma: no cover - registry construction bug
            raise ConfigurationError(f"duplicate protocol name {info.name!r}")
        registry[info.name] = info
    return registry


PROTOCOLS: dict[str, ProtocolInfo] = _build()


def get_protocol(name: str, kind: str | None = None) -> ProtocolInfo:
    """Look up a protocol by name, optionally constrained to one ``kind``."""
    info = PROTOCOLS.get(name)
    if info is None or (kind is not None and info.kind != kind):
        choices = ", ".join(sorted(protocol_names(kind)))
        wanted = f"{kind} protocol" if kind else "protocol"
        raise ConfigurationError(f"unknown {wanted} {name!r}; choices: {choices}")
    return info


def protocols_of_kind(kind: str) -> dict[str, ProtocolInfo]:
    """All registered protocols of one kind, keyed by name."""
    return {name: info for name, info in PROTOCOLS.items() if info.kind == kind}


def protocol_names(kind: str | None = None) -> list[str]:
    """Sorted protocol names, optionally restricted to one kind."""
    return sorted(
        name for name, info in PROTOCOLS.items() if kind is None or info.kind == kind
    )


def name_of(factory: Callable[..., Any]) -> str | None:
    """Reverse lookup: registry name of a factory, or None if unregistered."""
    for name, info in PROTOCOLS.items():
        if info.factory is factory:
            return name
    return None
