"""Safety checkers for consensus and atomic broadcast runs.

Every harness run is validated against the formal properties of section 3 of
the paper.  The checkers raise the corresponding
:mod:`repro.errors` exception; fault-injection tests deliberately break
protocols to prove the checkers detect violations (i.e. the green test suite
is evidence about the protocols, not about vacuous checks).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping, Sequence

from repro.errors import (
    AgreementViolation,
    IntegrityViolation,
    TotalOrderViolation,
    ValidityViolation,
)

__all__ = [
    "check_consensus_agreement",
    "check_consensus_validity",
    "check_uniform_total_order",
    "check_abcast_integrity",
    "check_abcast_validity",
]


def check_consensus_agreement(decisions: Mapping[int, Any]) -> None:
    """Consensus Agreement: no two processes decide differently."""
    seen: dict[Any, int] = {}
    for pid, value in decisions.items():
        for other_value, other_pid in seen.items():
            if value != other_value:
                raise AgreementViolation(
                    f"p{pid} decided {value!r} but p{other_pid} decided {other_value!r}"
                )
        seen.setdefault(value, pid)


def check_consensus_validity(
    proposals: Mapping[int, Any], decisions: Mapping[int, Any]
) -> None:
    """Consensus Validity: every decided value was proposed by some process."""
    proposed = set(proposals.values())
    for pid, value in decisions.items():
        if value not in proposed:
            raise ValidityViolation(
                f"p{pid} decided {value!r}, which no process proposed ({proposed!r})"
            )


def check_abcast_integrity(deliveries: Mapping[int, Sequence[Hashable]]) -> None:
    """Abcast Integrity (first half): no process a-delivers a message twice."""
    for pid, sequence in deliveries.items():
        seen: set[Hashable] = set()
        for item in sequence:
            if item in seen:
                raise IntegrityViolation(f"p{pid} a-delivered {item!r} twice")
            seen.add(item)


def check_abcast_validity(
    broadcast: Iterable[Hashable], deliveries: Mapping[int, Sequence[Hashable]]
) -> None:
    """Abcast Integrity (second half): only broadcast messages are delivered."""
    legal = set(broadcast)
    for pid, sequence in deliveries.items():
        for item in sequence:
            if item not in legal:
                raise ValidityViolation(
                    f"p{pid} a-delivered {item!r}, which was never a-broadcast"
                )


def check_uniform_total_order(deliveries: Mapping[int, Sequence[Hashable]]) -> None:
    """Abcast Total Order: all delivery sequences are prefix-compatible.

    Prefix compatibility is the standard operational formulation: for any two
    processes, one's delivery sequence is a prefix of the other's (crashed or
    lagging processes may be behind, but never *diverge*).  Combined with
    Agreement it yields the paper's Total Order property.
    """
    check_abcast_integrity(deliveries)
    sequences = sorted(deliveries.items(), key=lambda kv: len(kv[1]))
    for (pid_a, shorter), (pid_b, longer) in zip(sequences, sequences[1:]):
        for index, item in enumerate(shorter):
            if longer[index] != item:
                raise TotalOrderViolation(
                    f"position {index}: p{pid_a} a-delivered {item!r} "
                    f"but p{pid_b} a-delivered {longer[index]!r}"
                )
