"""Safety checkers for consensus and atomic broadcast runs.

Every harness run is validated against the formal properties of section 3 of
the paper.  The checkers raise the corresponding
:mod:`repro.errors` exception; fault-injection tests deliberately break
protocols to prove the checkers detect violations (i.e. the green test suite
is evidence about the protocols, not about vacuous checks).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Mapping, Sequence

from repro.errors import (
    AgreementViolation,
    IntegrityViolation,
    LinearizabilityViolation,
    SerializabilityViolation,
    TotalOrderViolation,
    ValidityViolation,
)

__all__ = [
    "check_consensus_agreement",
    "check_consensus_validity",
    "check_uniform_total_order",
    "check_abcast_integrity",
    "check_abcast_validity",
    "check_rsm_exactly_once",
    "check_rsm_session_order",
    "check_rsm_log_consistent",
    "check_rsm_linearizable",
    "check_cross_shard_serializable",
]


def check_consensus_agreement(decisions: Mapping[int, Any]) -> None:
    """Consensus Agreement: no two processes decide differently."""
    seen: dict[Any, int] = {}
    for pid, value in decisions.items():
        for other_value, other_pid in seen.items():
            if value != other_value:
                raise AgreementViolation(
                    f"p{pid} decided {value!r} but p{other_pid} decided {other_value!r}"
                )
        seen.setdefault(value, pid)


def check_consensus_validity(
    proposals: Mapping[int, Any], decisions: Mapping[int, Any]
) -> None:
    """Consensus Validity: every decided value was proposed by some process."""
    proposed = set(proposals.values())
    for pid, value in decisions.items():
        if value not in proposed:
            raise ValidityViolation(
                f"p{pid} decided {value!r}, which no process proposed ({proposed!r})"
            )


def check_abcast_integrity(deliveries: Mapping[int, Sequence[Hashable]]) -> None:
    """Abcast Integrity (first half): no process a-delivers a message twice."""
    for pid, sequence in deliveries.items():
        seen: set[Hashable] = set()
        for item in sequence:
            if item in seen:
                raise IntegrityViolation(f"p{pid} a-delivered {item!r} twice")
            seen.add(item)


def check_abcast_validity(
    broadcast: Iterable[Hashable], deliveries: Mapping[int, Sequence[Hashable]]
) -> None:
    """Abcast Integrity (second half): only broadcast messages are delivered."""
    legal = set(broadcast)
    for pid, sequence in deliveries.items():
        for item in sequence:
            if item not in legal:
                raise ValidityViolation(
                    f"p{pid} a-delivered {item!r}, which was never a-broadcast"
                )


def check_uniform_total_order(deliveries: Mapping[int, Sequence[Hashable]]) -> None:
    """Abcast Total Order: all delivery sequences are prefix-compatible.

    Prefix compatibility is the standard operational formulation: for any two
    processes, one's delivery sequence is a prefix of the other's (crashed or
    lagging processes may be behind, but never *diverge*).  Combined with
    Agreement it yields the paper's Total Order property.
    """
    check_abcast_integrity(deliveries)
    sequences = sorted(deliveries.items(), key=lambda kv: len(kv[1]))
    for (pid_a, shorter), (pid_b, longer) in zip(sequences, sequences[1:]):
        for index, item in enumerate(shorter):
            if longer[index] != item:
                raise TotalOrderViolation(
                    f"position {index}: p{pid_a} a-delivered {item!r} "
                    f"but p{pid_b} a-delivered {longer[index]!r}"
                )


# ------------------------------------------------------- RSM service guarantees
#
# The RSM layer (repro.rsm) adds client-visible guarantees on top of abcast's
# total order: exactly-once application of retried requests, per-session
# program order, index-aligned log agreement (replicas may *start* at
# different indices after a snapshot install, but never disagree at a shared
# index), and linearizability of the per-key histories.


def check_rsm_exactly_once(applied: Mapping[int, Sequence[tuple[int, int]]]) -> None:
    """Exactly-once: no replica applies the same (session, seq) twice."""
    for pid, rids in applied.items():
        seen: set[tuple[int, int]] = set()
        for rid in rids:
            if rid in seen:
                raise IntegrityViolation(
                    f"replica {pid} applied request {rid!r} twice"
                )
            seen.add(rid)


def check_rsm_session_order(applied: Mapping[int, Sequence[tuple[int, int]]]) -> None:
    """Session order: each session's seqs appear strictly increasing."""
    for pid, rids in applied.items():
        last: dict[int, int] = {}
        for session, seq in rids:
            prev = last.get(session)
            if prev is not None and seq <= prev:
                raise TotalOrderViolation(
                    f"replica {pid} applied session {session} seq {seq} "
                    f"after seq {prev} (session order violated)"
                )
            last[session] = seq


def check_rsm_log_consistent(
    indexed: Mapping[int, Sequence[tuple[int, tuple[int, int]]]]
) -> None:
    """Log agreement: replicas agree on the request at every shared index.

    ``indexed`` maps pid -> [(apply_index, (session, seq)), ...].  Unlike the
    prefix check for abcast deliveries, logs are aligned by *index*: a
    recovered learner's log starts at its installed snapshot index, so its
    entries compare against the same absolute positions at the survivors.
    """
    canonical: dict[int, tuple[tuple[int, int], int]] = {}
    for pid, entries in indexed.items():
        for index, rid in entries:
            known = canonical.get(index)
            if known is None:
                canonical[index] = (rid, pid)
            elif known[0] != rid:
                raise AgreementViolation(
                    f"log index {index}: replica {pid} applied {rid!r} "
                    f"but replica {known[1]} applied {known[0]!r}"
                )


def check_rsm_linearizable(
    entries: Sequence[tuple[Any, Any]], machine: Any
) -> None:
    """Linearizability of the committed history, validated by replay.

    ``entries`` is the authoritative apply order as (command, observed
    result) pairs; ``machine`` is a *fresh* state machine of the same type
    the replicas ran.  Commands take effect atomically at their apply point,
    which lies between the client's submit and its response, and the total
    order respects per-session submission order (checked separately) — so
    the history is linearizable iff every observed result (including reads
    and CAS outcomes) matches what the deterministic replay produces at the
    same point.
    """
    for position, (command, observed) in enumerate(entries):
        replayed = machine.apply(command)
        if replayed != observed:
            raise LinearizabilityViolation(
                f"apply #{position + 1} ({command!r}): committed result was "
                f"{observed!r} but the linearized replay yields {replayed!r}"
            )


def check_cross_shard_serializable(
    commit_orders: Mapping[int, Sequence[tuple[str, Iterable[str]]]],
) -> None:
    """Serializability of committed cross-shard transactions.

    ``commit_orders`` maps each shard to its committed transactions *in
    per-shard commit order* (the order the shard's state machine applied
    the ``txn-commit`` records, i.e. its linearization), each as ``(txid,
    keys written on that shard)``.  Two transactions conflict on a shard
    when their key sets there intersect; the shard's commit order then fixes
    their relative serial order.  The history is serializable iff the union
    of those precedence edges over all shards is acyclic — a cycle means no
    single serial order of the transactions explains what every shard
    committed.
    """
    successors: dict[str, set[str]] = {}
    for shard in sorted(commit_orders):
        order: list[tuple[str, frozenset[str]]] = []
        for txid, keys in commit_orders[shard]:
            if any(txid == prior for prior, _ in order):
                raise SerializabilityViolation(
                    f"transaction {txid!r} committed twice on shard {shard}"
                )
            order.append((txid, frozenset(keys)))
            successors.setdefault(txid, set())
        for i, (earlier, earlier_keys) in enumerate(order):
            for later, later_keys in order[i + 1 :]:
                if earlier_keys & later_keys:
                    successors[earlier].add(later)

    # Iterative three-colour DFS; a back edge is a precedence cycle.
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {txid: WHITE for txid in successors}
    for root in sorted(successors):
        if colour[root] != WHITE:
            continue
        stack: list[tuple[str, Iterator[str]]] = [(root, iter(sorted(successors[root])))]
        colour[root] = GREY
        path = [root]
        while stack:
            txid, children = stack[-1]
            child = next(children, None)
            if child is None:
                colour[txid] = BLACK
                stack.pop()
                path.pop()
                continue
            if colour[child] == GREY:
                cycle = path[path.index(child) :] + [child]
                raise SerializabilityViolation(
                    "cross-shard commit order is cyclic: " + " -> ".join(cycle)
                )
            if colour[child] == WHITE:
                colour[child] = GREY
                stack.append((child, iter(sorted(successors[child]))))
                path.append(child)
