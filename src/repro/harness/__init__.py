"""Experiment harness: cluster builders, runners and safety checkers."""

from repro.harness.checkers import (
    check_abcast_integrity,
    check_abcast_validity,
    check_consensus_agreement,
    check_consensus_validity,
    check_uniform_total_order,
)
from repro.harness.factories import (
    ABCAST_FACTORIES,
    CONSENSUS_FACTORIES,
    brasileiro_consensus,
    cabcast_l,
    cabcast_p,
    fast_paxos_consensus,
    l_consensus,
    multipaxos_abcast,
    p_consensus,
    paxos_consensus,
    wabcast,
)
from repro.harness.abcast_runner import AbcastHost, AbcastRunResult, run_abcast
from repro.harness.consensus_runner import (
    CONSENSUS_SCOPE,
    ConsensusHost,
    ConsensusRunResult,
    derive_omega,
    heartbeat_fd_factory,
    run_consensus,
)

__all__ = [
    "check_abcast_integrity",
    "check_abcast_validity",
    "check_consensus_agreement",
    "check_consensus_validity",
    "check_uniform_total_order",
    "CONSENSUS_SCOPE",
    "ConsensusHost",
    "ConsensusRunResult",
    "derive_omega",
    "heartbeat_fd_factory",
    "run_consensus",
    "AbcastHost",
    "AbcastRunResult",
    "run_abcast",
    "ABCAST_FACTORIES",
    "CONSENSUS_FACTORIES",
    "brasileiro_consensus",
    "cabcast_l",
    "cabcast_p",
    "fast_paxos_consensus",
    "l_consensus",
    "multipaxos_abcast",
    "p_consensus",
    "paxos_consensus",
    "wabcast",
]
