"""Cross-run metrics warehouse: an append-only JSONL store of run summaries.

Spans and critical paths explain one run; the warehouse remembers them
across runs.  Each entry is one deterministic JSON object — spec
``cache_key``, seed, span summary (with the per-path decision-latency
percentiles), critical-path statistics from :mod:`repro.obs.causal`,
delivery-latency summary and network counters — so re-recording the same
spec and seed appends a byte-identical line.  Nothing in an entry reads the
wall clock: trend comparisons measure the *simulated* system, not the
machine that ran it.

``repro obs record`` appends entries, ``repro obs report`` tabulates a
store, and ``repro obs compare`` (plus the ``benchmarks/check_warehouse.py``
CI gate) flags latency regressions between two entries in the
``check_bench.py`` style: per-metric ratios against a tolerance, exit 1 on
regression.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Iterable

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_TOLERANCE",
    "WAREHOUSE_SCHEMA",
    "Warehouse",
    "build_entry",
    "compare_entries",
    "format_entry",
]

WAREHOUSE_SCHEMA = "repro.warehouse.v1"

#: Maximum tolerated latency growth between compared entries (a fraction:
#: 0.30 means a fresh latency up to 30% above the baseline passes).
DEFAULT_TOLERANCE = 0.30


def build_entry(
    report: Any, records: Iterable[Any], label: str | None = None
) -> dict[str, Any]:
    """Distil one observed run into a warehouse entry.

    ``report`` is the run's :class:`~repro.engine.report.RunReport`;
    ``records`` the trace records of the tracer the run was executed with
    (obs detail must have been on, or the span/causal sections will be
    empty).  The trace is folded through its exported-row form so entries
    match what offline analysis of the JSONL export would compute.
    """
    from repro.obs.causal import causal_summary
    from repro.obs.export import record_rows
    from repro.obs.spans import SpanBuilder

    rows = record_rows(records)
    entry: dict[str, Any] = {
        "schema": WAREHOUSE_SCHEMA,
        "key": report.key,
        "protocol": report.spec.protocol,
        "seed": report.spec.seed,
        "spec": report.spec.to_dict(),
        "offered": report.offered,
        "delivered": report.delivered,
        "latency": report.latency_summary_dict(),
        "spans": SpanBuilder().add_rows(rows).summary(),
        "critical_path": causal_summary(rows),
        "network": {
            name: report.network[name]
            for name in ("sent", "delivered", "dropped", "bytes_sent")
        },
        "sim_time": report.sim_time,
    }
    if report.rsm is not None:
        entry["rsm"] = {
            name: report.rsm[name]
            for name in ("ops_per_s", "latency_ms")
            if name in report.rsm
        }
        parallel = report.rsm.get("parallel")
        if parallel:
            # Deterministic distillation of the conservative-parallel run:
            # the load-balance bound on achievable speedup (total events over
            # the busiest partition's events) plus the sync-traffic counters.
            # All simulated quantities — `repro obs compare` can gate the
            # parallel path without ever reading the wall clock.
            entry["parallel_speedup"] = {
                "partitions": parallel.get("partitions"),
                "workers": parallel.get("workers"),
                "speedup_bound": parallel.get("speedup_bound"),
                "null_messages": parallel.get("null_messages"),
                "cross_messages": parallel.get("cross_messages"),
                "lookahead_stalls": parallel.get("lookahead_stalls"),
            }
    if label is not None:
        entry["label"] = label
    return entry


class Warehouse:
    """One append-only JSONL store of :data:`WAREHOUSE_SCHEMA` entries."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, entry: dict[str, Any]) -> int:
        """Append ``entry`` (canonical JSON, one line); returns its index."""
        if entry.get("schema") != WAREHOUSE_SCHEMA:
            raise ConfigurationError(
                f"refusing to store entry with schema {entry.get('schema')!r}"
            )
        line = json.dumps(
            entry, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        index = len(self.load()) if os.path.exists(self.path) else 0
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.write("\n")
        return index

    def load(self) -> list[dict[str, Any]]:
        """Every entry in append order; validates the per-line schema."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = [line for line in fh.read().splitlines() if line.strip()]
        except FileNotFoundError:
            return []
        entries = []
        for number, line in enumerate(lines):
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{self.path}:{number + 1}: invalid JSON ({exc})"
                ) from None
            if not isinstance(entry, dict) or entry.get("schema") != WAREHOUSE_SCHEMA:
                raise ConfigurationError(
                    f"{self.path}:{number + 1}: not a {WAREHOUSE_SCHEMA} entry"
                )
            entries.append(entry)
        return entries

    def entry(self, index: int) -> dict[str, Any]:
        """One entry by (possibly negative) index."""
        entries = self.load()
        if not entries:
            raise ConfigurationError(f"{self.path}: empty warehouse")
        try:
            return entries[index]
        except IndexError:
            raise ConfigurationError(
                f"{self.path}: no entry {index} (have {len(entries)})"
            ) from None


def _metric(entry: dict[str, Any], path: tuple[str, ...]) -> float | None:
    """Numeric value at a nested key path, or None when absent/non-numeric."""
    node: Any = entry
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    if math.isnan(node):
        return None
    return float(node)


def _comparable_metrics(
    base: dict[str, Any], fresh: dict[str, Any]
) -> list[tuple[str, float, float]]:
    """(name, base, fresh) for every latency metric present in both entries.

    All compared metrics are latencies — larger is worse — which is what
    makes the single-direction tolerance check below correct.
    """
    paths: list[tuple[str, ...]] = [
        ("latency", "mean"),
        ("latency", "p95"),
        ("latency", "p99"),
        ("critical_path", "mean_latency"),
    ]
    span_latency = ("spans", "decision_latency")
    buckets = sorted(
        set((_metric_dict(base, span_latency) or {}))
        & set((_metric_dict(fresh, span_latency) or {}))
    )
    for bucket in buckets:
        for stat in ("mean", "p95"):
            paths.append(("spans", "decision_latency", bucket, stat))
    out = []
    for path in paths:
        base_value = _metric(base, path)
        fresh_value = _metric(fresh, path)
        if base_value is None or fresh_value is None:
            continue
        if base_value <= 0.0 and fresh_value <= 0.0:
            continue
        out.append((".".join(path), base_value, fresh_value))
    return out


def _metric_dict(entry: dict[str, Any], path: tuple[str, ...]) -> dict | None:
    node: Any = entry
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node if isinstance(node, dict) else None


def compare_entries(
    base: dict[str, Any],
    fresh: dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[list[str], list[str]]:
    """Compare two entries; returns ``(report_lines, failures)``.

    Every latency metric present in both entries must not exceed the
    baseline by more than ``tolerance`` (a fraction).  Identical entries —
    e.g. the same spec and seed recorded twice — always pass; a >=
    ``tolerance`` decision-latency regression always fails.
    """
    if not 0.0 <= tolerance < 10.0:
        raise ConfigurationError(f"tolerance {tolerance} outside [0, 10)")
    lines: list[str] = []
    failures: list[str] = []
    if base.get("key") != fresh.get("key"):
        lines.append(
            f"note: comparing different specs "
            f"({str(base.get('key'))[:12]}… vs {str(fresh.get('key'))[:12]}…)"
        )
    elif base.get("seed") != fresh.get("seed"):
        lines.append(
            f"note: same spec, seeds {base.get('seed')} vs {fresh.get('seed')}"
        )
    metrics = _comparable_metrics(base, fresh)
    speedup_path = ("parallel_speedup", "speedup_bound")
    base_speedup = _metric(base, speedup_path)
    fresh_speedup = _metric(fresh, speedup_path)
    has_speedup = base_speedup is not None and fresh_speedup is not None
    if not metrics and not has_speedup:
        failures.append("no comparable latency metrics between the two entries")
        return lines, failures
    for name, base_value, fresh_value in metrics:
        if base_value <= 0.0:
            lines.append(f"  {name}: baseline is 0 — skipped")
            continue
        ratio = fresh_value / base_value
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {fresh_value:.6g}s is {ratio - 1.0:.0%} above "
                f"baseline {base_value:.6g}s (tolerance {tolerance:.0%})"
            )
        lines.append(
            f"  {name}: {fresh_value:.6g} vs {base_value:.6g} ({ratio:.2f}x) {verdict}"
        )
    if has_speedup and base_speedup > 0.0:
        # The speedup bound runs opposite to every latency metric: *smaller*
        # is worse (the partitions got less balanced, capping what parallel
        # execution can ever recover).
        name = ".".join(speedup_path)
        ratio = fresh_speedup / base_speedup
        verdict = "ok"
        if ratio < 1.0 - tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {fresh_speedup:.6g}x is {1.0 - ratio:.0%} below "
                f"baseline {base_speedup:.6g}x (tolerance {tolerance:.0%})"
            )
        lines.append(
            f"  {name}: {fresh_speedup:.6g} vs {base_speedup:.6g} "
            f"({ratio:.2f}x) {verdict}"
        )
    return lines, failures


def format_entry(index: int, entry: dict[str, Any]) -> str:
    """One ``repro obs report`` table row."""
    spans = entry.get("spans") or {}
    path_stats = entry.get("critical_path") or {}
    latency = entry.get("latency") or {}
    mean = latency.get("mean")
    mean_text = f"{mean * 1e3:8.3f}" if isinstance(mean, (int, float)) else "       -"
    causes = path_stats.get("causes") or {}
    cause_text = (
        ",".join(f"{kind}x{count}" for kind, count in sorted(causes.items()))
        or "-"
    )
    label = entry.get("label") or ""
    return (
        f"{index:>3}  {entry.get('protocol', '?'):<12} {entry.get('seed', '?'):>6} "
        f"{spans.get('decided', 0):>4}/{spans.get('instances', 0):<4} "
        f"{spans.get('fast_path', 0):>4} {mean_text} "
        f"{path_stats.get('paths', 0):>3} {cause_text:<16} "
        f"{str(entry.get('key', ''))[:12]} {label}"
    )
