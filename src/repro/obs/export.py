"""Trace export (JSONL, Chrome trace-event) and first-divergence diff.

JSONL format (``repro.trace.v1``): a header object followed by one compact
``[time, pid, kind, data]`` array per record.  All JSON is dumped with
sorted keys and no whitespace variation, so same-seed runs export
byte-identical files — which is what makes :func:`diff_traces` a determinism
regression tool rather than just a curiosity.

Chrome trace-event format: the ``{"traceEvents": [...]}`` JSON that
``chrome://tracing`` and https://ui.perfetto.dev load directly.  Simulated
processes map to tracks (one pid each), individual trace records to instant
events, and reconstructed consensus spans to duration (``X``) events, so a
run's fast-path/fallback structure is visible on a timeline.  When the
trace carries message ids (msg-send/msg-deliver under obs), each matched
send → deliver pair additionally becomes a **flow event** pair (``s``/``f``
arrows between tracks) and every decided instance gets its causal critical
path rendered: one ``critical-path`` duration on the decider's track plus a
``cp:`` duration per hop spanning the hop's flight time on the receiving
track.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, TextIO

from repro.errors import ConfigurationError
from repro.obs.causal import CausalGraph, critical_paths
from repro.obs.spans import SpanBuilder
from repro.sim.trace import TraceRecord, describe_value

__all__ = [
    "TRACE_SCHEMA",
    "diff_traces",
    "export_chrome",
    "export_jsonl",
    "load_trace",
    "record_rows",
]

TRACE_SCHEMA = "repro.trace.v1"

_MICROS = 1e6  # trace-event timestamps are microseconds


def record_rows(records: Iterable[TraceRecord]) -> list[list[Any]]:
    """Records as JSON-safe ``[time, pid, kind, data]`` rows."""
    return [[r.time, r.pid, r.kind, describe_value(r.data)] for r in records]


def export_jsonl(
    records: Iterable[TraceRecord], out: TextIO, spec: dict[str, Any] | None = None
) -> int:
    """Write the JSONL export; returns the number of records written."""
    rows = record_rows(records)
    header: dict[str, Any] = {"records": len(rows), "schema": TRACE_SCHEMA}
    if spec is not None:
        header["spec"] = spec
    out.write(json.dumps(header, sort_keys=True, separators=(",", ":")))
    out.write("\n")
    for row in rows:
        out.write(json.dumps(row, sort_keys=True, separators=(",", ":")))
        out.write("\n")
    return len(rows)


def load_trace(path: str) -> tuple[dict[str, Any], list[list[Any]]]:
    """Load a JSONL export; returns ``(header, rows)``."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise ConfigurationError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("schema") != TRACE_SCHEMA:
        raise ConfigurationError(
            f"{path}: not a {TRACE_SCHEMA} trace (header: {lines[0][:80]!r})"
        )
    rows = [json.loads(line) for line in lines[1:]]
    return header, rows


def export_chrome(
    records: Iterable[TraceRecord], out: TextIO, spec: dict[str, Any] | None = None
) -> int:
    """Write a Chrome trace-event / Perfetto JSON file.

    Mapping: the whole run is one trace-event "process"; each simulated pid
    becomes a thread (track).  Every trace record is an instant (``i``)
    event on its pid's track; reconstructed consensus spans become duration
    (``X``) events from propose to decide.
    """
    records = list(records)
    events: list[dict[str, Any]] = []
    pids = sorted({r.pid for r in records})
    for pid in pids:
        name = f"p{pid}" if pid >= 0 else "system"
        events.append(
            {
                "args": {"name": name},
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": pid,
            }
        )
    for r in records:
        events.append(
            {
                "args": {"data": describe_value(r.data)},
                "name": r.kind,
                "ph": "i",
                "pid": 0,
                "s": "t",
                "tid": r.pid,
                "ts": r.time * _MICROS,
            }
        )
    builder = SpanBuilder().add_records(records)
    for span in builder.consensus_spans():
        if span.propose_at is None or span.decided_at is None:
            continue
        label = "consensus" if span.instance is None else f"consensus[{span.instance}]"
        events.append(
            {
                "args": {
                    "steps": span.steps,
                    "via": span.via,
                    "value": describe_value(span.decided_value),
                },
                "dur": (span.decided_at - span.propose_at) * _MICROS,
                "name": label,
                "ph": "X",
                "pid": 0,
                "tid": span.pid,
                "ts": span.propose_at * _MICROS,
            }
        )
    # Causal layer: send → deliver flow arrows plus per-decision critical
    # paths.  Traces without message ids (obs off, pre-causal exports) have
    # no matched pairs and no hops, so they emit nothing extra here.
    graph = CausalGraph.from_records(records)
    for send, deliver in graph.flows():
        events.append(
            {
                "cat": "msg",
                "id": send.id,
                "name": send.kind,
                "ph": "s",
                "pid": 0,
                "tid": send.src,
                "ts": send.time * _MICROS,
            }
        )
        events.append(
            {
                "bp": "e",
                "cat": "msg",
                "id": send.id,
                "name": send.kind,
                "ph": "f",
                "pid": 0,
                "tid": deliver.dst,
                "ts": deliver.time * _MICROS,
            }
        )
    for path in critical_paths(builder, graph):
        if path.propose_at is None or not path.hops:
            continue
        label = (
            "critical-path"
            if path.instance is None
            else f"critical-path[{path.instance}]"
        )
        args: dict[str, Any] = {
            "hops": len(path.hops),
            "network_time_us": path.network_time * _MICROS,
            "steps": path.steps,
            "via": path.via,
        }
        if path.cause is not None:
            args["cause"] = path.cause
        events.append(
            {
                "args": args,
                "cname": "terrible" if path.cause is not None else "good",
                "dur": (path.decided_at - path.propose_at) * _MICROS,
                "name": label,
                "ph": "X",
                "pid": 0,
                "tid": path.pid,
                "ts": path.propose_at * _MICROS,
            }
        )
        for hop in path.hops:
            events.append(
                {
                    "args": {"msg_id": hop.msg_id, "src": hop.src},
                    "cat": "critical-path",
                    "dur": hop.flight_time * _MICROS,
                    "name": f"cp:{hop.kind}",
                    "ph": "X",
                    "pid": 0,
                    "tid": hop.dst,
                    "ts": hop.sent_at * _MICROS,
                }
            )
    document = {"displayTimeUnit": "ms", "traceEvents": events}
    json.dump(document, out, sort_keys=True, separators=(",", ":"))
    out.write("\n")
    return len(records)


def diff_traces(
    a: list[list[Any]], b: list[list[Any]]
) -> tuple[int, list[Any] | None, list[Any] | None] | None:
    """First divergence between two row lists, or ``None`` if identical.

    Returns ``(index, left_row, right_row)``; a missing row (one trace is a
    prefix of the other) is reported as ``None`` on the shorter side.
    """
    for i, (ra, rb) in enumerate(zip(a, b)):
        if ra != rb:
            return (i, ra, rb)
    if len(a) != len(b):
        i = min(len(a), len(b))
        return (i, a[i] if i < len(a) else None, b[i] if i < len(b) else None)
    return None
