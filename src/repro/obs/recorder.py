"""Flight recorder: a bounded per-pid ring buffer of recent trace events.

Safety-checker failures are rare and usually unreproducible outside the
exact seed that triggered them, so violated runs should ship their own
black box.  The recorder subscribes to a :class:`~repro.sim.trace.Tracer`
and keeps the last ``capacity`` records per pid; when a checker raises, the
harness calls :meth:`FlightRecorder.attach` to pin the dump onto the error
object (``err.flight_record``) before re-raising.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.trace import TraceRecord, Tracer, describe_value

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Retains the most recent ``capacity`` trace records per pid."""

    def __init__(self, tracer: Tracer, capacity: int = 64) -> None:
        self.capacity = capacity
        self._buffers: dict[int, deque[TraceRecord]] = {}
        self._tracer = tracer
        self._handle = tracer.subscribe(self._on_record)

    def _on_record(self, record: TraceRecord) -> None:
        buffer = self._buffers.get(record.pid)
        if buffer is None:
            self._buffers[record.pid] = buffer = deque(maxlen=self.capacity)
        buffer.append(record)

    def close(self) -> None:
        """Stop recording (e.g. once the run's check phase has passed)."""
        self._tracer.unsubscribe(self._handle)

    def dump(self) -> dict[int, list[list[Any]]]:
        """Per-pid recent history as JSON-safe ``[time, pid, kind, data]`` rows."""
        return {
            pid: [[r.time, r.pid, r.kind, describe_value(r.data)] for r in self._buffers[pid]]
            for pid in sorted(self._buffers)
        }

    def attach(self, err: BaseException) -> BaseException:
        """Pin the current dump onto ``err`` as ``err.flight_record``."""
        err.flight_record = self.dump()  # type: ignore[attr-defined]
        return err
