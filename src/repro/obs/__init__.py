"""repro.obs — structured observability over the flat trace stream.

Four pillars, each its own module:

* :mod:`repro.obs.runtime` — :class:`ObsConfig` / :class:`ObsRuntime`, the
  opt-in switchboard that wires detailed tracing, the metrics sampler and
  the flight recorder into a run;
* :mod:`repro.obs.spans` — reconstructs per-consensus-instance and
  per-broadcast-message causal spans from trace records;
* :mod:`repro.obs.metrics` — counters/gauges/histograms sampled on a
  virtual-time interval, serialized as a ``repro.obs.v1`` section;
* :mod:`repro.obs.export` — JSONL and Chrome trace-event (Perfetto) export
  with send→deliver flow arrows and critical-path highlighting, plus
  first-divergence diff between two trace files;
* :mod:`repro.obs.causal` — the message-level causal DAG (built from the
  network's per-send ids), decision critical paths and fallback-cause
  attribution (which suspect/partition/nemesis op forced the extra step);
* :mod:`repro.obs.warehouse` — append-only JSONL store of deterministic
  run summaries with a latency-regression comparator;
* :mod:`repro.obs.recorder` — bounded per-pid flight recorder attached to
  safety-checker errors.

Everything here is opt-in: with observability off, runs schedule no extra
events and emit no extra trace kinds, so existing outputs stay
byte-identical.
"""

from repro.obs.causal import (
    CausalGraph,
    CriticalPath,
    Hop,
    annotate_spans,
    causal_summary,
    critical_path,
    critical_paths,
    fallback_cause,
)
from repro.obs.export import (
    TRACE_SCHEMA,
    diff_traces,
    export_chrome,
    export_jsonl,
    load_trace,
)
from repro.obs.metrics import MetricsRegistry, MetricsSampler, OBS_SCHEMA
from repro.obs.recorder import FlightRecorder
from repro.obs.runtime import ObsConfig, ObsRuntime
from repro.obs.spans import BroadcastSpan, ConsensusSpan, SpanBuilder, TxnSpan
from repro.obs.warehouse import (
    WAREHOUSE_SCHEMA,
    Warehouse,
    build_entry,
    compare_entries,
)

__all__ = [
    "OBS_SCHEMA",
    "TRACE_SCHEMA",
    "WAREHOUSE_SCHEMA",
    "BroadcastSpan",
    "CausalGraph",
    "ConsensusSpan",
    "CriticalPath",
    "FlightRecorder",
    "Hop",
    "MetricsRegistry",
    "MetricsSampler",
    "ObsConfig",
    "ObsRuntime",
    "SpanBuilder",
    "TxnSpan",
    "Warehouse",
    "annotate_spans",
    "build_entry",
    "causal_summary",
    "compare_entries",
    "critical_path",
    "critical_paths",
    "diff_traces",
    "export_chrome",
    "export_jsonl",
    "fallback_cause",
    "load_trace",
]
