"""Causal spans reconstructed from trace records.

The flat trace stream answers "what happened when"; spans answer "how did
this decision come about".  Two span families:

* :class:`ConsensusSpan` — one consensus instance at one process:
  propose → round/phase transitions → decide (or undecided at end of run),
  with a per-phase virtual-time breakdown.  "Decided in 1 step via the fast
  path" is a field, not a test assertion.
* :class:`BroadcastSpan` — one application message: a-broadcast at its
  origin → a-deliver fan-out across processes, with first/last delivery
  latency.
* :class:`TxnSpan` — one cross-shard transaction: txn-begin at the
  coordinator → per-shard prepare votes → the replicated decision →
  txn-end, so 2PC behaviour (who voted what, where the time went) is
  inspectable per transaction.

:class:`SpanBuilder` consumes either live :class:`~repro.sim.trace.TraceRecord`
objects or rows loaded from a JSONL export (``[time, pid, kind, data]``
lists), so the CLI can build spans from a file without replaying the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.metrics import _percentile
from repro.sim.trace import KINDS, TraceRecord

__all__ = ["BroadcastSpan", "ConsensusSpan", "SpanBuilder", "TxnSpan"]


def _latency_stats(values: list[float]) -> dict[str, Any]:
    """Latency statistics in the :meth:`MetricsRegistry.histogram_summary`
    vocabulary (count/min/max/mean/p50/p95/p99), so span summaries and
    metrics histograms read the same."""
    ordered = sorted(values)
    if not ordered:
        return {"count": 0}
    return {
        "count": len(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / len(ordered),
        "p50": _percentile(ordered, 0.50),
        "p95": _percentile(ordered, 0.95),
        "p99": _percentile(ordered, 0.99),
    }


def _canonical_id(value: Any) -> Any:
    """Hashable, export-stable identity for message ids and instances."""
    if isinstance(value, list):
        return tuple(_canonical_id(v) for v in value)
    if isinstance(value, tuple):
        return tuple(_canonical_id(v) for v in value)
    return value


@dataclass
class ConsensusSpan:
    """One consensus instance observed at one process."""

    pid: int
    instance: Any = None
    propose_at: float | None = None
    proposed_value: Any = None
    #: ``(round, phase-or-None, start-time)`` in emission order.
    rounds: list[tuple[int, str | None, float]] = field(default_factory=list)
    decided_at: float | None = None
    decided_value: Any = None
    steps: int | None = None
    via: str | None = None
    outcome: str | None = None
    #: :func:`repro.obs.causal.fallback_cause` annotation — the trace record
    #: (and enclosing nemesis op, if any) that forced a multi-step decision.
    #: Attached by :func:`repro.obs.causal.annotate_spans`, never by the
    #: builder itself, so plain span reconstruction stays unchanged.
    fallback_cause: dict[str, Any] | None = None

    @property
    def decided(self) -> bool:
        return self.decided_at is not None

    @property
    def decision_latency(self) -> float | None:
        """Virtual time from propose to decide (None while undecided)."""
        if self.decided_at is None or self.propose_at is None:
            return None
        return self.decided_at - self.propose_at

    @property
    def fast_path(self) -> bool:
        """True when the instance decided in a single communication step."""
        return self.decided and self.steps == 1

    @property
    def max_round(self) -> int:
        return max((r for r, _, _ in self.rounds), default=0)

    def phase_breakdown(self) -> list[dict[str, Any]]:
        """Virtual-time spent in each round/phase, in order.

        Each entry covers from that round/phase's start to the next
        transition (or the decision, for the final one).
        """
        out: list[dict[str, Any]] = []
        for i, (round_no, phase, start) in enumerate(self.rounds):
            if i + 1 < len(self.rounds):
                end = self.rounds[i + 1][2]
            else:
                end = self.decided_at if self.decided_at is not None else start
            entry: dict[str, Any] = {"round": round_no, "start": start, "duration": end - start}
            if phase is not None:
                entry["phase"] = phase
            out.append(entry)
        return out

    def to_dict(self) -> dict[str, Any]:
        data = {
            "pid": self.pid,
            "instance": self.instance,
            "propose_at": self.propose_at,
            "proposed_value": self.proposed_value,
            "phases": self.phase_breakdown(),
            "decided_at": self.decided_at,
            "decided_value": self.decided_value,
            "steps": self.steps,
            "via": self.via,
            "outcome": self.outcome,
            "fast_path": self.fast_path,
        }
        # Only annotated spans grow the key: un-annotated dicts (and every
        # pre-causal consumer of them) stay byte-identical.
        if self.fallback_cause is not None:
            data["fallback_cause"] = self.fallback_cause
        return data


@dataclass
class BroadcastSpan:
    """One a-broadcast message and its delivery fan-out."""

    msg_id: Any
    origin: int | None = None
    sent_at: float | None = None
    #: pid -> delivery time (first delivery per pid).
    deliveries: dict[int, float] = field(default_factory=dict)

    @property
    def first_delivery(self) -> float | None:
        return min(self.deliveries.values()) if self.deliveries else None

    @property
    def last_delivery(self) -> float | None:
        return max(self.deliveries.values()) if self.deliveries else None

    @property
    def latency(self) -> float | None:
        """Virtual time from broadcast to first delivery anywhere."""
        if self.sent_at is None or not self.deliveries:
            return None
        return self.first_delivery - self.sent_at

    def to_dict(self) -> dict[str, Any]:
        return {
            "msg_id": list(self.msg_id) if isinstance(self.msg_id, tuple) else self.msg_id,
            "origin": self.origin,
            "sent_at": self.sent_at,
            "deliveries": {str(pid): t for pid, t in sorted(self.deliveries.items())},
            "latency": self.latency,
        }


@dataclass
class TxnSpan:
    """One cross-shard transaction observed through its 2PC lifecycle."""

    txid: Any
    coordinator_pid: int | None = None
    begin_at: float | None = None
    shards: list[int] = field(default_factory=list)
    #: shard -> prepare vote ("yes" / "conflict").
    votes: dict[int, str] = field(default_factory=dict)
    #: shard -> vote arrival time.
    vote_at: dict[int, float] = field(default_factory=dict)
    decision: str | None = None
    decided_at: float | None = None
    end_at: float | None = None

    @property
    def finished(self) -> bool:
        return self.end_at is not None

    @property
    def committed(self) -> bool:
        return self.decision == "commit"

    @property
    def duration(self) -> float | None:
        """Virtual time from txn-begin to txn-end (None while in flight)."""
        if self.begin_at is None or self.end_at is None:
            return None
        return self.end_at - self.begin_at

    def to_dict(self) -> dict[str, Any]:
        return {
            "txid": self.txid,
            "coordinator_pid": self.coordinator_pid,
            "begin_at": self.begin_at,
            "shards": list(self.shards),
            "votes": {str(shard): vote for shard, vote in sorted(self.votes.items())},
            "decision": self.decision,
            "decided_at": self.decided_at,
            "end_at": self.end_at,
            "duration": self.duration,
        }


class SpanBuilder:
    """Folds a trace (records or exported rows) into causal spans."""

    def __init__(self) -> None:
        #: (pid, instance) -> span
        self.consensus: dict[tuple[int, Any], ConsensusSpan] = {}
        #: msg_id -> span
        self.broadcasts: dict[Any, BroadcastSpan] = {}
        #: txid -> span
        self.txns: dict[Any, TxnSpan] = {}

    # ------------------------------------------------------------- ingestion

    def add_records(self, records: Iterable[TraceRecord]) -> "SpanBuilder":
        for r in records:
            self.add(r.time, r.pid, r.kind, r.data)
        return self

    def add_rows(self, rows: Iterable[list[Any]]) -> "SpanBuilder":
        """Ingest ``[time, pid, kind, data]`` rows from a JSONL export."""
        for time, pid, kind, data in rows:
            self.add(time, pid, kind, data)
        return self

    def _consensus_span(self, pid: int, instance: Any) -> ConsensusSpan:
        key = (pid, _canonical_id(instance))
        span = self.consensus.get(key)
        if span is None:
            self.consensus[key] = span = ConsensusSpan(pid=pid, instance=key[1])
        return span

    def add(self, time: float, pid: int, kind: str, data: Any) -> None:
        if kind == KINDS.PROPOSE:
            span = self._consensus_span(pid, data.get("instance"))
            span.propose_at = time
            span.proposed_value = data.get("value")
        elif kind == KINDS.ROUND_START:
            span = self._consensus_span(pid, data.get("instance"))
            span.rounds.append((data["round"], data.get("phase"), time))
        elif kind == KINDS.ROUND_END:
            span = self._consensus_span(pid, data.get("instance"))
            span.decided_at = time
            span.decided_value = data.get("value")
            span.steps = data.get("steps")
            span.via = data.get("via")
            span.outcome = data.get("outcome")
        elif kind == KINDS.A_BROADCAST:
            msg_id = _canonical_id(data)
            span = self.broadcasts.get(msg_id)
            if span is None:
                self.broadcasts[msg_id] = span = BroadcastSpan(msg_id=msg_id)
            span.sent_at = time
            span.origin = pid
        elif kind == KINDS.A_DELIVER:
            msg_id = _canonical_id(data)
            span = self.broadcasts.get(msg_id)
            if span is None:
                self.broadcasts[msg_id] = span = BroadcastSpan(msg_id=msg_id)
            span.deliveries.setdefault(pid, time)
        elif kind == KINDS.TXN_BEGIN:
            span = self._txn_span(data["txid"])
            span.begin_at = time
            span.coordinator_pid = pid
            span.shards = list(data.get("shards", ()))
        elif kind == KINDS.TXN_VOTE:
            span = self._txn_span(data["txid"])
            span.votes[data["shard"]] = data["vote"]
            span.vote_at[data["shard"]] = time
        elif kind == KINDS.TXN_DECIDE:
            span = self._txn_span(data["txid"])
            span.decision = data["decision"]
            span.decided_at = time
        elif kind == KINDS.TXN_END:
            span = self._txn_span(data["txid"])
            span.decision = data["decision"]
            span.end_at = time

    def _txn_span(self, txid: Any) -> TxnSpan:
        span = self.txns.get(txid)
        if span is None:
            self.txns[txid] = span = TxnSpan(txid=txid)
        return span

    # --------------------------------------------------------------- queries

    def consensus_spans(self) -> list[ConsensusSpan]:
        return [self.consensus[key] for key in sorted(self.consensus, key=repr)]

    def broadcast_spans(self) -> list[BroadcastSpan]:
        return [self.broadcasts[key] for key in sorted(self.broadcasts, key=repr)]

    def txn_spans(self) -> list[TxnSpan]:
        return [self.txns[key] for key in sorted(self.txns, key=repr)]

    def summary(self) -> dict[str, Any]:
        """Aggregate span statistics for reporting and assertions."""
        spans = self.consensus_spans()
        decided = [s for s in spans if s.decided]
        steps_hist: dict[str, int] = {}
        for s in decided:
            key = str(s.steps)
            steps_hist[key] = steps_hist.get(key, 0) + 1
        bspans = [s for s in self.broadcast_spans() if s.latency is not None]
        latencies = sorted(s.latency for s in bspans)
        broadcast_stats: dict[str, Any] = {"count": len(self.broadcasts)}
        if latencies:
            broadcast_stats.update(
                {
                    "delivered": len(latencies),
                    "min_latency": latencies[0],
                    "max_latency": latencies[-1],
                    "mean_latency": sum(latencies) / len(latencies),
                }
            )
        # Decision latency (propose -> decide) bucketed by decision path:
        # the paper's claim is precisely that fast_path stays one δ while
        # fallbacks pay extra steps, so the percentiles are kept per bucket.
        by_path: dict[str, list[float]] = {}
        for s in decided:
            latency = s.decision_latency
            if latency is None:
                continue
            if s.outcome == "forward":
                bucket = "forwarded"
            elif s.fast_path:
                bucket = "fast_path"
            else:
                bucket = "fallback"
            by_path.setdefault(bucket, []).append(latency)
        txn_spans = self.txn_spans()
        return {
            "instances": len(spans),
            "decided": len(decided),
            "fast_path": sum(1 for s in decided if s.fast_path),
            "forwarded": sum(1 for s in decided if s.outcome == "forward"),
            "decision_latency": {
                bucket: _latency_stats(values)
                for bucket, values in sorted(by_path.items())
            },
            "steps_histogram": dict(sorted(steps_hist.items())),
            "max_round": max((s.max_round for s in spans), default=0),
            "broadcasts": broadcast_stats,
            "txns": {
                "count": len(txn_spans),
                "committed": sum(1 for s in txn_spans if s.finished and s.committed),
                "aborted": sum(
                    1 for s in txn_spans if s.finished and not s.committed
                ),
                "unfinished": sum(1 for s in txn_spans if not s.finished),
            },
        }
