"""Observability runtime: the opt-in switchboard for one run.

:class:`ObsConfig` mirrors the ``obs*`` fields on the run specs;
:class:`ObsRuntime` owns (or adopts) the run's :class:`~repro.sim.trace.Tracer`
and, depending on the config, a :class:`~repro.obs.metrics.MetricsRegistry` +
sampler and a :class:`~repro.obs.recorder.FlightRecorder`.

Harness runners call :meth:`ObsRuntime.install` once the simulator, network
and failure detector exist; it flips the detailed-tracing switches
(``network.obs_tracer``, ``oracle.tracer``), registers the standard gauges
and starts the sampler.  With every knob at its default the runtime wires
nothing and schedules nothing, preserving byte-identical output for
existing runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.obs.metrics import OBS_SCHEMA, MetricsRegistry, MetricsSampler
from repro.obs.recorder import FlightRecorder
from repro.sim.trace import Tracer

__all__ = ["ObsConfig", "ObsRuntime"]


@dataclass(frozen=True)
class ObsConfig:
    """What to collect for one run.

    ``detail`` turns on the expanded trace kinds (propose, round-start/end,
    suspect/trust, msg-send/deliver, rsm lifecycle); ``metrics_interval``
    (virtual seconds, 0 = off) enables the gauge sampler;
    ``flight_recorder`` (records per pid, 0 = off) enables the black box.
    """

    detail: bool = True
    metrics_interval: float = 0.0
    flight_recorder: int = 0

    @classmethod
    def from_spec(cls, spec: Any) -> "ObsConfig":
        return cls(
            detail=bool(getattr(spec, "obs", False)),
            metrics_interval=float(getattr(spec, "obs_metrics_interval", 0.0)),
            flight_recorder=int(getattr(spec, "obs_flight_recorder", 0)),
        )


class ObsRuntime:
    """Holds the tracer, metrics and recorder for one observed run."""

    def __init__(self, config: ObsConfig | None = None, tracer: Tracer | None = None) -> None:
        self.config = config if config is not None else ObsConfig()
        self.tracer = tracer if tracer is not None else Tracer()
        self.registry: MetricsRegistry | None = None
        self.sampler: MetricsSampler | None = None
        if self.config.metrics_interval > 0:
            self.registry = MetricsRegistry()
            self.sampler = MetricsSampler(self.registry, self.config.metrics_interval)
        self.recorder: FlightRecorder | None = None
        if self.config.flight_recorder > 0:
            self.recorder = FlightRecorder(self.tracer, self.config.flight_recorder)

    @classmethod
    def from_spec(cls, spec: Any, tracer: Tracer | None = None) -> "ObsRuntime":
        return cls(ObsConfig.from_spec(spec), tracer)

    @property
    def detail(self) -> bool:
        return self.config.detail

    # ------------------------------------------------------------------ wiring

    def install(
        self,
        sim: Any,
        network: Any = None,
        oracle: Any = None,
        gauges: Mapping[str, Callable[[], float]] | None = None,
    ) -> None:
        """Wire detailed tracing and start the metrics sampler.

        ``gauges`` lets a runner add run-shape-specific readings (per-pid
        round numbers, rsm applied indexes) on top of the standard kernel,
        network and failure-detector gauges.
        """
        if self.detail:
            if network is not None:
                network.obs_tracer = self.tracer
            if oracle is not None:
                oracle.tracer = self.tracer
        if self.registry is not None and self.sampler is not None:
            self.registry.gauge("kernel.pending", lambda: float(sim.pending()))
            if network is not None:
                stats = network.stats
                self.registry.gauge(
                    "net.in_flight",
                    lambda: float(stats.sent - stats.delivered - stats.dropped),
                )
                self.registry.gauge("net.bytes_sent", lambda: float(stats.bytes_sent))
            if oracle is not None and hasattr(oracle, "crashed"):
                self.registry.gauge("fd.suspected", lambda: float(len(oracle.crashed)))
            if gauges:
                for name, read in gauges.items():
                    self.registry.gauge(name, read)
            self.sampler.start(sim)

    def attach_failure(self, err: BaseException) -> BaseException:
        """Pin the flight-recorder dump onto a checker error (if recording)."""
        if self.recorder is not None:
            self.recorder.attach(err)
        return err

    # --------------------------------------------------------- serialization

    def section(self) -> dict[str, Any] | None:
        """The ``repro.obs.v1`` RunReport section, or ``None`` if no metrics."""
        if self.registry is None or self.sampler is None:
            return None
        section: dict[str, Any] = {"schema": OBS_SCHEMA}
        section.update(self.sampler.to_dict())
        section.update(self.registry.to_dict())
        return section
