"""Causal message-flow graph and decision critical-path analysis.

PR 4's spans say *that* a consensus instance took two steps; this module
says *why*.  The network stamps every send with a network-wide sequence
number (``Network._msg_seq``) which observability exports inside the
``msg-send``/``msg-deliver`` trace data, so each delivery names its
originating send.  :class:`CausalGraph` collects those edges (from live
records or exported JSONL rows) and :func:`critical_path` walks them
backwards from a decision:

* the **gating hop** is the last message arriving at the decider before it
  decided — the last-arriving quorum message of the paper's step analysis;
* each earlier hop is the last arrival at the previous hop's sender before
  it sent — the latest-arrival chain, the standard Lamport-style critical
  path through the happened-before graph;
* the walk stops at the decider's propose time, so the hop chain spans
  propose → decide.

For fallback decisions (``steps > 1``) :func:`fallback_cause` names the
trace record that forced the extra step — the latest ``suspect`` /
``leader-change`` / ``net-partition`` / ``nemesis-start`` event visible to
the decider before its final round began — and maps it into the enclosing
nemesis op window, so a fuzzer repro's spans say *which op* broke the fast
path.  Everything here is read-only over an existing trace: building
graphs and paths never changes what a run emits.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.spans import ConsensusSpan, SpanBuilder
from repro.sim.trace import KINDS, TraceRecord, describe_value

__all__ = [
    "CausalGraph",
    "CriticalPath",
    "Hop",
    "annotate_spans",
    "causal_summary",
    "critical_path",
    "critical_paths",
    "fallback_cause",
]

#: Trace kinds that can force a consensus instance off the fast path.  A
#: ``nemesis-end`` (or ``net-heal``) restores service rather than breaking
#: it, so neither counts as a trigger — but nemesis windows still come from
#: the start records.
TRIGGER_KINDS = frozenset(
    {KINDS.SUSPECT, KINDS.LEADER_CHANGE, KINDS.NET_PARTITION, KINDS.NEMESIS_START}
)

#: Walk guard: no sane trace chains more hops than this between one propose
#: and one decide (rounds are O(1) messages deep per process).
MAX_HOPS = 128


@dataclass(frozen=True)
class _Send:
    """One ``msg-send`` record."""

    id: int
    time: float
    src: int
    dst: int
    kind: str
    channel: str


@dataclass(frozen=True)
class _Deliver:
    """One ``msg-deliver`` record."""

    id: int
    time: float
    dst: int
    src: int
    kind: str
    channel: str


@dataclass(frozen=True)
class Hop:
    """One send → deliver edge on a decision's critical path."""

    msg_id: int
    kind: str
    src: int
    dst: int
    sent_at: float
    delivered_at: float

    @property
    def flight_time(self) -> float:
        return self.delivered_at - self.sent_at

    def to_dict(self) -> dict[str, Any]:
        return {
            "msg_id": self.msg_id,
            "kind": self.kind,
            "src": self.src,
            "dst": self.dst,
            "sent_at": self.sent_at,
            "delivered_at": self.delivered_at,
        }


@dataclass
class CriticalPath:
    """The latest-arrival message chain behind one consensus decision."""

    pid: int
    instance: Any
    propose_at: float | None
    decided_at: float
    steps: int | None
    via: str | None
    #: Hops in causal order: ``hops[-1]`` is the gating (last-arriving)
    #: message at the decider; ``hops[0]`` is the chain's origin send.
    hops: list[Hop] = field(default_factory=list)
    #: :func:`fallback_cause` result for multi-step decisions, else None.
    cause: dict[str, Any] | None = None

    @property
    def latency(self) -> float | None:
        if self.propose_at is None:
            return None
        return self.decided_at - self.propose_at

    @property
    def gating(self) -> Hop | None:
        """The last-arriving message the decision waited on."""
        return self.hops[-1] if self.hops else None

    @property
    def network_time(self) -> float:
        """Virtual time the path spent on the wire (sum of hop flights)."""
        return sum(hop.flight_time for hop in self.hops)

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "instance": self.instance,
            "propose_at": self.propose_at,
            "decided_at": self.decided_at,
            "latency": self.latency,
            "steps": self.steps,
            "via": self.via,
            "hops": [hop.to_dict() for hop in self.hops],
            "network_time": self.network_time,
            "cause": self.cause,
        }


class CausalGraph:
    """Message-level causal edges plus the fault/FD records of one trace."""

    def __init__(self) -> None:
        #: msg id -> send event.
        self.sends: dict[int, _Send] = {}
        #: msg id -> deliver event (unicast: at most one per send).
        self.delivers: dict[int, _Deliver] = {}
        #: Deliveries with no matching send in the trace (truncated exports,
        #: hand-built envelopes with ``msg_id == -1``).
        self.orphan_delivers: list[_Deliver] = []
        #: Fallback-trigger candidates, in emission order.
        self.triggers: list[TraceRecord] = []
        #: ``nemesis-start`` data dicts, in emission order (each carries
        #: ``index``/``op``/``at``/``duration`` — the op's window).
        self.nemesis_ops: list[dict[str, Any]] = []
        #: pid -> chronologically sorted arrivals (built lazily).
        self._arrivals: dict[int, list[_Deliver]] | None = None
        self._arrival_times: dict[int, list[float]] = {}

    # ------------------------------------------------------------- ingestion

    @classmethod
    def from_records(cls, records: Iterable[TraceRecord]) -> "CausalGraph":
        graph = cls()
        for r in records:
            graph.add(r.time, r.pid, r.kind, r.data)
        return graph

    @classmethod
    def from_rows(cls, rows: Iterable[list[Any]]) -> "CausalGraph":
        """Build from ``[time, pid, kind, data]`` rows of a JSONL export."""
        graph = cls()
        for time, pid, kind, data in rows:
            graph.add(time, pid, kind, data)
        return graph

    def add(self, time: float, pid: int, kind: str, data: Any) -> None:
        if kind == KINDS.MSG_SEND:
            msg_id = data.get("id") if isinstance(data, dict) else None
            if isinstance(msg_id, int) and msg_id >= 0:
                self.sends[msg_id] = _Send(
                    msg_id, time, pid, data.get("dst", -1),
                    data.get("kind", "?"), data.get("channel", "?"),
                )
        elif kind == KINDS.MSG_DELIVER:
            msg_id = data.get("id") if isinstance(data, dict) else None
            deliver = _Deliver(
                msg_id if isinstance(msg_id, int) else -1,
                time, pid,
                data.get("src", -1) if isinstance(data, dict) else -1,
                data.get("kind", "?") if isinstance(data, dict) else "?",
                data.get("channel", "?") if isinstance(data, dict) else "?",
            )
            if deliver.id >= 0 and deliver.id in self.sends:
                self.delivers[deliver.id] = deliver
            else:
                self.orphan_delivers.append(deliver)
            self._arrivals = None  # invalidate the lazy per-pid index
        elif kind in TRIGGER_KINDS:
            self.triggers.append(TraceRecord(time, pid, kind, data))
            if kind == KINDS.NEMESIS_START and isinstance(data, dict):
                self.nemesis_ops.append(data)

    # --------------------------------------------------------------- queries

    def _ensure_arrivals(self) -> dict[int, list[_Deliver]]:
        if self._arrivals is None:
            arrivals: dict[int, list[_Deliver]] = {}
            for deliver in self.delivers.values():
                arrivals.setdefault(deliver.dst, []).append(deliver)
            for bucket in arrivals.values():
                bucket.sort(key=lambda d: (d.time, d.id))
            self._arrivals = arrivals
            self._arrival_times = {
                pid: [d.time for d in bucket] for pid, bucket in arrivals.items()
            }
        return self._arrivals

    def last_arrival_before(self, pid: int, time: float) -> _Deliver | None:
        """Latest delivery at ``pid`` with arrival time <= ``time``."""
        arrivals = self._ensure_arrivals().get(pid)
        if not arrivals:
            return None
        index = bisect_right(self._arrival_times[pid], time)
        if index == 0:
            return None
        return arrivals[index - 1]

    def flows(self) -> list[tuple[_Send, _Deliver]]:
        """Matched (send, deliver) pairs, in msg-id order."""
        return [
            (self.sends[msg_id], self.delivers[msg_id])
            for msg_id in sorted(self.delivers)
        ]

    @property
    def unmatched_sends(self) -> int:
        """Sends that were never delivered (dropped, blocked, or in flight)."""
        return len(self.sends) - len(self.delivers)


def critical_path(
    span: ConsensusSpan, graph: CausalGraph, max_hops: int = MAX_HOPS
) -> CriticalPath | None:
    """The latest-arrival chain from ``span``'s propose to its decision.

    Returns ``None`` for undecided spans.  A decided span with no resolvable
    arrivals yields an empty-hops path (callers — and ``trace critical-path
    --strict`` — can treat that as a gap in the trace).
    """
    if span.decided_at is None:
        return None
    path = CriticalPath(
        pid=span.pid,
        instance=span.instance,
        propose_at=span.propose_at,
        decided_at=span.decided_at,
        steps=span.steps,
        via=span.via,
    )
    propose_at = span.propose_at if span.propose_at is not None else float("-inf")
    cursor_pid = span.pid
    cursor_time = span.decided_at
    hops_reversed: list[Hop] = []
    last_deliver: _Deliver | None = None
    while len(hops_reversed) < max_hops and cursor_time > propose_at:
        deliver = graph.last_arrival_before(cursor_pid, cursor_time)
        if deliver is None or deliver is last_deliver:
            break
        send = graph.sends.get(deliver.id)
        if send is None:  # defensive: delivers are only indexed with a send
            break
        hops_reversed.append(
            Hop(send.id, send.kind, send.src, deliver.dst, send.time, deliver.time)
        )
        last_deliver = deliver
        cursor_pid = send.src
        cursor_time = send.time
    path.hops = list(reversed(hops_reversed))
    if span.steps is not None and span.steps > 1:
        path.cause = fallback_cause(span, graph)
    return path


def fallback_cause(span: ConsensusSpan, graph: CausalGraph) -> dict[str, Any] | None:
    """Name the record that forced ``span`` off the fast path.

    The proximate trigger is the latest ``suspect`` / ``leader-change`` /
    ``net-partition`` / ``nemesis-start`` record emitted at the decider (or
    at pid -1 — god's-eye fault records) no later than the start of the
    span's final round.  When a nemesis schedule is attached, the trigger is
    mapped into the enclosing op window ``[at, at + duration]`` so the
    *scheduled op* (e.g. the partition) is named as the root cause even when
    the proximate trigger is the suspicion it provoked.
    """
    if span.rounds:
        deadline = span.rounds[-1][2]
    elif span.decided_at is not None:
        deadline = span.decided_at
    else:
        return None
    trigger: TraceRecord | None = None
    for record in graph.triggers:  # emission order; keep the latest eligible
        if record.time > deadline:
            continue
        if record.pid != span.pid and record.pid != -1:
            continue
        if trigger is None or record.time >= trigger.time:
            trigger = record
    if trigger is None:
        return None
    cause: dict[str, Any] = {
        "kind": trigger.kind,
        "time": trigger.time,
        "pid": trigger.pid,
        "data": describe_value(trigger.data),
    }
    op = _enclosing_op(graph.nemesis_ops, trigger.time)
    if op is not None:
        cause["op"] = describe_value({k: v for k, v in op.items() if k != "index"})
        cause["op_index"] = op.get("index")
    return cause


def _enclosing_op(ops: list[dict[str, Any]], time: float) -> dict[str, Any] | None:
    """The nemesis op whose ``[at, at + duration]`` window covers ``time``.

    Prefers the latest-starting containing window; falls back to the latest
    op that started before ``time`` (a suspicion often lands just after a
    short op's window closes).
    """
    containing: dict[str, Any] | None = None
    started_before: dict[str, Any] | None = None
    for op in ops:
        at = op.get("at")
        if not isinstance(at, (int, float)) or at > time:
            continue
        duration = op.get("duration")
        end = at + duration if isinstance(duration, (int, float)) else at
        if started_before is None or at >= started_before.get("at", 0.0):
            started_before = op
        if time <= end and (containing is None or at >= containing.get("at", 0.0)):
            containing = op
    return containing if containing is not None else started_before


def critical_paths(
    builder: SpanBuilder, graph: CausalGraph, max_hops: int = MAX_HOPS
) -> list[CriticalPath]:
    """Critical paths of every decided consensus span, in span order."""
    paths = []
    for span in builder.consensus_spans():
        path = critical_path(span, graph, max_hops=max_hops)
        if path is not None:
            paths.append(path)
    return paths


def annotate_spans(builder: SpanBuilder, graph: CausalGraph) -> SpanBuilder:
    """Attach :func:`fallback_cause` onto every multi-step consensus span."""
    for span in builder.consensus_spans():
        if span.decided and span.steps is not None and span.steps > 1:
            span.fallback_cause = fallback_cause(span, graph)
    return builder


def causal_summary(rows: Iterable[list[Any]]) -> dict[str, Any]:
    """Aggregate critical-path statistics of one exported trace.

    The warehouse stores this per run: path counts, hop depth, how much of
    the decision latency was wire time, and a histogram of fallback-cause
    kinds (``op:<kind>`` when a nemesis op was attributed).
    """
    rows = list(rows)
    builder = SpanBuilder().add_rows(rows)
    graph = CausalGraph.from_rows(rows)
    paths = critical_paths(builder, graph)
    latencies = [p.latency for p in paths if p.latency is not None]
    causes: dict[str, int] = {}
    for path in paths:
        if path.cause is None:
            continue
        op = path.cause.get("op")
        label = f"op:{op['op']}" if isinstance(op, dict) and "op" in op else path.cause["kind"]
        causes[label] = causes.get(label, 0) + 1
    summary: dict[str, Any] = {
        "paths": len(paths),
        "resolved": sum(1 for p in paths if p.hops),
        "max_hops": max((len(p.hops) for p in paths), default=0),
        "mean_hops": (
            sum(len(p.hops) for p in paths) / len(paths) if paths else 0.0
        ),
        "causes": dict(sorted(causes.items())),
        "unmatched_sends": graph.unmatched_sends,
        "orphan_delivers": len(graph.orphan_delivers),
    }
    if latencies:
        summary["mean_latency"] = sum(latencies) / len(latencies)
        summary["max_latency"] = max(latencies)
        network = [p.network_time for p in paths if p.latency is not None]
        summary["mean_network_time"] = sum(network) / len(network)
    return summary
