"""Virtual-time metrics: counters, gauges, histograms and a sampler.

A :class:`MetricsRegistry` holds three instrument families:

* **counters** — monotonic totals bumped by instrumentation code;
* **gauges** — named callables read at each sample tick (queue depth,
  in-flight messages, per-pid round number, ...);
* **histograms** — value lists summarized at serialization time.

A :class:`MetricsSampler` rides the simulator: it schedules itself every
``interval`` virtual seconds and appends one row of gauge readings per tick.
Sampling draws no randomness and mutates no protocol state, so same-seed
runs produce byte-identical series; the only footprint is the sampler's own
kernel events, which exist only when observability is on.

The serialized section (``repro.obs.v1``) is embedded in
:class:`repro.engine.report.RunReport` under the optional ``obs`` key.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.errors import ConfigurationError

__all__ = ["OBS_SCHEMA", "MetricsRegistry", "MetricsSampler"]

OBS_SCHEMA = "repro.obs.v1"


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank-with-interpolation percentile over a sorted list."""
    if not ordered:
        return math.nan
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class MetricsRegistry:
    """Named counters, gauge callbacks and histograms for one run."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, Callable[[], float]] = {}
        self._histograms: dict[str, list[float]] = {}

    # ----------------------------------------------------------- instruments

    def counter(self, name: str, delta: float = 1.0) -> None:
        """Increment counter ``name`` by ``delta``."""
        self._counters[name] = self._counters.get(name, 0.0) + delta

    def gauge(self, name: str, read: Callable[[], float]) -> None:
        """Register gauge ``name``; ``read`` is called at every sample tick."""
        self._gauges[name] = read

    def observe(self, name: str, value: float) -> None:
        """Add one observation to histogram ``name``."""
        self._histograms.setdefault(name, []).append(value)

    @property
    def gauge_names(self) -> list[str]:
        return sorted(self._gauges)

    def read_gauges(self) -> list[float]:
        """One row of gauge readings, in sorted-name order."""
        return [float(self._gauges[name]()) for name in self.gauge_names]

    # --------------------------------------------------------- serialization

    def histogram_summary(self, name: str) -> dict[str, float]:
        values = sorted(self._histograms.get(name, ()))
        if not values:
            return {"count": 0}
        return {
            "count": len(values),
            "min": values[0],
            "max": values[-1],
            "mean": sum(values) / len(values),
            "p50": _percentile(values, 0.50),
            "p95": _percentile(values, 0.95),
            "p99": _percentile(values, 0.99),
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": dict(sorted(self._counters.items())),
            "histograms": {
                name: self.histogram_summary(name) for name in sorted(self._histograms)
            },
        }


class MetricsSampler:
    """Samples a registry's gauges every ``interval`` virtual seconds."""

    def __init__(self, registry: MetricsRegistry, interval: float) -> None:
        if interval <= 0:
            raise ConfigurationError(f"sampling interval must be > 0 (got {interval})")
        self.registry = registry
        self.interval = interval
        #: rows of ``[time, gauge0, gauge1, ...]`` in sorted gauge-name order.
        self.samples: list[list[float]] = []
        self._sim: Any = None

    def start(self, sim: Any) -> None:
        """Begin sampling on ``sim``; the first sample lands at ``interval``."""
        self._sim = sim
        sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        self.samples.append([self._sim.now, *self.registry.read_gauges()])
        self._sim.schedule(self.interval, self._tick)

    def to_dict(self) -> dict[str, Any]:
        return {
            "interval": self.interval,
            "gauges": self.registry.gauge_names,
            "samples": self.samples,
        }
