"""repro — One-step Consensus with Zero-Degradation (Dobre & Suri, DSN 2006).

A from-scratch reproduction of the paper's protocols, substrates and
evaluation:

* :mod:`repro.core` — L-Consensus (Ω), P-Consensus (◇P), C-Abcast, and the
  executable Theorem-1 lower bound;
* :mod:`repro.protocols` — the baselines: Paxos, Multi-Paxos atomic
  broadcast, WABCast and Brasileiro's one-step consensus;
* :mod:`repro.sim` — deterministic discrete-event substrate (network, nodes,
  failure injection) replacing the paper's Neko framework and cluster;
* :mod:`repro.runtime` — asyncio runtime executing the same protocol code
  live;
* :mod:`repro.fd` — Ω and ◇P failure detectors (oracle and heartbeat);
* :mod:`repro.oracles` — the WAB spontaneous-order oracle;
* :mod:`repro.workload`, :mod:`repro.harness`, :mod:`repro.analysis` — the
  evaluation machinery behind Table 1 and Figures 1-3.

Quickstart::

    from repro import run_consensus, LConsensus

    def make(pid, env, oracle, host):
        return LConsensus(env, oracle.omega(pid))

    result = run_consensus(make, {0: "a", 1: "b", 2: "c", 3: "d"})
    assert len(set(result.decisions.values())) == 1
"""

from repro.core import (
    ConsensusModule,
    Decide,
    DecisionRecord,
    LConsensus,
    PConsensus,
)
from repro.core.abcast_base import AbcastModule, AppMessage
from repro.core.cabcast import CAbcast
from repro.errors import (
    AgreementViolation,
    ConfigurationError,
    IntegrityViolation,
    ProtocolViolation,
    ReproError,
    SimulationError,
    TerminationFailure,
    TotalOrderViolation,
    ValidityViolation,
)
from repro.fd import (
    HeartbeatSuspector,
    OmegaView,
    OracleFailureDetector,
    SuspectView,
)
from repro.engine import (
    AbcastRunSpec,
    ClusterSpec,
    ConsensusRunSpec,
    RunReport,
    run_sweep,
    sweep_grid,
)
from repro.harness import run_consensus
from repro.harness.abcast_runner import run_abcast
from repro.oracles import WabOracle
from repro.protocols import (
    BrasileiroConsensus,
    MultiPaxosAbcast,
    PaxosConsensus,
    WabCast,
)
from repro.sim import Cluster, Environment, Process, Simulator
from repro.workload import latency_vs_throughput

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ConsensusModule",
    "Decide",
    "DecisionRecord",
    "LConsensus",
    "PConsensus",
    "CAbcast",
    "AbcastModule",
    "AppMessage",
    # baselines
    "BrasileiroConsensus",
    "MultiPaxosAbcast",
    "PaxosConsensus",
    "WabCast",
    # substrates
    "Cluster",
    "Environment",
    "Process",
    "Simulator",
    "OmegaView",
    "SuspectView",
    "OracleFailureDetector",
    "HeartbeatSuspector",
    "WabOracle",
    # harness
    "run_consensus",
    "run_abcast",
    "latency_vs_throughput",
    # engine
    "AbcastRunSpec",
    "ClusterSpec",
    "ConsensusRunSpec",
    "RunReport",
    "run_sweep",
    "sweep_grid",
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ProtocolViolation",
    "AgreementViolation",
    "ValidityViolation",
    "IntegrityViolation",
    "TotalOrderViolation",
    "TerminationFailure",
]
