"""repro — One-step Consensus with Zero-Degradation (Dobre & Suri, DSN 2006).

A from-scratch reproduction of the paper's protocols, substrates and
evaluation:

* :mod:`repro.core` — L-Consensus (Ω), P-Consensus (◇P), C-Abcast, and the
  executable Theorem-1 lower bound;
* :mod:`repro.protocols` — the baselines: Paxos, Multi-Paxos atomic
  broadcast, WABCast and Brasileiro's one-step consensus;
* :mod:`repro.sim` — deterministic discrete-event substrate (network, nodes,
  failure injection) replacing the paper's Neko framework and cluster;
* :mod:`repro.runtime` — asyncio runtime executing the same protocol code
  live;
* :mod:`repro.fd` — Ω and ◇P failure detectors (oracle and heartbeat);
* :mod:`repro.oracles` — the WAB spontaneous-order oracle;
* :mod:`repro.workload`, :mod:`repro.harness`, :mod:`repro.analysis` — the
  evaluation machinery behind Table 1 and Figures 1-3.

Quickstart::

    from repro import run_consensus, LConsensus

    def make(pid, env, oracle, host):
        return LConsensus(env, oracle.omega(pid))

    result = run_consensus(make, {0: "a", 1: "b", 2: "c", 3: "d"})
    assert len(set(result.decisions.values())) == 1

The package namespace is lazy (PEP 562): ``from repro import LConsensus``
imports only the subtree that defines it.  ``python -m repro <cmd>`` start-up
— part of every cold experiment run — therefore pays for the modules the
command actually uses rather than the whole distribution.
"""

from typing import TYPE_CHECKING, Any

__version__ = "1.0.0"

#: Re-export map: public name -> defining module.  Resolved on first
#: attribute access, then cached in the package namespace.
_EXPORTS = {
    # core
    "ConsensusModule": "repro.core",
    "Decide": "repro.core",
    "DecisionRecord": "repro.core",
    "LConsensus": "repro.core",
    "PConsensus": "repro.core",
    "CAbcast": "repro.core.cabcast",
    "AbcastModule": "repro.core.abcast_base",
    "AppMessage": "repro.core.abcast_base",
    # baselines
    "BrasileiroConsensus": "repro.protocols",
    "MultiPaxosAbcast": "repro.protocols",
    "PaxosConsensus": "repro.protocols",
    "WabCast": "repro.protocols",
    # substrates
    "Cluster": "repro.sim",
    "Environment": "repro.sim",
    "Process": "repro.sim",
    "Simulator": "repro.sim",
    "OmegaView": "repro.fd",
    "SuspectView": "repro.fd",
    "OracleFailureDetector": "repro.fd",
    "HeartbeatSuspector": "repro.fd",
    "WabOracle": "repro.oracles",
    # harness
    "run_consensus": "repro.harness",
    "run_abcast": "repro.harness.abcast_runner",
    "latency_vs_throughput": "repro.workload",
    # observability
    "PerfReport": "repro.perf",
    "profile_call": "repro.perf",
    "ObsConfig": "repro.obs",
    "ObsRuntime": "repro.obs",
    "SpanBuilder": "repro.obs",
    "ConsensusSpan": "repro.obs",
    "BroadcastSpan": "repro.obs",
    "FlightRecorder": "repro.obs",
    "MetricsRegistry": "repro.obs",
    "export_jsonl": "repro.obs",
    "export_chrome": "repro.obs",
    "load_trace": "repro.obs",
    "diff_traces": "repro.obs",
    "KINDS": "repro.sim.trace",
    "Tracer": "repro.sim.trace",
    # engine
    "AbcastRunSpec": "repro.engine",
    "ClusterSpec": "repro.engine",
    "ConsensusRunSpec": "repro.engine",
    "RsmRunSpec": "repro.engine",
    "RunReport": "repro.engine",
    "run_sweep": "repro.engine",
    "sweep_grid": "repro.engine",
    # nemesis fault schedules + fuzzer
    "NemesisSpec": "repro.nemesis",
    "PartitionOp": "repro.nemesis",
    "CrashOp": "repro.nemesis",
    "DropOp": "repro.nemesis",
    "DelayOp": "repro.nemesis",
    "DupOp": "repro.nemesis",
    "FdFlapOp": "repro.nemesis",
    "CpuSkewOp": "repro.nemesis",
    "fuzz_schedules": "repro.nemesis",
    "shrink_schedule": "repro.nemesis",
    "save_repro": "repro.nemesis",
    "replay_repro": "repro.nemesis",
    # rsm service layer
    "Command": "repro.rsm",
    "KvStore": "repro.rsm",
    "StateMachine": "repro.rsm",
    "RsmReplica": "repro.rsm",
    "run_rsm": "repro.rsm",
    # errors
    "ReproError": "repro.errors",
    "ConfigurationError": "repro.errors",
    "SimulationError": "repro.errors",
    "ProtocolViolation": "repro.errors",
    "AgreementViolation": "repro.errors",
    "ValidityViolation": "repro.errors",
    "IntegrityViolation": "repro.errors",
    "TotalOrderViolation": "repro.errors",
    "LinearizabilityViolation": "repro.errors",
    "SerializabilityViolation": "repro.errors",
    "TerminationFailure": "repro.errors",
}

__all__ = ["__version__", *_EXPORTS]


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(__all__)


if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.core import (
        ConsensusModule,
        Decide,
        DecisionRecord,
        LConsensus,
        PConsensus,
    )
    from repro.core.abcast_base import AbcastModule, AppMessage
    from repro.core.cabcast import CAbcast
    from repro.engine import (
        AbcastRunSpec,
        ClusterSpec,
        ConsensusRunSpec,
        RsmRunSpec,
        RunReport,
        run_sweep,
        sweep_grid,
    )
    from repro.errors import (
        AgreementViolation,
        ConfigurationError,
        IntegrityViolation,
        LinearizabilityViolation,
        ProtocolViolation,
        ReproError,
        SerializabilityViolation,
        SimulationError,
        TerminationFailure,
        TotalOrderViolation,
        ValidityViolation,
    )
    from repro.fd import (
        HeartbeatSuspector,
        OmegaView,
        OracleFailureDetector,
        SuspectView,
    )
    from repro.harness import run_consensus
    from repro.harness.abcast_runner import run_abcast
    from repro.obs import (
        BroadcastSpan,
        ConsensusSpan,
        FlightRecorder,
        MetricsRegistry,
        ObsConfig,
        ObsRuntime,
        SpanBuilder,
        diff_traces,
        export_chrome,
        export_jsonl,
        load_trace,
    )
    from repro.nemesis import (
        CpuSkewOp,
        CrashOp,
        DelayOp,
        DropOp,
        DupOp,
        FdFlapOp,
        NemesisSpec,
        PartitionOp,
        fuzz_schedules,
        replay_repro,
        save_repro,
        shrink_schedule,
    )
    from repro.oracles import WabOracle
    from repro.perf import PerfReport, profile_call
    from repro.sim.trace import KINDS, Tracer
    from repro.protocols import (
        BrasileiroConsensus,
        MultiPaxosAbcast,
        PaxosConsensus,
        WabCast,
    )
    from repro.rsm import Command, KvStore, RsmReplica, StateMachine, run_rsm
    from repro.sim import Cluster, Environment, Process, Simulator
    from repro.workload import latency_vs_throughput
