"""Content-addressed on-disk result cache for engine runs.

Layout: ``<root>/<key[:2]>/<key>.json`` (or ``.json.gz`` when the cache is
constructed with ``compress=True``) where ``key`` is the spec's sha256
:meth:`~repro.engine.spec.AbcastRunSpec.cache_key`.  Entries are whole
:class:`~repro.engine.report.RunReport` dicts in canonical JSON
(:meth:`RunReport.to_json`), written atomically (temp file + rename) so a
crashed run never leaves a half-written entry.  A corrupt or
schema-mismatched entry reads as a miss and is re-run, never trusted.

Reads are transparent across formats — a ``compress=True`` cache still
serves legacy ``.json`` entries unchanged, and a plain cache reads
``.json.gz`` entries left by a compressing writer.  Gzip bodies are written
with ``mtime=0`` so equal reports produce byte-identical entries.

On top of the disk store sits a small in-memory LRU of *decoded* reports:
a sweep that re-reads the same cells (warm benchmark loops, repeated CLI
invocations against one :class:`ResultCache` instance) skips the JSON
parse.  The LRU is populated only by successful disk reads — never by
:meth:`put` — so external corruption of an entry is still detected the
first time each instance reads it.
"""

from __future__ import annotations

import gzip
import json
import os
import pathlib
from collections import OrderedDict
from typing import Iterable, Sequence, Union

from repro.engine.report import REPORT_SCHEMA, RunReport
from repro.engine.spec import AbcastRunSpec, RsmRunSpec
from repro.errors import ConfigurationError

__all__ = ["ResultCache"]

Spec = Union[AbcastRunSpec, RsmRunSpec]

#: Default size of the in-memory decoded-report LRU.
DEFAULT_MEMORY_ENTRIES = 256


class ResultCache:
    """Spec-keyed store of run reports under one directory."""

    def __init__(
        self,
        root: Union[str, os.PathLike],
        *,
        compress: bool = False,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ) -> None:
        self.root = pathlib.Path(root).expanduser()
        self.compress = bool(compress)
        self._memory: OrderedDict[str, RunReport] = OrderedDict()
        self._memory_entries = max(0, int(memory_entries))

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def gzip_path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json.gz"

    # ----------------------------------------------------------------- reads

    def get(self, spec: Spec) -> RunReport | None:
        """The cached report for ``spec``, or None on miss/corruption."""
        key = spec.cache_key()
        hit = self._memory.get(key)
        if hit is not None:
            # The key is a content address of the spec, but keep the same
            # paranoia the disk path applies: the remembered report must
            # describe the run we were asked for.
            if type(hit.spec) is type(spec) and hit.spec == spec:
                self._memory.move_to_end(key)
                return hit
        text = self._read_text(key)
        if text is None:
            return None
        try:
            data = json.loads(text)
        except ValueError:
            return None
        if not isinstance(data, dict) or data.get("schema") != REPORT_SCHEMA:
            return None
        # Paranoia against hash collisions and hand-edited entries: the
        # stored spec must describe the run we were asked for.
        if data.get("spec") != spec.to_dict():
            return None
        try:
            report = RunReport.from_dict(data)
        except (KeyError, TypeError, ValueError, ConfigurationError):
            # ConfigurationError covers entries whose stored spec no longer
            # decodes (unknown kind/model after a hand edit or version skew);
            # like truncated JSON, that is a miss to re-run, never a crash.
            return None
        self._remember(key, report)
        return report

    def get_many(self, specs: Sequence[Spec]) -> list[RunReport | None]:
        """Reports for ``specs``, index-aligned; ``None`` marks a miss."""
        return [self.get(spec) for spec in specs]

    def _read_text(self, key: str) -> str | None:
        """Entry body for ``key`` from either format, or None."""
        try:
            return self.path_for(key).read_text()
        except OSError:
            pass
        try:
            return gzip.decompress(self.gzip_path_for(key).read_bytes()).decode(
                "utf-8"
            )
        except (OSError, EOFError, ValueError):
            # OSError: absent file or BadGzipFile; EOFError: truncated
            # stream; ValueError/zlib.error-adjacent: mangled bytes.
            return None
        except Exception:
            # zlib.error does not share a useful base with the above.
            return None

    # ---------------------------------------------------------------- writes

    def put(self, report: RunReport, text: str | None = None) -> pathlib.Path:
        """Persist a report; returns the entry path.

        ``text`` lets callers that already hold the report's canonical JSON
        (a sweep worker's wire payload) skip re-serialising; it must be the
        report's :meth:`~repro.engine.report.RunReport.to_json` output.
        """
        if text is None:
            text = report.to_json()
        key = report.key
        if self.compress:
            path = self.gzip_path_for(key)
            body = gzip.compress(text.encode("utf-8"), mtime=0)
        else:
            path = self.path_for(key)
            body = text.encode("utf-8")
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        tmp.write_bytes(body)
        os.replace(tmp, path)
        return path

    def put_many(self, reports: Iterable[RunReport]) -> list[pathlib.Path]:
        """Persist a batch of reports; returns their entry paths."""
        return [self.put(report) for report in reports]

    # ------------------------------------------------------------- LRU layer

    def _remember(self, key: str, report: RunReport) -> None:
        if self._memory_entries == 0:
            return
        self._memory[key] = report
        self._memory.move_to_end(key)
        while len(self._memory) > self._memory_entries:
            self._memory.popitem(last=False)
