"""Content-addressed on-disk result cache for engine runs.

Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the spec's sha256
:meth:`~repro.engine.spec.AbcastRunSpec.cache_key`.  Entries are whole
:class:`~repro.engine.report.RunReport` dicts, written atomically
(temp file + rename) so a crashed run never leaves a half-written entry.
A corrupt or schema-mismatched entry reads as a miss and is re-run, never
trusted.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Union

from repro.engine.report import REPORT_SCHEMA, RunReport
from repro.engine.spec import AbcastRunSpec, RsmRunSpec
from repro.errors import ConfigurationError

__all__ = ["ResultCache"]


class ResultCache:
    """Spec-keyed store of run reports under one directory."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = pathlib.Path(root).expanduser()

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: AbcastRunSpec | RsmRunSpec) -> RunReport | None:
        """The cached report for ``spec``, or None on miss/corruption."""
        path = self.path_for(spec.cache_key())
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or data.get("schema") != REPORT_SCHEMA:
            return None
        # Paranoia against hash collisions and hand-edited entries: the
        # stored spec must describe the run we were asked for.
        if data.get("spec") != spec.to_dict():
            return None
        try:
            return RunReport.from_dict(data)
        except (KeyError, TypeError, ValueError, ConfigurationError):
            # ConfigurationError covers entries whose stored spec no longer
            # decodes (unknown kind/model after a hand edit or version skew);
            # like truncated JSON, that is a miss to re-run, never a crash.
            return None

    def put(self, report: RunReport) -> pathlib.Path:
        """Persist a report; returns the entry path."""
        path = self.path_for(report.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(report.to_dict(), sort_keys=True))
        os.replace(tmp, path)
        return path
