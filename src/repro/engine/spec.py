"""Frozen run-description dataclasses — the single way to describe a run.

A *spec* fully determines a simulated run: protocol (by registry name),
cluster shape, network model, workload and seed.  Because the simulator is
deterministic, a spec is also a *content address* for its result:
:meth:`cache_key` hashes the canonical JSON form, and the sweep engine
(:mod:`repro.engine.runner`) uses that key to skip runs whose results are
already on disk.

The family:

* :class:`ClusterSpec`   — network/fault model shared by all run kinds;
* :class:`TopologySpec`  — consensus-group layout (shard count, members per
  group, key partitioning) of a service run;
* :class:`AbcastRunSpec` — one atomic-broadcast run under an open-loop
  Poisson (or uniform) workload — one cell of a Figure-2/3 sweep;
* :class:`ConsensusRunSpec` — one consensus instance (Table-1 style runs);
* :class:`RsmRunSpec`    — one replicated-state-machine service run, from a
  single group up to a sharded multi-group deployment with cross-shard
  transactions.

This module also pins the paper's testbed calibration (the ``LAN*``
presets previously owned by :mod:`repro.workload.experiment`, which still
re-exports them).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.nemesis.spec import NemesisSpec
from repro.sim.network import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LanDelay,
    LinkCapacity,
    LogNormalDelay,
    UniformDelay,
)

__all__ = [
    "SPEC_VERSION",
    "ClusterSpec",
    "TopologySpec",
    "AbcastRunSpec",
    "ConsensusRunSpec",
    "RsmRunSpec",
    "spec_from_dict",
    "PAPER_LAN",
    "PAPER_THROUGHPUTS",
    "LAN",
    "LAN_DATAGRAM",
    "LAN_CAPACITY",
    "DEFAULT_SERVICE_TIME",
]

#: Bumped whenever spec semantics or the report layout change, so stale
#: cache entries from older code can never be mistaken for current results.
SPEC_VERSION = 1

#: The x axis of Figures 2 and 3.
PAPER_THROUGHPUTS: tuple[int, ...] = (20, 50, 80, 100, 150, 200, 250, 300, 350, 400, 450, 500)

#: One-way delay of the TCP path on the paper's testbed: kernel, JVM and
#: switch traversal dominate on a 2006-era stack — δ ≈ 0.44 ms, mild jitter.
LAN = LanDelay(base=400e-6, jitter_mean=40e-6, jitter_sigma=0.8)

#: The WAB oracle runs on raw UDP: lower base latency than the TCP path but
#: a much heavier jitter tail (no flow control; bursts hit socket buffers).
#: The tail is what breaks spontaneous order once broadcasts overlap.
LAN_DATAGRAM = LanDelay(base=300e-6, jitter_mean=150e-6, jitter_sigma=1.7)

#: Per-port serialisation of the 100 Mb switch: a protocol message occupies
#: a port for ~50 µs.  This is the load-dependent term that bends the
#: latency curves upward and widens the reorder window as load rises.
LAN_CAPACITY = LinkCapacity(frame_time=50e-6, mode="switched")

#: CPU cost per handled event on the 2.8 GHz workstations.
DEFAULT_SERVICE_TIME = 20e-6


# --------------------------------------------------------- model serialisation

_MODEL_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        ConstantDelay,
        UniformDelay,
        ExponentialDelay,
        LogNormalDelay,
        LanDelay,
        LinkCapacity,
    )
}


def _encode_model(model: Any) -> dict | None:
    """Encode a delay/capacity model as ``{"type": ..., **fields}``."""
    if model is None:
        return None
    name = type(model).__name__
    if name not in _MODEL_TYPES:
        raise ConfigurationError(
            f"cannot serialise model {name!r}; specs accept: {sorted(_MODEL_TYPES)}"
        )
    return {"type": name, **dataclasses.asdict(model)}


def _decode_model(data: dict | None) -> Any:
    if data is None:
        return None
    fields = dict(data)
    name = fields.pop("type")
    cls = _MODEL_TYPES.get(name)
    if cls is None:
        raise ConfigurationError(f"unknown model type {name!r} in spec")
    return cls(**fields)


# ----------------------------------------------------------------------- specs


@dataclass(frozen=True)
class ClusterSpec:
    """Network and fault model of a simulated cluster (group size excluded —
    that belongs to the run).  ``None`` delays mean the simulator defaults.

    ``datagram_*`` and ``capacity`` only matter for runs whose protocols use
    the datagram channel / a finite-bandwidth fabric; consensus runs on the
    plain reliable network ignore them.
    """

    delay: DelayModel | None = None
    datagram_delay: DelayModel | None = None
    datagram_loss: float = 0.0
    capacity: LinkCapacity | None = None
    service_time: float = 0.0
    detection_delay: float = 0.0
    initially_crashed: tuple[int, ...] = ()

    def to_dict(self) -> dict:
        return {
            "delay": _encode_model(self.delay),
            "datagram_delay": _encode_model(self.datagram_delay),
            "datagram_loss": self.datagram_loss,
            "capacity": _encode_model(self.capacity),
            "service_time": self.service_time,
            "detection_delay": self.detection_delay,
            "initially_crashed": list(self.initially_crashed),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterSpec":
        return cls(
            delay=_decode_model(data["delay"]),
            datagram_delay=_decode_model(data["datagram_delay"]),
            datagram_loss=data["datagram_loss"],
            capacity=_decode_model(data["capacity"]),
            service_time=data["service_time"],
            detection_delay=data["detection_delay"],
            initially_crashed=tuple(data["initially_crashed"]),
        )


#: The paper's Figure-2/3 testbed: TCP + UDP LAN models, switched 100 Mb
#: fabric, 20 µs/event CPUs.
PAPER_LAN = ClusterSpec(
    delay=LAN,
    datagram_delay=LAN_DATAGRAM,
    capacity=LAN_CAPACITY,
    service_time=DEFAULT_SERVICE_TIME,
)


#: Key-partitioning strategies understood by the shard router.
PARTITIONERS = ("hash", "range")


@dataclass(frozen=True)
class TopologySpec:
    """How a service run is laid out over consensus groups.

    The topology is the *first* question a production deployment answers —
    how many independent replication groups (shards), how many members each,
    and how the key space maps onto them — so it is a first-class, frozen,
    content-addressed part of the run description rather than loose keyword
    arguments.

    ``groups`` is the shard count; each shard runs its own instance of the
    run's abcast protocol over ``group_size`` replicas (``None`` inherits
    the run spec's ``n``, keeping single-group specs unchanged).
    ``partitioner`` maps keys to shards: ``"hash"`` spreads keys by a stable
    CRC-32, ``"range"`` splits the ordered key space into contiguous slices.

    The default topology (one group, inherited size, hash partitioning) is
    *omitted* from spec dicts entirely, so every pre-topology cache key and
    report document is preserved byte-for-byte.
    """

    groups: int = 1
    group_size: int | None = None
    partitioner: str = "hash"

    def __post_init__(self) -> None:
        if self.groups < 1:
            raise ConfigurationError("topology needs at least one group")
        if self.group_size is not None and self.group_size < 2:
            raise ConfigurationError("a consensus group needs at least two members")
        if self.partitioner not in PARTITIONERS:
            raise ConfigurationError(
                f"unknown partitioner {self.partitioner!r}; choices: {PARTITIONERS}"
            )

    @property
    def is_default(self) -> bool:
        return self == TopologySpec()

    def size_for(self, n: int) -> int:
        """Members per group, with ``n`` as the inherited default."""
        return self.group_size if self.group_size is not None else n

    def to_dict(self) -> dict:
        return {
            "groups": self.groups,
            "group_size": self.group_size,
            "partitioner": self.partitioner,
        }

    @classmethod
    def from_dict(cls, data: dict | None) -> "TopologySpec":
        if data is None:
            return cls()
        return cls(
            groups=data["groups"],
            group_size=data["group_size"],
            partitioner=data["partitioner"],
        )


def _append_obs(spec: Any, body: dict) -> dict:
    """Serialize the observability field group only when any is non-default.

    Keeping the keys out of the default serialization preserves cache keys
    and report JSON for every pre-observability spec byte-for-byte.
    """
    if spec.obs or spec.obs_metrics_interval or spec.obs_flight_recorder:
        body["obs"] = spec.obs
        body["obs_metrics_interval"] = spec.obs_metrics_interval
        body["obs_flight_recorder"] = spec.obs_flight_recorder
    return body


def _validate_obs(spec: Any) -> None:
    if spec.obs_metrics_interval < 0:
        raise ConfigurationError("obs_metrics_interval must be >= 0")
    if spec.obs_flight_recorder < 0:
        raise ConfigurationError("obs_flight_recorder must be >= 0")


def _append_batch(spec: Any, body: dict) -> dict:
    """Serialize the kernel-batching flag only when it departs from True.

    ``batch`` selects the sorted-cohort kernel drain and the network fan-out
    fast path; both produce byte-identical results to the serial loops, so
    the default stays out of the dict and every pre-batching spec keeps its
    exact cache key and JSON form.
    """
    if not spec.batch:
        body["batch"] = False
    return body


def _append_nemesis(spec: Any, body: dict) -> dict:
    """Serialize the nemesis schedule only when one is attached (non-empty).

    A spec without faults keeps its exact pre-nemesis dict form, cache key
    and report JSON — the ``nemesis`` key simply never appears.
    """
    if spec.nemesis:
        body["nemesis"] = spec.nemesis.to_dict()
    return body


def _decode_nemesis(data: dict) -> NemesisSpec | None:
    raw = data.get("nemesis")
    if not raw or not raw.get("ops"):
        return None
    return NemesisSpec.from_dict(raw)


def _hash_payload(kind: str, body: dict) -> str:
    canonical = json.dumps(
        {"version": SPEC_VERSION, "kind": kind, **body},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class AbcastRunSpec:
    """One atomic-broadcast run: protocol × cluster × workload × seed.

    The measurement window is ``[warmup, duration]``; the simulation horizon
    is ``duration + drain`` so in-flight messages can finish.  Workload
    payloads must stay JSON-representable for the spec to be hashable.
    """

    protocol: str
    rate: float
    duration: float
    n: int = 4
    seed: int = 0
    warmup: float = 0.0
    drain: float = 1.5
    workload: str = "poisson"
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    crash_at: tuple[tuple[int, float], ...] = ()
    check: bool = True
    require_all_delivered: bool = True
    max_events: int | None = None
    #: Observability (see :mod:`repro.obs`): detailed trace kinds, metrics
    #: sampling interval (virtual seconds, 0 = off) and flight-recorder
    #: capacity (records per pid, 0 = off).
    obs: bool = False
    obs_metrics_interval: float = 0.0
    obs_flight_recorder: int = 0
    #: Kernel/network batched execution (False = serial loops; results are
    #: byte-identical either way, this is an A/B debugging escape hatch).
    batch: bool = True
    #: Optional fault schedule (see :mod:`repro.nemesis`); serialized only
    #: when non-empty, so fault-free specs keep their exact cache keys.
    nemesis: NemesisSpec | None = None

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.duration <= 0:
            raise ConfigurationError("rate and duration must be positive")
        if self.workload not in ("poisson", "uniform"):
            raise ConfigurationError(f"unknown workload {self.workload!r}")
        _validate_obs(self)

    @property
    def horizon(self) -> float:
        return self.duration + self.drain

    def to_dict(self) -> dict:
        body = {
            "kind": "abcast",
            "protocol": self.protocol,
            "rate": self.rate,
            "duration": self.duration,
            "n": self.n,
            "seed": self.seed,
            "warmup": self.warmup,
            "drain": self.drain,
            "workload": self.workload,
            "cluster": self.cluster.to_dict(),
            "crash_at": [list(item) for item in self.crash_at],
            "check": self.check,
            "require_all_delivered": self.require_all_delivered,
            "max_events": self.max_events,
        }
        return _append_nemesis(self, _append_batch(self, _append_obs(self, body)))

    @classmethod
    def from_dict(cls, data: dict) -> "AbcastRunSpec":
        return cls(
            protocol=data["protocol"],
            rate=data["rate"],
            duration=data["duration"],
            n=data["n"],
            seed=data["seed"],
            warmup=data["warmup"],
            drain=data["drain"],
            workload=data["workload"],
            cluster=ClusterSpec.from_dict(data["cluster"]),
            crash_at=tuple((pid, at) for pid, at in data["crash_at"]),
            check=data["check"],
            require_all_delivered=data["require_all_delivered"],
            max_events=data["max_events"],
            obs=data.get("obs", False),
            obs_metrics_interval=data.get("obs_metrics_interval", 0.0),
            obs_flight_recorder=data.get("obs_flight_recorder", 0),
            batch=data.get("batch", True),
            nemesis=_decode_nemesis(data),
        )

    def cache_key(self) -> str:
        """Stable content address of this run's result."""
        body = self.to_dict()
        del body["kind"]
        return _hash_payload("abcast", body)


@dataclass(frozen=True)
class ConsensusRunSpec:
    """One consensus instance; process ``i`` proposes ``proposals[i]``."""

    protocol: str
    proposals: tuple[Any, ...]
    seed: int = 0
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    crash_at: tuple[tuple[int, float], ...] = ()
    propose_at: tuple[tuple[int, float], ...] = ()
    horizon: float = 60.0
    check: bool = True
    require_all_alive_decide: bool = True
    obs: bool = False
    obs_metrics_interval: float = 0.0
    obs_flight_recorder: int = 0
    batch: bool = True
    nemesis: NemesisSpec | None = None

    def __post_init__(self) -> None:
        if len(self.proposals) < 2:
            raise ConfigurationError("consensus needs at least two processes")
        _validate_obs(self)

    @property
    def n(self) -> int:
        return len(self.proposals)

    def to_dict(self) -> dict:
        body = {
            "kind": "consensus",
            "protocol": self.protocol,
            "proposals": list(self.proposals),
            "seed": self.seed,
            "cluster": self.cluster.to_dict(),
            "crash_at": [list(item) for item in self.crash_at],
            "propose_at": [list(item) for item in self.propose_at],
            "horizon": self.horizon,
            "check": self.check,
            "require_all_alive_decide": self.require_all_alive_decide,
        }
        return _append_nemesis(self, _append_batch(self, _append_obs(self, body)))

    @classmethod
    def from_dict(cls, data: dict) -> "ConsensusRunSpec":
        return cls(
            protocol=data["protocol"],
            proposals=tuple(data["proposals"]),
            seed=data["seed"],
            cluster=ClusterSpec.from_dict(data["cluster"]),
            crash_at=tuple((pid, at) for pid, at in data["crash_at"]),
            propose_at=tuple((pid, at) for pid, at in data["propose_at"]),
            horizon=data["horizon"],
            check=data["check"],
            require_all_alive_decide=data["require_all_alive_decide"],
            obs=data.get("obs", False),
            obs_metrics_interval=data.get("obs_metrics_interval", 0.0),
            obs_flight_recorder=data.get("obs_flight_recorder", 0),
            batch=data.get("batch", True),
            nemesis=_decode_nemesis(data),
        )

    def cache_key(self) -> str:
        body = self.to_dict()
        del body["kind"]
        return _hash_payload("consensus", body)


@dataclass(frozen=True)
class RsmRunSpec:
    """One replicated-state-machine service run (see :mod:`repro.rsm`).

    ``clients`` sessions drive ``n`` replicas of a KV state machine over the
    named abcast protocol.  ``rate`` is the aggregate client op rate for the
    open-loop workload; for the closed-loop workload it sets the per-session
    think time (``clients / rate``) so the offered load is comparable.
    ``crash_at`` crashes replicas mid-run; each crashed replica rejoins as a
    learner ``recover_after`` seconds later (``None`` disables recovery),
    restoring its latest snapshot and replaying the suffix from survivors.

    ``topology`` shards the service over many independent consensus groups
    (:class:`TopologySpec`): ``n`` then means *members per group* and
    replica pids run ``0 .. groups×group_size-1`` (``crash_at`` names those
    global pids).  ``txn_clients``/``txn_rate`` add closed-loop transaction
    sessions issuing multi-key cross-shard transactions (``txn_keys`` keys
    each) via two-phase commit over the groups.  All of these serialize
    only when non-default, so single-group specs keep their exact pre-shard
    cache keys and JSON.
    """

    protocol: str
    rate: float
    duration: float
    n: int = 4
    clients: int = 8
    seed: int = 0
    warmup: float = 0.0
    drain: float = 1.5
    workload: str = "open"
    keys: int = 32
    batch_max: int = 8
    batch_delay: float = 2e-3
    snapshot_every: int = 25
    catchup_interval: float = 0.02
    failover_delay: float = 5e-3
    recover_after: float | None = 0.25
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    crash_at: tuple[tuple[int, float], ...] = ()
    check: bool = True
    max_events: int | None = None
    topology: TopologySpec = field(default_factory=TopologySpec)
    txn_clients: int = 0
    txn_rate: float = 0.0
    txn_keys: int = 2
    obs: bool = False
    obs_metrics_interval: float = 0.0
    obs_flight_recorder: int = 0
    #: Kernel-level batched execution (unrelated to the RSM's command
    #: batching knobs ``batch_max``/``batch_delay`` above).
    batch: bool = True
    #: Conservative-parallel execution: one kernel per shard group (see
    #: :mod:`repro.rsm.parallel`).  ``workers`` is the worker-process count
    #: (0 means "decide at run time": 1 process).  Both serialize only when
    #: set, so existing specs keep their exact cache keys.
    parallel: bool = False
    workers: int = 0
    nemesis: NemesisSpec | None = None

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.duration <= 0:
            raise ConfigurationError("rate and duration must be positive")
        if self.workload not in ("open", "closed"):
            raise ConfigurationError(f"unknown workload {self.workload!r}")
        _validate_obs(self)
        if self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")
        if self.workers and not self.parallel:
            raise ConfigurationError(
                "workers is set but parallel is off; set parallel=True "
                "(or drop workers)"
            )
        if self.parallel and self.txn_clients > 0:
            raise ConfigurationError(
                "parallel execution requires txn_clients == 0: cross-shard "
                "2PC sessions would span partition boundaries"
            )
        if self.n < 2:
            raise ConfigurationError("an RSM service needs at least two replicas")
        if self.clients < 1:
            raise ConfigurationError("need at least one client session")
        if (self.txn_clients > 0) != (self.txn_rate > 0):
            raise ConfigurationError(
                "txn_clients and txn_rate must be set together (both > 0)"
            )
        if self.txn_keys < 1:
            raise ConfigurationError("transactions need at least one key")
        if self.topology.groups > self.keys:
            raise ConfigurationError(
                f"{self.topology.groups} shards cannot partition {self.keys} keys"
            )
        group_size = self.topology.size_for(self.n)
        if group_size < 2:
            raise ConfigurationError("an RSM service needs at least two replicas")
        crashes_per_shard: dict[int, int] = {}
        for pid, _ in self.crash_at:
            if not 0 <= pid < self.total_replicas:
                raise ConfigurationError(f"crash_at names unknown replica {pid}")
            shard = pid // group_size
            crashes_per_shard[shard] = crashes_per_shard.get(shard, 0) + 1
        for shard, count in crashes_per_shard.items():
            if count >= group_size:
                raise ConfigurationError(
                    f"cannot crash every replica of shard {shard}"
                )

    @property
    def group_size(self) -> int:
        """Replicas per consensus group (``topology.group_size`` or ``n``)."""
        return self.topology.size_for(self.n)

    @property
    def total_replicas(self) -> int:
        """Replicas across all groups (shards × group size)."""
        return self.topology.groups * self.group_size

    @property
    def is_sharded(self) -> bool:
        """True when the run needs the multi-group execution path."""
        return self.topology.groups > 1 or self.txn_clients > 0

    @property
    def horizon(self) -> float:
        return self.duration + self.drain

    def to_dict(self) -> dict:
        body = {
            "kind": "rsm",
            "protocol": self.protocol,
            "rate": self.rate,
            "duration": self.duration,
            "n": self.n,
            "clients": self.clients,
            "seed": self.seed,
            "warmup": self.warmup,
            "drain": self.drain,
            "workload": self.workload,
            "keys": self.keys,
            "batch_max": self.batch_max,
            "batch_delay": self.batch_delay,
            "snapshot_every": self.snapshot_every,
            "catchup_interval": self.catchup_interval,
            "failover_delay": self.failover_delay,
            "recover_after": self.recover_after,
            "cluster": self.cluster.to_dict(),
            "crash_at": [list(item) for item in self.crash_at],
            "check": self.check,
            "max_events": self.max_events,
        }
        # The topology field group serializes only when any member departs
        # from the defaults: single-group specs keep their exact pre-shard
        # dict form, cache keys and report JSON.
        if not (
            self.topology.is_default
            and self.txn_clients == 0
            and self.txn_rate == 0.0
            and self.txn_keys == 2
        ):
            body["topology"] = self.topology.to_dict()
            body["txn_clients"] = self.txn_clients
            body["txn_rate"] = self.txn_rate
            body["txn_keys"] = self.txn_keys
        # Parallel execution is a different (still deterministic) sample of
        # the workload — per-shard RNG streams instead of one shared kernel
        # stream — so it must cache separately; serial specs keep their
        # exact pre-parallel dict form and cache keys.
        if self.parallel or self.workers:
            body["parallel"] = self.parallel
            body["workers"] = self.workers
        return _append_nemesis(self, _append_batch(self, _append_obs(self, body)))

    @classmethod
    def from_dict(cls, data: dict) -> "RsmRunSpec":
        return cls(
            protocol=data["protocol"],
            rate=data["rate"],
            duration=data["duration"],
            n=data["n"],
            clients=data["clients"],
            seed=data["seed"],
            warmup=data["warmup"],
            drain=data["drain"],
            workload=data["workload"],
            keys=data["keys"],
            batch_max=data["batch_max"],
            batch_delay=data["batch_delay"],
            snapshot_every=data["snapshot_every"],
            catchup_interval=data["catchup_interval"],
            failover_delay=data["failover_delay"],
            recover_after=data["recover_after"],
            cluster=ClusterSpec.from_dict(data["cluster"]),
            crash_at=tuple((pid, at) for pid, at in data["crash_at"]),
            check=data["check"],
            max_events=data["max_events"],
            topology=TopologySpec.from_dict(data.get("topology")),
            txn_clients=data.get("txn_clients", 0),
            txn_rate=data.get("txn_rate", 0.0),
            txn_keys=data.get("txn_keys", 2),
            obs=data.get("obs", False),
            obs_metrics_interval=data.get("obs_metrics_interval", 0.0),
            obs_flight_recorder=data.get("obs_flight_recorder", 0),
            batch=data.get("batch", True),
            parallel=data.get("parallel", False),
            workers=data.get("workers", 0),
            nemesis=_decode_nemesis(data),
        )

    def cache_key(self) -> str:
        body = self.to_dict()
        del body["kind"]
        return _hash_payload("rsm", body)


def spec_from_dict(data: dict) -> "AbcastRunSpec | ConsensusRunSpec | RsmRunSpec":
    """Rebuild a spec from its JSON dict form (inverse of ``to_dict``)."""
    kind = data.get("kind")
    if kind == "abcast":
        return AbcastRunSpec.from_dict(data)
    if kind == "consensus":
        return ConsensusRunSpec.from_dict(data)
    if kind == "rsm":
        return RsmRunSpec.from_dict(data)
    raise ConfigurationError(f"unknown spec kind {kind!r}")
