"""Parallel experiment engine: run specs, result cache, sweep executor.

The engine turns the paper's evaluation grid (protocol × rate × seed) into
data-described, content-addressed, embarrassingly parallel work:

* :mod:`repro.engine.spec` — frozen :class:`RunSpec` family describing runs;
* :mod:`repro.engine.report` — structured, JSON-serialisable results;
* :mod:`repro.engine.cache` — on-disk cache keyed by spec hash;
* :mod:`repro.engine.runner` — the parallel executor (``run_sweep``).

Quick use::

    from repro.engine import AbcastRunSpec, PAPER_LAN, run_sweep, sweep_grid

    specs = sweep_grid(["cabcast-p", "wabcast"], rates=[20, 100, 300],
                       duration=1.5, warmup=0.3, cluster=PAPER_LAN)
    result = run_sweep(specs, jobs=4, cache="~/.cache/repro-sweeps")
    for report in result.reports:
        print(report.protocol, report.rate, report.mean_latency_ms)
"""

from repro.engine.cache import ResultCache
from repro.engine.pool import (
    WorkerPool,
    available_cpus,
    estimate_cost,
    plan_chunks,
    shared_pool,
    shutdown_shared_pool,
)
from repro.engine.report import REPORT_SCHEMA, RunReport
from repro.engine.runner import (
    SweepError,
    SweepResult,
    execute_run,
    rsm_sweep_grid,
    run_abcast_spec,
    run_consensus_spec,
    run_rsm_spec,
    run_sweep,
    sweep_grid,
)
from repro.engine.context import RunContext
from repro.engine.spec import (
    DEFAULT_SERVICE_TIME,
    LAN,
    LAN_CAPACITY,
    LAN_DATAGRAM,
    PAPER_LAN,
    PAPER_THROUGHPUTS,
    SPEC_VERSION,
    AbcastRunSpec,
    ClusterSpec,
    ConsensusRunSpec,
    RsmRunSpec,
    TopologySpec,
    spec_from_dict,
)

__all__ = [
    "AbcastRunSpec",
    "ClusterSpec",
    "ConsensusRunSpec",
    "RsmRunSpec",
    "TopologySpec",
    "RunContext",
    "spec_from_dict",
    "SPEC_VERSION",
    "PAPER_LAN",
    "PAPER_THROUGHPUTS",
    "LAN",
    "LAN_DATAGRAM",
    "LAN_CAPACITY",
    "DEFAULT_SERVICE_TIME",
    "RunReport",
    "REPORT_SCHEMA",
    "ResultCache",
    "SweepError",
    "SweepResult",
    "WorkerPool",
    "available_cpus",
    "estimate_cost",
    "plan_chunks",
    "shared_pool",
    "shutdown_shared_pool",
    "run_sweep",
    "execute_run",
    "run_abcast_spec",
    "run_consensus_spec",
    "run_rsm_spec",
    "sweep_grid",
    "rsm_sweep_grid",
]
