"""Persistent worker pools and cost-aware scheduling for sweep execution.

A sweep is an embarrassingly parallel grid whose cells differ wildly in
cost — a 500 msg/s Figure-2 cell does ~25× the work of a 20 msg/s cell —
and whose fixed costs (process spawn, interpreter warm-up, module imports)
recur on every ``run_sweep`` call when each sweep cold-starts its own
executor.  This module amortises and re-orders that work:

* :class:`WorkerPool` wraps a :class:`~concurrent.futures.ProcessPoolExecutor`
  whose workers pre-import the harness, protocol and workload modules
  (:func:`_warm_import`), and :func:`shared_pool` keeps one pool alive for
  the whole process so back-to-back sweeps in a CLI or benchmark session
  reuse warm workers;
* :func:`estimate_cost` scores a spec by the work it implies
  (``rate × duration × group size``), and :func:`plan_chunks` orders cells
  longest-first (LPT) in adaptive chunks, so the expensive cells start
  first and the cheap ones pad out the tail instead of serialising it;
* :func:`run_chunk` is the worker-side entry point: it executes each spec
  and returns the report as canonical JSON bytes — a compact, stable wire
  format — instead of a pickled object graph, and reports per-spec failures
  as data so the parent can keep every completed cell.

:func:`available_cpus` is the clamp used by ``run_sweep(jobs=N)``: asking
for more workers than schedulable CPUs only adds contention.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Future

__all__ = [
    "WorkerPool",
    "available_cpus",
    "estimate_cost",
    "plan_chunks",
    "run_chunk",
    "shared_pool",
    "shutdown_shared_pool",
]

#: Modules imported by every worker at spawn, before the first task: the
#: harness pulls in the kernel/network/node stack, the protocol package
#: registers every factory, and the workload module covers the generators.
WARM_MODULES = ("repro.harness", "repro.protocols", "repro.workload")

#: Chunks planned per worker: enough granularity that a straggler chunk is
#: a small fraction of a worker's share, few enough that per-chunk IPC stays
#: amortised across cheap cells.
CHUNKS_PER_WORKER = 4


def _warm_import() -> None:
    """Worker initializer: preload the heavy modules once per process."""
    import importlib

    for name in WARM_MODULES:
        importlib.import_module(name)


def _noop() -> None:
    """Sentinel task used to force worker spawn during :meth:`WorkerPool.warm`."""


def available_cpus() -> int:
    """CPUs this process may actually schedule on (affinity-aware).

    ``sched_getaffinity`` sees container/cgroup CPU masks that a bare
    ``os.cpu_count()`` ignores; platforms without it fall back to the count.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def estimate_cost(spec) -> float:
    """Relative cost of executing ``spec``: offered events × replica count.

    ``rate × duration`` approximates the message count a run must simulate
    and the replica count scales the per-message fan-out; RSM specs add
    their client sessions, whose open/closed-loop drivers generate
    comparable event churn.  Sharded cells count *total* replicas (shards ×
    group size) plus the transaction sessions — a 8×3 topology simulates
    24 replicas' worth of events, not 3 — so the LPT scheduler ships wide
    topologies first.  The estimate only needs to *rank* cells for
    scheduling — any spec without the workload fields scores a neutral 1.0.
    """
    rate = getattr(spec, "rate", None)
    duration = getattr(spec, "duration", None)
    if rate is None or duration is None:
        return 1.0
    replicas = getattr(spec, "total_replicas", None)
    if replicas is None:
        replicas = getattr(spec, "n", 1)
    group = (
        replicas
        + getattr(spec, "clients", 0)
        + getattr(spec, "txn_clients", 0)
    )
    return float(rate) * float(duration) * float(group)


def plan_chunks(
    items: Sequence[tuple[int, object]], workers: int
) -> list[list[tuple[int, object]]]:
    """Partition ``(index, spec)`` cells into LPT-ordered dispatch chunks.

    Cells are sorted by descending :func:`estimate_cost` (ties broken by
    original index, so planning is deterministic) and greedily packed into
    chunks of roughly ``total_cost / (workers × CHUNKS_PER_WORKER)``: the
    expensive cells ship first — each alone in its chunk — and the cheap
    tail cells share chunks so their IPC round-trips amortise.
    """
    costed = sorted(
        ((estimate_cost(spec), index, spec) for index, spec in items),
        key=lambda entry: (-entry[0], entry[1]),
    )
    total = sum(cost for cost, _, _ in costed)
    budget = total / max(1, workers * CHUNKS_PER_WORKER)
    chunks: list[list[tuple[int, object]]] = []
    current: list[tuple[int, object]] = []
    current_cost = 0.0
    for cost, index, spec in costed:
        if current and current_cost + cost > budget:
            chunks.append(current)
            current, current_cost = [], 0.0
        current.append((index, spec))
        current_cost += cost
    if current:
        chunks.append(current)
    return chunks


def run_chunk(
    chunk: list[tuple[int, object]], workers_cap: int | None = None
) -> list[tuple[int, str, bytes]]:
    """Worker entry point: execute each spec, return canonical JSON bytes.

    Returns one ``(index, status, payload)`` triple per cell — ``("ok",
    report-JSON)`` or ``("err", error-text)``.  Failures are data, not
    exceptions, so one bad cell never discards the completed cells sharing
    its chunk, and the parent can attribute the failure to the exact spec.
    The JSON payload is byte-identical to what the serial path would write
    to the cache (:meth:`RunReport.to_json`), so shipping it instead of a
    pickled ``RunReport`` both shrinks IPC and lets the parent write cache
    entries without re-serialising.

    ``REPRO_KERNEL_BATCH=0`` in the worker's environment forces every spec
    onto the serial kernel/network paths (``batch=False``) for A/B
    debugging.  Reports are byte-identical either way, and the parent keys
    the cache by its own copy of the spec, so cache keys are unaffected.

    ``workers_cap`` bounds how many processes a conservative-parallel cell
    may spawn of its own (the sweep scheduler's share of the CPU budget).
    It is an execution parameter, never merged into the spec: clamping a
    cell must not change its cache key or any deterministic output.
    """
    from dataclasses import replace

    from repro.engine.runner import execute_run

    force_serial = os.environ.get("REPRO_KERNEL_BATCH") == "0"
    out: list[tuple[int, str, bytes]] = []
    for index, spec in chunk:
        try:
            if force_serial and getattr(spec, "batch", True):
                spec = replace(spec, batch=False)
            report = execute_run(spec, workers_cap=workers_cap)
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            message = f"{type(exc).__name__}: {exc}"
            out.append((index, "err", message.encode("utf-8")))
            continue
        out.append((index, "ok", report.to_json().encode("utf-8")))
    return out


class WorkerPool:
    """A reusable process pool with warm-imported workers.

    Unlike the one-shot executor a ``with ProcessPoolExecutor(...)`` block
    gives, a :class:`WorkerPool` survives across sweeps: the processes (and
    their imported module graphs) are paid for once per session.  Use
    :func:`shared_pool` for the process-wide instance.
    """

    def __init__(self, workers: int) -> None:
        # Imported lazily so `import repro.engine` stays free of the
        # executor machinery until a parallel sweep actually needs it.
        from concurrent.futures import ProcessPoolExecutor

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor = ProcessPoolExecutor(
            max_workers=workers, initializer=_warm_import
        )

    @property
    def broken(self) -> bool:
        """True once a worker died and the executor can't accept work."""
        return bool(getattr(self._executor, "_broken", False))

    def submit_chunk(
        self, chunk: list[tuple[int, object]], workers_cap: int | None = None
    ) -> Future:
        return self._executor.submit(run_chunk, chunk, workers_cap)

    def warm(self) -> None:
        """Spawn (and warm-import) every worker now rather than lazily."""
        futures = [self._executor.submit(_noop) for _ in range(self.workers)]
        for future in futures:
            future.result()

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)


_shared_pool: WorkerPool | None = None


def shared_pool(workers: int) -> WorkerPool:
    """The process-wide :class:`WorkerPool`, (re)created only when needed.

    A pool at least ``workers`` wide is reused as-is — warm workers beat an
    exact width, and callers bound their own in-flight work — while a
    narrower or broken pool is replaced.
    """
    global _shared_pool
    pool = _shared_pool
    if pool is not None and (pool.broken or pool.workers < workers):
        pool.shutdown()
        pool = None
    if pool is None:
        pool = _shared_pool = WorkerPool(workers)
        # Tear the pool down before the interpreter unloads multiprocessing:
        # a pool merely garbage-collected at exit races that teardown and
        # spews "Exception ignored in: weakref_cb" noise.
        import atexit

        atexit.register(shutdown_shared_pool)
    return pool


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (tests and explicit session cleanup)."""
    global _shared_pool
    if _shared_pool is not None:
        _shared_pool.shutdown()
        _shared_pool = None
