"""Per-run execution context: one object instead of parallel keyword plumbing.

Every runner used to thread ``tracer=`` and ``obs=`` keywords separately
through the call chain (``execute_run`` → ``run_rsm_spec`` → ``run_rsm`` →
replicas), and each layer re-implemented the "adopt the obs runtime's
tracer" rule.  :class:`RunContext` collapses that into a single value with
one resolution rule, applied once at the runner boundary.

The legacy keywords remain accepted everywhere (``run_abcast(...,
tracer=t)`` and friends keep working unchanged) but are deprecated: new
code should build a :class:`RunContext` and pass ``ctx=``.  Passing both a
context and a legacy keyword is a configuration error — silently preferring
one would hide bugs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError
from repro.sim.trace import Tracer

__all__ = ["RunContext"]


@dataclass
class RunContext:
    """Everything observational a single run carries: tracer + obs runtime.

    ``tracer`` receives the always-on trace kinds (a-broadcast/a-deliver/
    decide); ``obs`` is the opt-in :class:`~repro.obs.ObsRuntime` switching
    on detailed kinds, metrics sampling and the flight recorder.  When only
    ``obs`` is supplied, the context adopts its tracer so both views observe
    the same record stream.
    """

    tracer: Tracer | None = None
    obs: Any = None

    def __post_init__(self) -> None:
        if self.obs is not None and self.tracer is None:
            self.tracer = self.obs.tracer

    @classmethod
    def resolve(
        cls, ctx: "RunContext | None", tracer: Tracer | None, obs: Any
    ) -> "RunContext":
        """Normalise a runner's ``(ctx, tracer, obs)`` arguments.

        This is the single entry point for the deprecation path: legacy
        ``tracer=``/``obs=`` keywords are folded into a fresh context, an
        explicit ``ctx`` is passed through, and mixing the two styles is
        rejected.
        """
        if ctx is not None:
            if tracer is not None or obs is not None:
                raise ConfigurationError(
                    "pass either ctx= or the legacy tracer=/obs= keywords, not both"
                )
            return ctx
        return cls(tracer=tracer, obs=obs)

    def attach_failure(self, err: BaseException) -> BaseException:
        """Pin the flight recorder onto a checker error (no-op without obs)."""
        if self.obs is not None:
            self.obs.attach_failure(err)
        return err

    @property
    def detail(self) -> bool:
        """True when detailed (obs) tracing is on for this run."""
        return self.obs is not None and self.obs.detail
