"""Parallel sweep executor: run spec grids over worker processes, cached.

The simulator is deterministic and fully seed-keyed, so a grid of runs
(protocol × rate × seed) is embarrassingly parallel: :func:`run_sweep` fans
the cache misses out over the persistent :mod:`repro.engine.pool` worker
pool — cost-ordered, longest jobs first — and stitches results back in
spec order *as they complete*.  Each finished cell is written to the
:class:`ResultCache` immediately (write-behind), so an interrupted or
failed sweep resumes from its completed cells, and an optional ``progress``
callback observes every landing cell.  With a cache attached, re-running a
sweep only executes changed cells — the Figure-2/3 grids and the benchmark
suite become incremental.

:func:`run_abcast_spec` / :func:`run_consensus_spec` are the spec-driven
entry points behind the polymorphic :func:`repro.harness.run_abcast` /
``run_consensus`` (which accept a spec in place of a factory).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Sequence, Union

from repro.engine.cache import ResultCache
from repro.engine.context import RunContext
from repro.engine.report import RunReport
from repro.engine.spec import (
    AbcastRunSpec,
    ClusterSpec,
    ConsensusRunSpec,
    RsmRunSpec,
    TopologySpec,
)
from repro.errors import ConfigurationError, ReproError
from repro.harness.registry import ABCAST, CONSENSUS, get_protocol
from repro.sim.trace import Tracer
from repro.workload.metrics import summarize

__all__ = [
    "SweepError",
    "SweepResult",
    "run_sweep",
    "execute_run",
    "run_abcast_spec",
    "run_consensus_spec",
    "run_rsm_spec",
    "sweep_grid",
    "rsm_sweep_grid",
    "window_latencies",
]


def run_abcast_spec(
    spec: AbcastRunSpec,
    tracer: Tracer | None = None,
    obs=None,
    ctx: RunContext | None = None,
):
    """Execute one atomic-broadcast spec; returns an ``AbcastRunResult``.

    This is the canonical path: it resolves the protocol through the
    registry, generates the workload from the spec and drives the same
    :func:`repro.harness.abcast_runner.run_abcast` machinery as the legacy
    kwarg signature — same seed, same spec → identical results.  Pass
    observation through ``ctx`` (a :class:`RunContext`); the separate
    ``tracer=``/``obs=`` keywords are the deprecated spelling.
    """
    from repro.harness.abcast_runner import run_abcast

    ctx = RunContext.resolve(ctx, tracer, obs)
    info = get_protocol(spec.protocol, kind=ABCAST)
    cluster = spec.cluster
    return run_abcast(
        info.factory,
        spec.n,
        _build_schedules(spec),
        seed=spec.seed,
        delay=cluster.delay,
        datagram_delay=cluster.datagram_delay,
        datagram_loss=cluster.datagram_loss,
        service_time=cluster.service_time,
        crash_at=dict(spec.crash_at) or None,
        initially_crashed=cluster.initially_crashed,
        detection_delay=cluster.detection_delay,
        horizon=spec.horizon,
        check=spec.check,
        require_all_delivered=spec.require_all_delivered,
        max_events=spec.max_events,
        capacity=cluster.capacity,
        batch=spec.batch,
        nemesis=spec.nemesis,
        ctx=ctx,
    )


def run_consensus_spec(
    spec: ConsensusRunSpec,
    tracer: Tracer | None = None,
    obs=None,
    ctx: RunContext | None = None,
):
    """Execute one consensus spec; returns a ``ConsensusRunResult``."""
    from repro.harness.consensus_runner import run_consensus

    ctx = RunContext.resolve(ctx, tracer, obs)
    info = get_protocol(spec.protocol, kind=CONSENSUS)
    cluster = spec.cluster
    return run_consensus(
        info.factory,
        {pid: value for pid, value in enumerate(spec.proposals)},
        seed=spec.seed,
        delay=cluster.delay,
        crash_at=dict(spec.crash_at) or None,
        initially_crashed=cluster.initially_crashed,
        detection_delay=cluster.detection_delay,
        propose_at=dict(spec.propose_at) or None,
        horizon=spec.horizon,
        check=spec.check,
        require_all_alive_decide=spec.require_all_alive_decide,
        service_time=cluster.service_time,
        batch=spec.batch,
        nemesis=spec.nemesis,
        ctx=ctx,
    )


def run_rsm_spec(
    spec: RsmRunSpec,
    tracer: Tracer | None = None,
    obs=None,
    ctx: RunContext | None = None,
    workers_cap: int | None = None,
):
    """Execute one RSM service spec; returns an ``RsmRunResult`` (or a
    ``ShardedRsmRunResult`` when the spec's topology asks for shards or the
    workload includes cross-shard transactions).  ``workers_cap`` bounds the
    conservative-parallel path's worker processes — an execution knob, never
    part of the spec or its cache key."""
    from repro.rsm.runner import run_rsm

    return run_rsm(
        spec, ctx=RunContext.resolve(ctx, tracer, obs), workers_cap=workers_cap
    )


def _obs_runtime(spec, tracer: Tracer):
    """The spec's :class:`~repro.obs.ObsRuntime`, or ``None`` when all obs
    knobs sit at their defaults (the import itself is then skipped too)."""
    if not (
        getattr(spec, "obs", False)
        or getattr(spec, "obs_metrics_interval", 0.0)
        or getattr(spec, "obs_flight_recorder", 0)
    ):
        return None
    from repro.obs import ObsRuntime

    return ObsRuntime.from_spec(spec, tracer=tracer)


def _build_schedules(spec: AbcastRunSpec):
    # Imported lazily: repro.workload's package __init__ pulls in the
    # experiment module, which imports this package.
    from repro.workload.generator import poisson_schedule, uniform_schedule

    if spec.workload == "poisson":
        return poisson_schedule(spec.n, spec.rate, spec.duration, seed=spec.seed)
    return uniform_schedule(spec.n, spec.rate, spec.duration)


def window_latencies(result, warmup: float, duration: float) -> tuple[int, list[float]]:
    """(offered, latencies) over messages a-broadcast in ``[warmup, duration]``."""
    window_ids = [
        mid for mid, msg in result.broadcast.items() if warmup <= msg.sent_at <= duration
    ]
    latencies = [
        lat for mid in window_ids if (lat := result.latency_of(mid)) is not None
    ]
    return len(window_ids), latencies


def execute_run(
    spec: AbcastRunSpec | RsmRunSpec,
    collect_perf: bool = False,
    ctx: RunContext | None = None,
    workers_cap: int | None = None,
) -> RunReport:
    """Run one spec to completion and distil it into a :class:`RunReport`.

    Top-level (picklable) so worker processes can execute it by reference.
    Dispatches on the spec kind, so abcast and RSM cells can share one sweep
    grid.  ``collect_perf`` additionally times the run against the wall clock
    and attaches a :mod:`repro.perf` section (``report.perf``); the default
    path never reads the clock, so normal sweeps are unaffected.

    ``ctx`` lets a caller supply the run's :class:`RunContext` and keep hold
    of the tracer afterwards — ``repro obs record`` uses this to fold the
    trace into a warehouse entry alongside the report.  A ctx without a
    tracer is rejected for RSM specs (the report's trace counts and commit
    latencies come from it).
    """
    if isinstance(spec, RsmRunSpec):
        if ctx is not None and ctx.tracer is None:
            raise ConfigurationError(
                "execute_run(ctx=...) for an RSM spec needs a ctx with a tracer"
            )
        return _execute_rsm_run(
            spec, collect_perf=collect_perf, workers_cap=workers_cap, ctx=ctx
        )
    if ctx is None:
        tracer = Tracer()
        ctx = RunContext(tracer=tracer, obs=_obs_runtime(spec, tracer))
    else:
        tracer = ctx.tracer
    obs = ctx.obs
    perf = None
    if collect_perf:
        from time import perf_counter

        from repro.perf import collect

        wall_start = perf_counter()
        result = run_abcast_spec(spec, ctx=ctx)
        wall_seconds = perf_counter() - wall_start
        perf = collect(
            result.sim,
            wall_seconds=wall_seconds,
            network_stats=result.network_stats,
            nodes=result.nodes,
            trace_counts=tracer.counts(),
        ).to_dict()
    else:
        result = run_abcast_spec(spec, ctx=ctx)
    offered, latencies = window_latencies(result, spec.warmup, spec.duration)
    return RunReport(
        spec=spec,
        key=spec.cache_key(),
        offered=offered,
        delivered=len(latencies),
        latencies=tuple(latencies),
        summary=summarize(latencies),
        network=result.network_stats,
        trace_counts=tracer.counts(),
        sim_time=result.duration,
        perf=perf,
        obs=obs.section() if obs is not None else None,
    )


def _execute_rsm_run(
    spec: RsmRunSpec,
    collect_perf: bool = False,
    workers_cap: int | None = None,
    ctx: RunContext | None = None,
) -> RunReport:
    """Run one RSM spec into a :class:`RunReport` with an ``rsm`` section."""
    from repro.rsm.runner import service_metrics, window_commit_latencies

    if ctx is None:
        tracer = Tracer()
        ctx = RunContext(tracer=tracer, obs=_obs_runtime(spec, tracer))
    else:
        tracer = ctx.tracer
    obs = ctx.obs
    perf = None
    if collect_perf:
        from time import perf_counter

        from repro.perf import collect

        wall_start = perf_counter()
        result = run_rsm_spec(spec, ctx=ctx, workers_cap=workers_cap)
        wall_seconds = perf_counter() - wall_start
        stats = getattr(result, "parallel_stats", None)
        perf = collect(
            result.sim,
            wall_seconds=wall_seconds,
            network_stats=result.network_stats,
            nodes=result.nodes,
            trace_counts=tracer.counts(),
            parallel=stats.to_dict() if stats is not None else None,
        ).to_dict()
    else:
        result = run_rsm_spec(spec, ctx=ctx, workers_cap=workers_cap)
    offered, latencies = window_commit_latencies(result)
    return RunReport(
        spec=spec,
        key=spec.cache_key(),
        offered=offered,
        delivered=len(latencies),
        latencies=tuple(latencies),
        summary=summarize(latencies),
        network=result.network_stats,
        trace_counts=tracer.counts(),
        sim_time=result.duration,
        perf=perf,
        rsm=service_metrics(result),
        obs=obs.section() if obs is not None else None,
    )


class SweepError(ReproError):
    """One or more sweep cells failed.

    Every cell that completed before the failure surfaced is already in the
    cache (write-behind), so re-running the sweep only re-executes the
    unfinished cells.  ``failures`` holds ``(spec_key, message)`` pairs in
    the order the failures were observed; :attr:`spec_key` is the offending
    key of the first one.
    """

    def __init__(self, failures: Sequence[tuple[str, str]]) -> None:
        self.failures = tuple(failures)
        key, message = self.failures[0]
        extra = f" (+{len(self.failures) - 1} more)" if len(self.failures) > 1 else ""
        super().__init__(f"sweep cell {key} failed: {message}{extra}")

    @property
    def spec_key(self) -> str:
        return self.failures[0][0]


@dataclass
class SweepResult:
    """Reports of one sweep, in spec order, plus cache accounting.

    ``notes`` carries human-readable scheduling remarks (currently: the
    jobs-clamped-to-CPUs note); the CLI echoes them to stderr.
    """

    reports: list[RunReport]
    cache_hits: int = 0
    cache_misses: int = 0
    notes: tuple[str, ...] = ()

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def by_protocol(self) -> dict[str, list[RunReport]]:
        out: dict[str, list[RunReport]] = {}
        for report in self.reports:
            out.setdefault(report.protocol, []).append(report)
        return out


CacheLike = Union[ResultCache, str, os.PathLike, None]

#: Progress observer: called as ``progress(done, total, report)`` once after
#: the cache scan (``report=None``) and once per freshly completed cell.
ProgressCallback = Callable[[int, int, "RunReport | None"], None]


def _as_cache(cache: CacheLike) -> ResultCache | None:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def run_sweep(
    specs: Sequence[AbcastRunSpec | RsmRunSpec],
    jobs: int = 1,
    cache: CacheLike = None,
    progress: ProgressCallback | None = None,
    clamp_jobs: bool = True,
) -> SweepResult:
    """Execute a grid of abcast/RSM specs, parallel across processes, cached.

    ``jobs`` > 1 fans cache misses over the persistent worker pool
    (:mod:`repro.engine.pool`): cells are dispatched longest-first in
    adaptive chunks, stitched back in as they complete, and each freshly
    executed report is written to ``cache`` immediately, so killing a sweep
    mid-grid loses nothing that finished.  Runs are independent
    deterministic simulations, so reports are byte-identical to serial
    execution (same ``cache_key``, same canonical JSON); parallel-fresh
    reports are decoded from that JSON, exactly like reports read back from
    the cache.

    ``jobs`` exceeding the schedulable CPUs is clamped (oversubscription
    only adds contention) and noted in ``SweepResult.notes``; pass
    ``clamp_jobs=False`` to force the requested width (tests/benchmarks).
    ``cache`` — a directory path or :class:`ResultCache` — serves unchanged
    cells from disk and persists fresh ones.  ``progress`` observes
    completion: ``progress(done, total, report)`` after the cache scan
    (``report=None``) and per fresh cell.

    A failing cell raises :class:`SweepError` carrying the offending spec's
    key — after every already-running cell has been drained into the cache.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    # Imported lazily: single-job CLI start-up stays free of pool machinery.
    from repro.engine.pool import available_cpus

    notes: list[str] = []
    if clamp_jobs and jobs > 1:
        cpus = available_cpus()
        if jobs > cpus:
            notes.append(f"jobs clamped from {jobs} to {cpus} available CPU(s)")
            jobs = cpus

    # Nested parallelism: a conservative-parallel cell spawns spec.workers
    # processes of its own.  Clamp the per-cell width so jobs × workers never
    # oversubscribes the schedulable CPUs — an execution cap only, threaded
    # beside the spec, so cache keys and deterministic outputs are untouched.
    workers_cap: int | None = None
    if jobs > 1:
        max_workers = max(
            (
                spec.workers or 1
                for spec in specs
                if getattr(spec, "parallel", False)
            ),
            default=1,
        )
        cpus = available_cpus()
        if jobs * max_workers > cpus:
            workers_cap = max(1, cpus // jobs)
            if workers_cap < max_workers:
                notes.append(
                    f"per-cell workers clamped to {workers_cap} so that "
                    f"{jobs} jobs × {max_workers} workers fit "
                    f"{cpus} available CPU(s)"
                )
            else:
                workers_cap = None

    store = _as_cache(cache)
    total = len(specs)
    reports: list[RunReport | None] = [None] * total
    pending: list[tuple[int, AbcastRunSpec | RsmRunSpec]] = []
    hits = 0
    if store is not None:
        for index, cached in enumerate(store.get_many(specs)):
            if cached is not None:
                reports[index] = cached
                hits += 1
            else:
                pending.append((index, specs[index]))
    else:
        pending = list(enumerate(specs))

    if progress is not None:
        progress(hits, total, None)

    if pending:
        if jobs > 1 and len(pending) > 1:
            _run_parallel(
                pending, jobs, reports, store, progress, hits, total, workers_cap
            )
        else:
            done = hits
            for index, spec in pending:
                try:
                    report = execute_run(spec, workers_cap=workers_cap)
                except Exception as exc:
                    raise SweepError(
                        [(spec.cache_key(), f"{type(exc).__name__}: {exc}")]
                    ) from exc
                reports[index] = report
                if store is not None:
                    store.put(report)
                done += 1
                if progress is not None:
                    progress(done, total, report)

    return SweepResult(
        reports=reports,
        cache_hits=hits,
        cache_misses=len(pending),
        notes=tuple(notes),
    )


def _run_parallel(
    pending: list[tuple[int, AbcastRunSpec | RsmRunSpec]],
    jobs: int,
    reports: list[RunReport | None],
    store: ResultCache | None,
    progress: ProgressCallback | None,
    hits: int,
    total: int,
    workers_cap: int | None = None,
) -> None:
    """Fan ``pending`` cells over the shared pool, streaming results in.

    Chunks are dispatched longest-first with at most ``jobs`` in flight (the
    shared pool may be wider than this sweep asked for).  Results land via
    ``FIRST_COMPLETED`` waits: each report is stitched into ``reports`` and
    written behind to ``store`` the moment its chunk finishes.  On failure,
    no new chunks are submitted, the in-flight ones are drained (their
    completed cells still cached), and a :class:`SweepError` surfaces the
    offending spec keys.
    """
    from concurrent.futures import FIRST_COMPLETED, wait

    from repro.engine.pool import plan_chunks, shared_pool

    pool = shared_pool(jobs)
    chunk_iter = iter(plan_chunks(pending, jobs))
    in_flight = {}
    for _ in range(jobs):
        chunk = next(chunk_iter, None)
        if chunk is None:
            break
        in_flight[pool.submit_chunk(chunk, workers_cap=workers_cap)] = chunk

    by_index = dict(pending)
    failures: list[tuple[str, str]] = []
    done = hits
    while in_flight:
        finished, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
        for future in finished:
            chunk = in_flight.pop(future)
            try:
                results = future.result()
            except Exception as exc:  # pool-level death (BrokenProcessPool)
                key = by_index[chunk[0][0]].cache_key()
                failures.append((key, f"{type(exc).__name__}: {exc}"))
                continue
            for index, status, payload in results:
                text = payload.decode("utf-8")
                if status != "ok":
                    failures.append((by_index[index].cache_key(), text))
                    continue
                report = RunReport.from_dict(json.loads(text))
                reports[index] = report
                if store is not None:
                    store.put(report, text=text)
                done += 1
                if progress is not None:
                    progress(done, total, report)
            if not failures:
                chunk = next(chunk_iter, None)
                if chunk is not None:
                    in_flight[pool.submit_chunk(chunk, workers_cap=workers_cap)] = (
                        chunk
                    )
    if failures:
        raise SweepError(failures)


def sweep_grid(
    protocols: Sequence[str],
    rates: Sequence[float],
    duration: float,
    n: int = 4,
    seed: int = 0,
    warmup: float = 0.0,
    drain: float = 1.5,
    repeats: int = 1,
    cluster: ClusterSpec | None = None,
    require_all_delivered: bool = False,
    max_events: int | None = 4_000_000,
) -> list[AbcastRunSpec]:
    """Build the protocol × rate × repeat spec grid of a Figure-2/3 sweep.

    Respects each protocol's registry ``default_n`` (Multi-Paxos runs at
    n = 3 as in the paper) and the historical seed derivation
    ``seed + rate_index + 1000 * repeat``, so grids reproduce the exact runs
    the serial driver always did.
    """
    cluster = cluster if cluster is not None else ClusterSpec()
    specs: list[AbcastRunSpec] = []
    for name in protocols:
        info = get_protocol(name, kind=ABCAST)
        group = info.default_n or n
        for index, rate in enumerate(rates):
            for repeat in range(repeats):
                specs.append(
                    AbcastRunSpec(
                        protocol=name,
                        rate=rate,
                        duration=duration,
                        n=group,
                        seed=seed + index + 1000 * repeat,
                        warmup=warmup,
                        drain=drain,
                        cluster=cluster,
                        require_all_delivered=require_all_delivered,
                        max_events=max_events,
                    )
                )
    return specs


def rsm_sweep_grid(
    protocol: str,
    rate: float,
    duration: float,
    shards: Sequence[int] = (1,),
    group_sizes: Sequence[int] = (3,),
    clients: int = 8,
    seed: int = 0,
    warmup: float = 0.0,
    keys: int = 32,
    partitioner: str = "hash",
    txn_clients: int = 0,
    txn_rate: float = 0.0,
    txn_keys: int = 2,
    repeats: int = 1,
    cluster: ClusterSpec | None = None,
    max_events: int | None = 4_000_000,
) -> list[RsmRunSpec]:
    """Build the shards × group-size spec grid of a scale-out RSM sweep.

    This is the shard-axis analogue of :func:`sweep_grid`: one cell per
    (shard count, group size, repeat), all at the same offered rate, so
    BENCH/EXPERIMENTS can plot aggregate ops/s against the shard count.
    Cells repeat with seeds ``seed + 1000 × repeat``, mirroring the
    historical repeat derivation.  Single-cell topologies (1 × n) keep the
    default ``TopologySpec`` and therefore the PR-5 cache keys.
    """
    cluster = cluster if cluster is not None else ClusterSpec()
    specs: list[RsmRunSpec] = []
    for groups in shards:
        for size in group_sizes:
            for repeat in range(repeats):
                specs.append(
                    RsmRunSpec(
                        protocol=protocol,
                        rate=rate,
                        duration=duration,
                        n=size,
                        clients=clients,
                        seed=seed + 1000 * repeat,
                        warmup=warmup,
                        keys=keys,
                        cluster=cluster,
                        topology=(
                            TopologySpec()
                            if groups == 1 and partitioner == "hash"
                            else TopologySpec(groups=groups, partitioner=partitioner)
                        ),
                        txn_clients=txn_clients,
                        txn_rate=txn_rate,
                        txn_keys=txn_keys,
                        max_events=max_events,
                    )
                )
    return specs
