"""Structured result of one engine-executed run, JSON-serialisable.

A :class:`RunReport` is everything the evaluation needs from a run without
holding the simulator alive: the spec that produced it, window latencies
and their summary, per-kind message counts and byte estimates from the
:class:`~repro.sim.network.NetworkStats` counters, and per-kind trace
counts from the :class:`~repro.sim.trace.Tracer`.  Reports round-trip
through plain dicts (:meth:`to_dict` / :meth:`from_dict`), which is both
the on-disk cache format and the ``sweep --json`` export format.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Sequence

from repro.engine.spec import AbcastRunSpec, RsmRunSpec, spec_from_dict
from repro.workload.metrics import LatencySummary

__all__ = ["REPORT_SCHEMA", "RunReport"]

#: Schema tag written into every serialised report.
REPORT_SCHEMA = "repro.run-report.v1"


@dataclass(frozen=True)
class RunReport:
    """Outcome of one atomic-broadcast run, keyed by its spec hash.

    ``offered``/``delivered``/``latencies`` cover the measurement window
    ``[spec.warmup, spec.duration]`` (latency is the paper's: shortest delay
    between a-broadcast and first a-delivery).  ``network`` is the
    :meth:`NetworkStats.snapshot` dict (message counts, per-kind counts,
    byte estimates) over the whole run; ``trace_counts`` counts trace
    records per kind.
    """

    spec: AbcastRunSpec | RsmRunSpec
    key: str
    offered: int
    delivered: int
    latencies: tuple[float, ...]
    summary: LatencySummary
    network: dict
    trace_counts: dict
    sim_time: float
    #: Optional :mod:`repro.perf` section (``PerfReport.to_dict``), attached
    #: only when the run was executed with ``collect_perf=True``.  Omitted
    #: from :meth:`to_dict` when absent so default sweep JSON is unchanged.
    perf: dict | None = None
    #: Optional service-level section for RSM runs
    #: (:func:`repro.rsm.runner.service_metrics`): committed-ops/s, commit
    #: latency percentiles, batching, apply lag, snapshots, dedup, recovery.
    rsm: dict | None = None
    #: Optional ``repro.obs.v1`` metrics section
    #: (:meth:`repro.obs.ObsRuntime.section`), attached only when the spec
    #: enabled the virtual-time gauge sampler.  Omitted from :meth:`to_dict`
    #: when absent so default sweep JSON is unchanged.
    obs: dict | None = None

    # ------------------------------------------------------------- shortcuts

    @property
    def protocol(self) -> str:
        return self.spec.protocol

    @property
    def rate(self) -> float:
        return self.spec.rate

    @property
    def seed(self) -> int:
        return self.spec.seed

    @property
    def mean_latency_ms(self) -> float:
        return self.summary.mean * 1e3

    @property
    def loss_fraction(self) -> float:
        if self.offered == 0:
            return 0.0
        return 1.0 - self.delivered / self.offered

    def latency_summary_dict(self) -> dict | None:
        """The window-latency summary in the unified percentile vocabulary.

        Same keys as :meth:`MetricsRegistry.histogram_summary` and the span
        summary's ``decision_latency`` buckets (count/min/max/mean/p50/p95/
        p99), so warehouse entries and obs sections read alike.  ``None``
        for an empty window; NaN statistics (summaries deserialised from
        before p50/p99 existed) are omitted rather than emitted.
        """
        if self.summary.is_empty:
            return None
        values = {
            "count": self.summary.count,
            "min": self.summary.minimum,
            "max": self.summary.maximum,
            "mean": self.summary.mean,
            "p50": self.summary.p50,
            "p95": self.summary.p95,
            "p99": self.summary.p99,
        }
        return {
            name: value
            for name, value in values.items()
            if not (isinstance(value, float) and value != value)
        }

    # ----------------------------------------------------------- persistence

    def to_dict(self) -> dict:
        data = {
            "schema": REPORT_SCHEMA,
            "key": self.key,
            "spec": self.spec.to_dict(),
            "offered": self.offered,
            "delivered": self.delivered,
            "latencies": list(self.latencies),
            # The empty-summary sentinel serialises as null, keeping the JSON
            # strict (no NaN literals).
            "summary": None if self.summary.is_empty else dataclasses.asdict(self.summary),
            "network": self.network,
            "trace_counts": self.trace_counts,
            "sim_time": self.sim_time,
        }
        if self.perf is not None:
            data["perf"] = self.perf
        if self.rsm is not None:
            data["rsm"] = self.rsm
        if self.obs is not None:
            data["obs"] = self.obs
        return data

    def to_json(self) -> str:
        """Canonical JSON document of this report (sorted keys).

        This is the single serialised form of a report — the on-disk cache
        entry body and the worker → parent wire format — so equal runs
        always serialise byte-identically, however they were executed.
        """
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        summary = data["summary"]
        spec_data = data["spec"]
        # Reports predating the spec "kind" tag are all abcast runs.
        if "kind" in spec_data:
            spec = spec_from_dict(spec_data)
        else:
            spec = AbcastRunSpec.from_dict(spec_data)
        return cls(
            spec=spec,
            key=data["key"],
            offered=data["offered"],
            delivered=data["delivered"],
            latencies=tuple(data["latencies"]),
            summary=LatencySummary.empty() if summary is None else LatencySummary(**summary),
            network=data["network"],
            trace_counts=data["trace_counts"],
            sim_time=data["sim_time"],
            perf=data.get("perf"),
            rsm=data.get("rsm"),
            obs=data.get("obs"),
        )
