"""Ordering oracles (Weak Atomic Broadcast)."""

from repro.oracles.wab import WabMessage, WabOracle

__all__ = ["WabMessage", "WabOracle"]
