"""Weak Atomic Broadcast (WAB) ordering oracle (section 3.4 of the paper).

A WAB oracle exposes ``w_broadcast(k, m)`` and delivers ``w_deliver(k, m)``
upcalls with three properties: *validity* (a correct broadcaster's message is
eventually w-delivered everywhere), *uniform integrity* (each pair ``(k, m)``
is delivered at most once per process, and only if broadcast), and
*spontaneous order* (infinitely often, the **first** message delivered in an
instance is the same at every process).

The paper's implementation used raw UDP multicast on a LAN, where spontaneous
total order is an empirical phenomenon.  Here the oracle runs over the
simulated datagram channel of :mod:`repro.sim.network`: every datagram gets
an independent random delay, so

* when a single process w-broadcasts in instance ``k`` with no competition,
  its message is first everywhere — spontaneous order holds;
* when several processes w-broadcast in ``k`` within one delay-spread of each
  other (a *collision*), delivery order differs across destinations exactly
  as on a real LAN under load.

This reproduces the collision-vs-throughput coupling that shapes Figures 2
and 3 without any tuning knob beyond the delay distribution itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.sim.process import Environment

__all__ = ["WabMessage", "WabOracle"]


@dataclass(frozen=True, slots=True)
class WabMessage:
    """Wire format of one w-broadcast."""

    instance: int
    payload: Any
    origin: int
    seq: int


class WabOracle:
    """Per-process WAB module.

    Parameters
    ----------
    env:
        (Scoped) environment used for datagram traffic.
    deliver:
        Upcall ``deliver(instance, payload, position)`` where ``position`` is
        0 for the first message w-delivered in that instance at this process,
        1 for the second, and so on.  The position argument is what lets
        C-Abcast treat the first message specially (algorithm 3, lines 7/16).
    repeats:
        Extra retransmissions per w-broadcast.  Zero matches the paper's
        plain-UDP implementation; positive values restore validity under a
        lossy datagram channel (each copy is deduplicated by uniform
        integrity, so upcalls never repeat).
    """

    def __init__(
        self,
        env: Environment,
        deliver: Callable[[int, Any, int], None],
        repeats: int = 0,
    ) -> None:
        if repeats < 0:
            raise ConfigurationError("repeats must be >= 0")
        self.env = env
        self._deliver = deliver
        self.repeats = repeats
        self._seq = 0
        self._seen: set[WabMessage] = set()
        self._positions: dict[int, int] = {}
        self.broadcasts = 0
        self.deliveries = 0

    # ---------------------------------------------------------------- actions

    def w_broadcast(self, instance: int, payload: Any) -> None:
        """Broadcast ``payload`` in WAB instance ``instance``."""
        self._seq += 1
        msg = WabMessage(instance, payload, self.env.pid, self._seq)
        self.broadcasts += 1
        for _ in range(self.repeats + 1):
            self.env.datagram_broadcast(msg)

    # ---------------------------------------------------------------- upcalls

    def on_message(self, src: int, msg: Any) -> None:
        if not isinstance(msg, WabMessage):
            return
        # The (frozen, slotted) message is its own dedup key: field equality
        # and hashing match the (instance, payload, origin, seq) tuple.
        if msg in self._seen:
            return  # uniform integrity: deliver (k, m) at most once
        self._seen.add(msg)
        position = self._positions.get(msg.instance, 0)
        self._positions[msg.instance] = position + 1
        self.deliveries += 1
        self._deliver(msg.instance, msg.payload, position)

    # ------------------------------------------------------------- inspection

    def delivered_in(self, instance: int) -> int:
        """How many distinct messages this process has w-delivered in ``instance``."""
        return self._positions.get(instance, 0)
