"""The nemesis DSL: frozen, content-addressed, composable fault schedules.

A :class:`NemesisSpec` is a declarative description of *everything that goes
wrong* during one simulated run — the Jepsen-style nemesis, as a value.  It
is an ordered tuple of frozen fault *ops*, each pinned to virtual time:

* :class:`PartitionOp` — split the network into groups at ``at``, heal at
  ``at + duration``;
* :class:`CrashOp`     — crash-stop one process (on RSM runs the replica
  rejoins as a learner per the run spec's ``recover_after``, giving
  crash/recover storms);
* :class:`DropOp`      — drop matching messages with probability ``p``
  inside the window;
* :class:`DelayOp`     — add constant-plus-exponential extra delay to
  matching messages inside the window (a delay spike; on the datagram
  channel this also reorders, since datagrams carry no FIFO floor);
* :class:`DupOp`       — re-send matching messages with probability ``p``
  inside the window (duplicate delivery);
* :class:`FdFlapOp`    — failure-detector instability: the oracle falsely
  suspects ``pid`` for the window, then trusts it again;
* :class:`CpuSkewOp`   — scale/offset one node's per-event CPU cost for the
  window (CPU-cost skew, the DES analogue of a slow clock).

Like the run specs in :mod:`repro.engine.spec`, a schedule is hashable and
content-addressed (:meth:`NemesisSpec.cache_key`), serializes to plain JSON
(:meth:`to_dict`/:meth:`from_dict`) and composes by concatenation (``a + b``
or :meth:`then`).  Randomness *inside* the schedule (drop/dup coin flips,
delay jitter) comes from the simulator's dedicated ``"nemesis"`` RNG stream
at execution time, so a schedule is fully deterministic per run seed while
staying reusable across seeds.

The schedule only describes faults; :mod:`repro.nemesis.inject` compiles it
to kernel events against a live simulation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "NEMESIS_VERSION",
    "PartitionOp",
    "CrashOp",
    "DropOp",
    "DelayOp",
    "DupOp",
    "FdFlapOp",
    "CpuSkewOp",
    "NemesisSpec",
    "crash_storm",
    "op_from_dict",
]

#: Bumped whenever op semantics or the serialized layout change.
NEMESIS_VERSION = 1


def _check_window(op: Any) -> None:
    if op.at < 0.0:
        raise ConfigurationError(f"{op.op} op cannot start before t=0 (at={op.at})")
    if getattr(op, "duration", 1.0) <= 0.0:
        raise ConfigurationError(f"{op.op} op needs a positive duration")


def _check_probability(op: Any, p: float) -> None:
    if not 0.0 < p <= 1.0:
        raise ConfigurationError(f"{op.op} op probability must be in (0, 1], got {p}")


@dataclass(frozen=True, slots=True)
class PartitionOp:
    """Split the network into ``groups`` at ``at``; heal at ``at + duration``.

    Groups are sets of pids; messages only flow within a group while the
    window is open (exactly :meth:`repro.sim.network.Network.partition`).
    Pids in no group are isolated from everyone.
    """

    at: float
    duration: float
    groups: tuple[tuple[int, ...], ...]

    op = "partition"

    def __post_init__(self) -> None:
        _check_window(self)
        canonical = tuple(tuple(sorted(set(g))) for g in self.groups)
        if not canonical or any(not g for g in canonical):
            raise ConfigurationError("partition op needs at least one non-empty group")
        object.__setattr__(self, "groups", canonical)

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "at": self.at,
            "duration": self.duration,
            "groups": [list(g) for g in self.groups],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PartitionOp":
        return cls(
            at=data["at"],
            duration=data["duration"],
            groups=tuple(tuple(g) for g in data["groups"]),
        )


@dataclass(frozen=True, slots=True)
class CrashOp:
    """Crash-stop process ``pid`` at ``at`` (the paper's fault model)."""

    at: float
    pid: int

    op = "crash"

    def __post_init__(self) -> None:
        _check_window(self)

    def to_dict(self) -> dict:
        return {"op": self.op, "at": self.at, "pid": self.pid}

    @classmethod
    def from_dict(cls, data: dict) -> "CrashOp":
        return cls(at=data["at"], pid=data["pid"])


def _match_fields(op: Any) -> dict:
    out: dict = {}
    if op.src is not None:
        out["src"] = op.src
    if op.dst is not None:
        out["dst"] = op.dst
    if op.channel is not None:
        out["channel"] = op.channel
    return out


@dataclass(frozen=True, slots=True)
class DropOp:
    """Drop matching messages with probability ``p`` during the window.

    ``src``/``dst``/``channel`` of ``None`` match anything.  Reliable
    channels in the paper's system model never lose messages, so a drop
    window is exactly the fault the indulgent protocols must mask.
    """

    at: float
    duration: float
    p: float = 1.0
    src: int | None = None
    dst: int | None = None
    channel: str | None = None

    op = "drop"

    def __post_init__(self) -> None:
        _check_window(self)
        _check_probability(self, self.p)

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "at": self.at,
            "duration": self.duration,
            "p": self.p,
            **_match_fields(self),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DropOp":
        return cls(
            at=data["at"],
            duration=data["duration"],
            p=data["p"],
            src=data.get("src"),
            dst=data.get("dst"),
            channel=data.get("channel"),
        )


@dataclass(frozen=True, slots=True)
class DelayOp:
    """Add ``extra`` (+ exponential ``jitter``) seconds to matching messages.

    On the datagram channel added jitter reorders arrivals; on the reliable
    channel the network's per-link FIFO floor still holds, so a spike there
    models queueing, not reordering.
    """

    at: float
    duration: float
    extra: float = 0.0
    jitter: float = 0.0
    src: int | None = None
    dst: int | None = None
    channel: str | None = None

    op = "delay"

    def __post_init__(self) -> None:
        _check_window(self)
        if self.extra < 0.0 or self.jitter < 0.0:
            raise ConfigurationError("delay op extra/jitter must be >= 0")
        if self.extra == 0.0 and self.jitter == 0.0:
            raise ConfigurationError("delay op needs extra > 0 or jitter > 0")

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "at": self.at,
            "duration": self.duration,
            "extra": self.extra,
            "jitter": self.jitter,
            **_match_fields(self),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DelayOp":
        return cls(
            at=data["at"],
            duration=data["duration"],
            extra=data["extra"],
            jitter=data["jitter"],
            src=data.get("src"),
            dst=data.get("dst"),
            channel=data.get("channel"),
        )


@dataclass(frozen=True, slots=True)
class DupOp:
    """Duplicate matching messages with probability ``p`` during the window.

    The duplicate is re-submitted to the network at the moment of the
    original send, so it takes its own (independent) delay draw and its own
    FIFO slot — the classic at-least-once fault that application-level
    dedup must absorb.
    """

    at: float
    duration: float
    p: float = 1.0
    src: int | None = None
    dst: int | None = None
    channel: str | None = None

    op = "dup"

    def __post_init__(self) -> None:
        _check_window(self)
        _check_probability(self, self.p)

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "at": self.at,
            "duration": self.duration,
            "p": self.p,
            **_match_fields(self),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DupOp":
        return cls(
            at=data["at"],
            duration=data["duration"],
            p=data["p"],
            src=data.get("src"),
            dst=data.get("dst"),
            channel=data.get("channel"),
        )


@dataclass(frozen=True, slots=True)
class FdFlapOp:
    """Failure-detector instability: falsely suspect ``pid`` for the window.

    The oracle detector reports ``pid`` crashed at ``at`` and (if the node
    has not actually crashed meanwhile) trusts it again at ``at + duration``
    — the wrong-suspicion runs that indulgent protocols must survive without
    violating safety.
    """

    at: float
    duration: float
    pid: int

    op = "fd-flap"

    def __post_init__(self) -> None:
        _check_window(self)

    def to_dict(self) -> dict:
        return {"op": self.op, "at": self.at, "duration": self.duration, "pid": self.pid}

    @classmethod
    def from_dict(cls, data: dict) -> "FdFlapOp":
        return cls(at=data["at"], duration=data["duration"], pid=data["pid"])


@dataclass(frozen=True, slots=True)
class CpuSkewOp:
    """Scale/offset ``pid``'s per-event CPU cost for the window.

    ``cost = old * factor + extra`` while the window is open.  This is the
    discrete-event analogue of clock/CPU skew: one node's handlers take
    longer, so its sends and timer fires drift late relative to the group.
    Only constant service-time models are skewed (callable models are left
    untouched — all spec-driven runs use constants).
    """

    at: float
    duration: float
    pid: int
    factor: float = 1.0
    extra: float = 0.0

    op = "cpu-skew"

    def __post_init__(self) -> None:
        _check_window(self)
        if self.factor < 0.0 or self.extra < 0.0:
            raise ConfigurationError("cpu-skew factor/extra must be >= 0")
        if self.factor == 1.0 and self.extra == 0.0:
            raise ConfigurationError("cpu-skew op needs factor != 1 or extra > 0")

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "at": self.at,
            "duration": self.duration,
            "pid": self.pid,
            "factor": self.factor,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CpuSkewOp":
        return cls(
            at=data["at"],
            duration=data["duration"],
            pid=data["pid"],
            factor=data["factor"],
            extra=data["extra"],
        )


NemesisOp = (
    PartitionOp | CrashOp | DropOp | DelayOp | DupOp | FdFlapOp | CpuSkewOp
)

_OP_TYPES: dict[str, type] = {
    cls.op: cls
    for cls in (PartitionOp, CrashOp, DropOp, DelayOp, DupOp, FdFlapOp, CpuSkewOp)
}


def op_from_dict(data: dict) -> NemesisOp:
    """Rebuild one fault op from its JSON dict form."""
    cls = _OP_TYPES.get(data.get("op"))
    if cls is None:
        raise ConfigurationError(f"unknown nemesis op {data.get('op')!r}")
    return cls.from_dict(data)


@dataclass(frozen=True)
class NemesisSpec:
    """An ordered, frozen schedule of fault ops for one run.

    Attach to a run spec (``AbcastRunSpec(..., nemesis=schedule)`` and
    friends); the schedule serializes into the spec dict *only when
    non-empty*, so nemesis-free specs keep their exact pre-nemesis cache
    keys.  Schedules compose by concatenation: ``storm + partition_window``.
    """

    ops: tuple[NemesisOp, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(self.ops))
        for op in self.ops:
            if type(op).__name__ not in {
                cls.__name__ for cls in _OP_TYPES.values()
            }:
                raise ConfigurationError(
                    f"nemesis schedule holds a non-op value: {op!r}"
                )

    def __len__(self) -> int:
        return len(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    def __add__(self, other: "NemesisSpec | Iterable[NemesisOp]") -> "NemesisSpec":
        extra = other.ops if isinstance(other, NemesisSpec) else tuple(other)
        return NemesisSpec(self.ops + tuple(extra))

    def then(self, *ops: NemesisOp) -> "NemesisSpec":
        """A new schedule with ``ops`` appended (composition helper)."""
        return NemesisSpec(self.ops + ops)

    def sorted_ops(self) -> tuple[tuple[int, NemesisOp], ...]:
        """(original_index, op) pairs in deterministic execution order.

        Stable sort by start time; the original index breaks ties, so two
        schedules that are permutations of each other compile to the same
        kernel events only if their op order agrees — the schedule is a
        *sequence*, not a set.
        """
        return tuple(
            sorted(enumerate(self.ops), key=lambda pair: (pair[1].at, pair[0]))
        )

    def pids(self) -> frozenset[int]:
        """Every pid the schedule names (for validation against a run's n)."""
        named: set[int] = set()
        for op in self.ops:
            for name in ("pid", "src", "dst"):
                value = getattr(op, name, None)
                if value is not None:
                    named.add(value)
            for group in getattr(op, "groups", ()):
                named.update(group)
        return frozenset(named)

    def to_dict(self) -> dict:
        return {"ops": [op.to_dict() for op in self.ops]}

    @classmethod
    def from_dict(cls, data: dict | None) -> "NemesisSpec":
        if data is None:
            return cls()
        return cls(ops=tuple(op_from_dict(item) for item in data["ops"]))

    def cache_key(self) -> str:
        """Stable content address of this schedule."""
        canonical = json.dumps(
            {"version": NEMESIS_VERSION, "kind": "nemesis", **self.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def crash_storm(
    pids: Sequence[int], start: float, spacing: float = 0.0
) -> NemesisSpec:
    """A crash storm: crash ``pids`` in order, ``spacing`` seconds apart."""
    return NemesisSpec(
        tuple(
            CrashOp(at=start + index * spacing, pid=pid)
            for index, pid in enumerate(pids)
        )
    )
