"""Compile a :class:`NemesisSpec` into deterministic kernel events.

:class:`NemesisRuntime` is the bridge between the declarative schedule and a
live simulation: each op becomes one or two ordinary simulator events (window
start/end) that drive the existing fault hooks — ``Network.partition`` /
``heal``, link filters, ``Node.crash`` and the oracle failure detector's
``on_crash``/``on_recovery``.  Nothing new happens inside the kernel: a
nemesis run is just a run with more scheduled callbacks, so all the
determinism guarantees (same-seed byte-identical traces, batched-drain
equivalence) carry over unchanged.

Determinism notes:

* Schedule randomness (drop/dup coin flips, delay jitter) draws from the
  simulator's dedicated ``sim.rng("nemesis")`` stream, so attaching a
  schedule never perturbs delay-model or workload streams.
* Ops starting at ``t <= now`` apply their start action *immediately* at
  install time instead of racing node start-up events for kernel order —
  a partition at ``t=0`` therefore blocks the very first ``on_start`` sends,
  matching the hand-scripted ``network.partition(...)``-before-``run`` style.
* Link filters are installed only while a window is open, so the network's
  filter-free fast paths are untouched outside fault windows; while a window
  is open, ``send_batch`` falls back to per-message sends, which PR-7 proved
  byte-identical between batched and serial drains.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.nemesis.spec import (
    CpuSkewOp,
    CrashOp,
    DelayOp,
    DropOp,
    DupOp,
    FdFlapOp,
    NemesisSpec,
    PartitionOp,
)
from repro.sim.trace import KINDS

__all__ = ["NemesisRuntime"]


def _matches(op: Any, envelope: Any) -> bool:
    if op.src is not None and envelope.src != op.src:
        return False
    if op.dst is not None and envelope.dst != op.dst:
        return False
    if op.channel is not None and envelope.channel != op.channel:
        return False
    return True


class NemesisRuntime:
    """Executes one schedule against one simulation.

    Build it after the nodes have been started (and after any spec-level
    ``crash_at`` wiring), then :meth:`install` once, before ``sim.run``.
    """

    def __init__(
        self,
        nemesis: NemesisSpec,
        *,
        sim: Any,
        network: Any,
        nodes: dict[int, Any],
        oracle: Any = None,
        tracer: Any = None,
        crash_hook: Callable[[int, float], None] | None = None,
    ) -> None:
        unknown = nemesis.pids() - set(nodes)
        if unknown:
            raise ConfigurationError(
                f"nemesis schedule names unknown pids {sorted(unknown)}"
            )
        self.nemesis = nemesis
        self.sim = sim
        self.network = network
        self.nodes = nodes
        self.oracle = oracle
        self.tracer = tracer
        # Called once per CrashOp at install time; the RSM runner uses this
        # to register its learner-rejoin rebuild alongside the crash.
        self.crash_hook = crash_hook
        self.rng = sim.rng("nemesis")
        # Most recent partition op applied; a window's heal only fires if a
        # later partition has not superseded it.
        self._partition_owner: int | None = None
        # When set, nemesis filters wave everything through: duplicates
        # re-entering the network must not be dropped/delayed/duplicated
        # again (and must not recurse).
        self._suppress = False
        self._installed = False

    # ------------------------------------------------------------ installing

    def install(self) -> "NemesisRuntime":
        """Schedule every op; apply already-due start actions immediately."""
        if self._installed:
            raise ConfigurationError("NemesisRuntime.install called twice")
        self._installed = True
        now = self.sim.now
        for index, op in self.nemesis.sorted_ops():
            if type(op) is CrashOp and self.crash_hook is not None:
                self.crash_hook(op.pid, op.at)
            start = self._starter(index, op)
            if op.at <= now:
                start()
            else:
                self.sim.schedule_at(op.at, start)
        return self

    def _starter(self, index: int, op: Any) -> Callable[[], None]:
        kind = type(op)
        if kind is PartitionOp:
            return lambda: self._start_partition(index, op)
        if kind is CrashOp:
            return lambda: self._start_crash(index, op)
        if kind is DropOp:
            return lambda: self._start_filter(index, op, self._drop_filter(op))
        if kind is DelayOp:
            return lambda: self._start_filter(index, op, self._delay_filter(op))
        if kind is DupOp:
            return lambda: self._start_filter(index, op, self._dup_filter(op))
        if kind is FdFlapOp:
            return lambda: self._start_fd_flap(index, op)
        if kind is CpuSkewOp:
            return lambda: self._start_cpu_skew(index, op)
        raise ConfigurationError(f"unknown nemesis op type {kind.__name__}")

    # --------------------------------------------------------------- tracing

    def _trace(self, kind: str, index: int, op: Any, **extra: Any) -> None:
        if self.tracer is not None:
            data = {"index": index, **op.to_dict(), **extra}
            self.tracer.emit(self.sim.now, -1, kind, data)

    def _end(self, index: int, op: Any, **extra: Any) -> None:
        self._trace(KINDS.NEMESIS_END, index, op, **extra)

    # ------------------------------------------------------------------- ops

    def _start_partition(self, index: int, op: PartitionOp) -> None:
        self._trace(KINDS.NEMESIS_START, index, op)
        self._partition_owner = index
        self.network.partition(*(set(g) for g in op.groups))
        self.sim.schedule_at(op.at + op.duration, self._end_partition, index, op)

    def _end_partition(self, index: int, op: PartitionOp) -> None:
        # A later partition op supersedes this window; its own heal governs.
        if self._partition_owner == index:
            self._partition_owner = None
            self.network.heal()
            self._end(index, op)

    def _start_crash(self, index: int, op: CrashOp) -> None:
        node = self.nodes[op.pid]
        if not node.crashed:
            self._trace(KINDS.NEMESIS_START, index, op)
            node.crash()

    def _start_filter(self, index: int, op: Any, fn: Callable) -> None:
        self._trace(KINDS.NEMESIS_START, index, op)
        remove = self.network.add_filter(fn)
        self.sim.schedule_at(op.at + op.duration, self._end_filter, index, op, remove)

    def _end_filter(self, index: int, op: Any, remove: Callable[[], None]) -> None:
        remove()
        self._end(index, op)

    def _drop_filter(self, op: DropOp) -> Callable:
        rng = self.rng

        def fn(envelope: Any):
            if self._suppress or not _matches(op, envelope):
                return True
            if op.p >= 1.0 or rng.random() < op.p:
                return False
            return True

        return fn

    def _delay_filter(self, op: DelayOp) -> Callable:
        rng = self.rng

        def fn(envelope: Any):
            if self._suppress or not _matches(op, envelope):
                return True
            extra = op.extra
            if op.jitter > 0.0:
                extra += rng.expovariate(1.0 / op.jitter)
            return extra

        return fn

    def _dup_filter(self, op: DupOp) -> Callable:
        rng = self.rng

        def fn(envelope: Any):
            if self._suppress or not _matches(op, envelope):
                return True
            if op.p >= 1.0 or rng.random() < op.p:
                # Re-submit a copy right after the current event: the clone
                # draws its own delay (and FIFO slot), like a retransmitted
                # frame.  _suppress keeps the clone out of all nemesis
                # filters, so duplication never cascades.
                self.sim.schedule(
                    0.0,
                    self._resend,
                    envelope.src,
                    envelope.dst,
                    envelope.payload,
                    envelope.channel,
                )
            return True

        return fn

    def _resend(self, src: int, dst: int, payload: Any, channel: str) -> None:
        if self.nodes[src].crashed:
            return
        self._suppress = True
        try:
            self.network.send(src, dst, payload, channel)
        finally:
            self._suppress = False

    def _start_fd_flap(self, index: int, op: FdFlapOp) -> None:
        if self.oracle is None:
            return  # no oracle detector in this run; nothing to destabilise
        self._trace(KINDS.NEMESIS_START, index, op)
        self.oracle.on_crash(op.pid)
        self.sim.schedule_at(op.at + op.duration, self._end_fd_flap, index, op)

    def _end_fd_flap(self, index: int, op: FdFlapOp) -> None:
        # Only recant the suspicion if the node didn't really crash meanwhile.
        if not self.nodes[op.pid].crashed:
            self.oracle.on_recovery(op.pid)
        self._end(index, op)

    def _start_cpu_skew(self, index: int, op: CpuSkewOp) -> None:
        node = self.nodes[op.pid]
        if node._fixed_cost is None:
            return  # callable service-time model; cost is not a plain number
        self._trace(KINDS.NEMESIS_START, index, op)
        saved = node._fixed_cost
        node._fixed_cost = saved * op.factor + op.extra
        self.sim.schedule_at(op.at + op.duration, self._end_cpu_skew, index, op, saved)

    def _end_cpu_skew(self, index: int, op: CpuSkewOp, saved: float) -> None:
        self.nodes[op.pid]._fixed_cost = saved
        self._end(index, op)
