"""repro.nemesis — declarative fault schedules and a minimizing fault fuzzer.

The DSL (:mod:`repro.nemesis.spec`) describes *what goes wrong* in a run as
a frozen, content-addressed :class:`NemesisSpec` of composable ops;
:mod:`repro.nemesis.inject` compiles a schedule into deterministic kernel
events; :mod:`repro.nemesis.shrink` delta-debugs a failing schedule down to
a 1-minimal repro; :mod:`repro.nemesis.fuzz` searches random schedules for
checker violations with trace-coverage guidance (also ``repro fuzz`` on the
CLI).  See docs/NEMESIS.md.

The fuzzer symbols are loaded lazily: :mod:`repro.engine.spec` imports the
DSL at class-definition time (run specs carry a ``nemesis`` field), while
the fuzzer itself sits *above* the engine — eager import here would be a
cycle.
"""

from repro.nemesis.inject import NemesisRuntime
from repro.nemesis.shrink import ShrinkResult, shrink_schedule
from repro.nemesis.spec import (
    CpuSkewOp,
    CrashOp,
    DelayOp,
    DropOp,
    DupOp,
    FdFlapOp,
    NemesisSpec,
    PartitionOp,
    crash_storm,
    op_from_dict,
)

__all__ = [
    "NemesisSpec",
    "PartitionOp",
    "CrashOp",
    "DropOp",
    "DelayOp",
    "DupOp",
    "FdFlapOp",
    "CpuSkewOp",
    "crash_storm",
    "op_from_dict",
    "NemesisRuntime",
    "shrink_schedule",
    "ShrinkResult",
    # lazy (see __getattr__): the fuzzer imports the engine.
    "fuzz_schedules",
    "FuzzResult",
    "Finding",
    "random_schedule",
    "mutate_schedule",
    "save_repro",
    "load_repro",
    "replay_repro",
    "REPRO_SCHEMA",
]

_FUZZ_SYMBOLS = frozenset(
    {
        "fuzz_schedules",
        "FuzzResult",
        "Finding",
        "random_schedule",
        "mutate_schedule",
        "save_repro",
        "load_repro",
        "replay_repro",
        "REPRO_SCHEMA",
    }
)


def __getattr__(name: str):
    if name in _FUZZ_SYMBOLS:
        from repro.nemesis import fuzz

        return getattr(fuzz, name)
    raise AttributeError(f"module 'repro.nemesis' has no attribute {name!r}")
