"""Delta-debugging minimization of failing nemesis schedules.

:func:`shrink_schedule` is classic ddmin (Zeller & Hildebrandt) over the
schedule's op tuple: repeatedly try dropping chunks of ops, keeping any
reduced schedule on which the failure predicate still holds, until no single
op can be removed.  Because runs are deterministic, the predicate is a pure
function of the schedule, which makes the result *1-minimal* (removing any
one remaining op makes the failure disappear) and the procedure idempotent:
shrinking an already-shrunk schedule is a no-op.

The predicate receives a candidate :class:`NemesisSpec` and returns True if
the candidate still reproduces the failure (same checker exception class, in
the fuzzer's usage).  Predicate calls are counted and can be budgeted.
"""

from __future__ import annotations

from typing import Callable

from repro.nemesis.spec import NemesisSpec

__all__ = ["shrink_schedule", "ShrinkResult"]


class ShrinkResult:
    """Outcome of one shrink: the minimized schedule plus effort counters."""

    def __init__(self, schedule: NemesisSpec, tests: int, removed: int) -> None:
        self.schedule = schedule
        self.tests = tests
        self.removed = removed

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"ShrinkResult(ops={len(self.schedule)}, tests={self.tests}, "
            f"removed={self.removed})"
        )


def shrink_schedule(
    schedule: NemesisSpec,
    failing: Callable[[NemesisSpec], bool],
    max_tests: int = 512,
) -> ShrinkResult:
    """ddmin the schedule down to a 1-minimal failing core.

    ``failing(candidate)`` must be deterministic.  ``max_tests`` bounds the
    number of predicate evaluations (each one is a full simulated run); on
    exhaustion the best schedule found so far is returned, which is still a
    valid — just maybe not minimal — repro.
    """
    ops = list(schedule.ops)
    tests = 0

    def holds(candidate_ops: list) -> bool:
        nonlocal tests
        tests += 1
        return failing(NemesisSpec(tuple(candidate_ops)))

    # The empty schedule failing means the bug needs no faults at all; the
    # minimal repro is then "no nemesis".
    if ops and tests < max_tests and holds([]):
        return ShrinkResult(NemesisSpec(), tests, len(schedule))

    granularity = 2
    while len(ops) >= 2 and tests < max_tests:
        chunk = max(1, len(ops) // granularity)
        reduced = False
        start = 0
        while start < len(ops) and tests < max_tests:
            candidate = ops[:start] + ops[start + chunk :]
            if candidate and holds(candidate):
                ops = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # Re-scan from the start of the shortened list.
                start = 0
                chunk = max(1, len(ops) // granularity)
                continue
            start += chunk
        if not reduced:
            if chunk <= 1:
                break
            granularity = min(len(ops), granularity * 2)

    return ShrinkResult(NemesisSpec(tuple(ops)), tests, len(schedule) - len(ops))
