"""Terminal line charts for experiment output.

Dependency-free ASCII rendering used by the CLI and the benches to draw the
latency/throughput curves of Figures 2 and 3 next to the numeric tables.
One character column per x sample, one glyph per series, shared y scale.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["line_chart"]

_GLYPHS = "*o+x#@%&"


def line_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[object],
    height: int = 12,
    width_per_point: int = 5,
    y_format: str = "{:.2f}",
    title: str | None = None,
) -> str:
    """Render ``series`` (name -> y values, aligned with ``x_labels``) as text.

    >>> print(line_chart({"a": [1.0, 2.0]}, [10, 20], height=3))  # doctest: +SKIP
    """
    if not series:
        raise ConfigurationError("line_chart needs at least one series")
    lengths = {len(values) for values in series.values()}
    if lengths != {len(x_labels)}:
        raise ConfigurationError("every series must align with x_labels")
    if height < 2:
        raise ConfigurationError("height must be at least 2")

    all_values = [v for values in series.values() for v in values]
    if any(v != v for v in all_values):  # NaN check without math import
        raise ConfigurationError("line_chart cannot plot NaN values")
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    span = hi - lo

    def row_of(value: float) -> int:
        return round((value - lo) / span * (height - 1))

    columns = len(x_labels)
    grid = [[" "] * (columns * width_per_point) for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for col, value in enumerate(values):
            row = height - 1 - row_of(value)
            grid[row][col * width_per_point] = glyph

    label_width = max(len(y_format.format(v)) for v in (lo, hi)) + 1
    lines: list[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        # Label the top, middle and bottom rows with their y values.
        if row_index == 0:
            label = y_format.format(hi)
        elif row_index == height - 1:
            label = y_format.format(lo)
        elif row_index == height // 2:
            label = y_format.format(lo + span * (height - 1 - row_index) / (height - 1))
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * (columns * width_per_point))
    x_line = " " * (label_width + 2)
    for x in x_labels:
        x_line += f"{str(x):<{width_per_point}}"
    lines.append(x_line)
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)
