"""Analytical comparison of the atomic broadcast protocols (Table 1).

The paper compares Paxos, WABCast and L-/P-Consensus(+C-Abcast) in terms of
time complexity (latency in units of the maximum network delay δ), message
complexity, resilience, and the oracle used for termination:

=============  ==================  =====================  ==========  ========
Protocol       latency (no coll.)  #messages (no coll.)   resilience  oracle
=============  ==================  =====================  ==========  ========
Paxos          3δ                  n² + n + 1             f < n/2     Ω
WABCast        2δ ; ∞ w/ coll.     n² + n ; ∞ w/ coll.    f < n/3     WAB
L-/P-Cons.     2δ ; 3δ w/ coll.    n² + n ; 2n² + n       f < n/3     Ω / ◇P
=============  ==================  =====================  ==========  ========

:func:`table1` renders those closed forms for any ``n``; the Table-1 bench
cross-checks them against message counts and step counts *measured* on the
simulator (see ``benchmarks/test_bench_table1.py``).

Message-count conventions (matching the paper's): one a-broadcast with no
collisions costs one WAB instance (n datagrams) plus one all-to-all
proposal round (n²) for the one-step protocols — ``n² + n``; under
collisions a second proposal round is needed — ``2n² + n``.  Paxos costs the
relay to the leader (1), the leader's ACCEPT (n) and the all-to-all ACCEPTED
(n²).  Decision-forwarding (task T2) traffic is excluded, as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ProtocolRow", "table1", "format_table1", "INFINITY"]

INFINITY = math.inf


@dataclass(frozen=True)
class ProtocolRow:
    """One row of Table 1."""

    protocol: str
    latency_no_collisions: float  # in units of δ
    latency_collisions: float  # in units of δ; inf = may not terminate
    messages_no_collisions: int
    messages_collisions: float  # inf = unbounded under sustained collisions
    resilience: str
    oracle: str

    def latency_seconds(self, delta: float, collisions: bool = False) -> float:
        """Concrete latency for a given maximum network delay δ."""
        steps = self.latency_collisions if collisions else self.latency_no_collisions
        return steps * delta


def table1(n: int) -> list[ProtocolRow]:
    """The three rows of Table 1, instantiated for group size ``n``."""
    if n < 2:
        raise ConfigurationError(f"need n >= 2 processes, got {n}")
    return [
        ProtocolRow(
            protocol="Paxos",
            latency_no_collisions=3,
            latency_collisions=3,
            messages_no_collisions=n * n + n + 1,
            messages_collisions=n * n + n + 1,
            resilience="f < n/2",
            oracle="Omega",
        ),
        ProtocolRow(
            protocol="WABCast",
            latency_no_collisions=2,
            latency_collisions=INFINITY,
            messages_no_collisions=n * n + n,
            messages_collisions=INFINITY,
            resilience="f < n/3",
            oracle="WAB",
        ),
        ProtocolRow(
            protocol="L-/P-Consensus",
            latency_no_collisions=2,
            latency_collisions=3,
            messages_no_collisions=n * n + n,
            messages_collisions=2 * n * n + n,
            resilience="f < n/3",
            oracle="Omega / <>P",
        ),
    ]


def format_table1(n: int) -> str:
    """Human-readable rendering of Table 1 for group size ``n``."""

    def fmt(value: float) -> str:
        return "inf" if value is math.inf else str(int(value))

    lines = [
        f"Table 1 (n = {n}): no collisions ; collisions",
        f"{'Protocol':<16}{'latency':<12}{'#messages':<16}{'Resil.':<10}Oracle",
    ]
    for row in table1(n):
        latency = f"{fmt(row.latency_no_collisions)}d ; {fmt(row.latency_collisions)}d"
        messages = f"{fmt(row.messages_no_collisions)} ; {fmt(row.messages_collisions)}"
        lines.append(
            f"{row.protocol:<16}{latency:<12}{messages:<16}{row.resilience:<10}{row.oracle}"
        )
    return "\n".join(lines)
