"""Analytical models backing the paper's Table 1."""

from repro.analysis.complexity import INFINITY, ProtocolRow, format_table1, table1

__all__ = ["INFINITY", "ProtocolRow", "format_table1", "table1"]
