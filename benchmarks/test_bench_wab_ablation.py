"""Ablation A4 — what the WAB oracle buys: C-Abcast vs the plain reduction.

Section 2 of the paper recounts why consensus-sequence atomic broadcast
(Chandra-Toueg, optimised by Mostefaoui & Raynal [17]) loses its fast path
under concurrency: "even if messages are ordered, it is very unlikely that
all buffers have the same length when their content is proposed".  C-Abcast
fixes this by feeding the consensus module WAB-selected proposals.

This bench runs the *same* L-Consensus module under both reductions and
measures the fraction of consensus instances that decided in one step, plus
the mean latency, as contention rises.  The WAB-guided reduction is expected
to hold on to the one-step path far longer.
"""

from repro.harness.abcast_runner import run_abcast
from repro.harness.factories import cabcast_l, ct_abcast_l
from repro.workload.experiment import LAN, LAN_CAPACITY, LAN_DATAGRAM
from repro.workload.generator import poisson_schedule
from repro.workload.metrics import summarize

from conftest import once

RATES = (50, 200, 400)
DURATION = 2.0


def run_point(make, rate, seed):
    schedules = poisson_schedule(4, rate, DURATION, seed=seed)
    result = run_abcast(
        make,
        4,
        schedules,
        seed=seed,
        delay=LAN,
        datagram_delay=LAN_DATAGRAM,
        capacity=LAN_CAPACITY,
        service_time=20e-6,
        horizon=DURATION + 1.0,
        require_all_delivered=False,
    )
    fast = slow = 0
    for host in result.hosts.values():
        for instance in host.abcast._instances.values():
            if instance.decision is None or instance.decision.via != "round":
                continue
            if instance.decision.steps == 1:
                fast += 1
            else:
                slow += 1
    latency = summarize(result.latencies((0.3, DURATION))).mean * 1e3
    one_step = fast / (fast + slow) if fast + slow else float("nan")
    return one_step, latency


def test_wab_oracle_ablation(benchmark, report):
    def experiment():
        rows = []
        for rate in RATES:
            with_wab = run_point(cabcast_l, rate, seed=rate)
            without = run_point(ct_abcast_l, rate, seed=rate)
            rows.append((rate, with_wab, without))
        return rows

    rows = once(benchmark, experiment)

    report.line("Ablation A4 — the WAB oracle's contribution (L-Consensus under both)")
    report.line("=" * 72)
    report.line(
        f"{'msg/s':<8}{'C-Abcast 1-step':<18}{'C-Abcast ms':<14}"
        f"{'CT/MR 1-step':<15}{'CT/MR ms':<10}"
    )
    for rate, (wab_fast, wab_ms), (ct_fast, ct_ms) in rows:
        report.line(
            f"{rate:<8}{wab_fast:<18.0%}{wab_ms:<14.2f}{ct_fast:<15.0%}{ct_ms:<10.2f}"
        )
    report.line()
    report.line("The oracle keeps proposals unanimous under contention; the plain")
    report.line("reduction loses its one-step path as buffers diverge (the [17]")
    report.line("weakness the paper's section 2 recounts).  Note an honest nuance:")
    report.line("in this simulator the divergence is milder than on the real")
    report.line("testbed (FIFO links couple dissemination and proposals), so the")
    report.line("plain reduction stays latency-competitive; the *rate* at which")
    report.line("the fast path survives contention is the robust effect.")
    report.emit("ablation_wab")

    # At high contention the WAB-guided stack keeps a higher one-step rate,
    # and the plain reduction's rate degrades monotonically with load.
    _, (wab_fast_hi, _), (ct_fast_hi, _) = rows[-1]
    assert wab_fast_hi > ct_fast_hi + 0.1
    ct_rates = [ct_fast for _, _, (ct_fast, _) in rows]
    assert ct_rates[0] > ct_rates[-1]
