"""Compare fresh kernel-bench numbers against the checked-in baseline.

Usage::

    python benchmarks/check_bench.py --fresh /tmp/bench_fresh.json \
        [--baseline benchmarks/BENCH_kernel.json]

Both files must carry the ``repro.bench-kernel.v1`` schema (see
``test_bench_kernel.py``).  For every bench present in *both* documents the
fresh ``ops_per_sec`` must not fall more than the tolerance below the
baseline's; a larger drop fails the check (exit 1).  Benches present in only
one document are reported but never fail — new rows land in the baseline on
the next full regeneration.

The default tolerance is 0.30 (30%), wide enough to absorb machine-to-machine
variance between the box that generated the baseline and a CI runner; set
``REPRO_BENCH_TOLERANCE`` (a fraction, e.g. ``0.5``) to widen or tighten it.

Per-op rates are compared rather than absolute wall times so the ~50x-smaller
``REPRO_BENCH_SMOKE`` workloads remain comparable to the full baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

BENCH_SCHEMA = "repro.bench-kernel.v1"
DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_kernel.json"
DEFAULT_TOLERANCE = 0.30


def load_document(path: Path) -> dict:
    try:
        document = json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"check_bench: {path}: file not found")
    except json.JSONDecodeError as exc:
        sys.exit(f"check_bench: {path}: invalid JSON ({exc})")
    schema = document.get("schema")
    if schema != BENCH_SCHEMA:
        sys.exit(f"check_bench: {path}: schema {schema!r} != {BENCH_SCHEMA!r}")
    benches = document.get("benches")
    if not isinstance(benches, dict) or not benches:
        sys.exit(f"check_bench: {path}: missing or empty 'benches' table")
    return document


def compare(baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    """Return a list of failure messages (empty when the check passes)."""
    failures: list[str] = []
    base_benches = baseline["benches"]
    fresh_benches = fresh["benches"]
    for name in sorted(base_benches.keys() | fresh_benches.keys()):
        if name not in base_benches:
            print(f"  {name}: new bench (no baseline row) — skipped")
            continue
        if name not in fresh_benches:
            print(f"  {name}: not in fresh results — skipped")
            continue
        base_rate = base_benches[name].get("ops_per_sec")
        fresh_rate = fresh_benches[name].get("ops_per_sec")
        if not base_rate or not fresh_rate:
            print(f"  {name}: missing ops_per_sec — skipped")
            continue
        ratio = fresh_rate / base_rate
        verdict = "ok"
        if ratio < 1.0 - tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {fresh_rate:,} ops/s is {1 - ratio:.0%} below "
                f"baseline {base_rate:,} ops/s (tolerance {tolerance:.0%})"
            )
        print(f"  {name}: {fresh_rate:,} vs {base_rate:,} ops/s ({ratio:.2f}x) {verdict}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, type=Path, help="freshly measured results")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    args = parser.parse_args(argv)

    raw = os.environ.get("REPRO_BENCH_TOLERANCE", "")
    try:
        tolerance = float(raw) if raw else DEFAULT_TOLERANCE
    except ValueError:
        sys.exit(f"check_bench: REPRO_BENCH_TOLERANCE={raw!r} is not a number")
    if not 0.0 <= tolerance < 1.0:
        sys.exit(f"check_bench: tolerance {tolerance} outside [0, 1)")

    baseline = load_document(args.baseline)
    fresh = load_document(args.fresh)
    print(f"check_bench: {args.fresh} vs {args.baseline} (tolerance {tolerance:.0%})")
    failures = compare(baseline, fresh, tolerance)
    if failures:
        print("check_bench: FAIL")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("check_bench: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
