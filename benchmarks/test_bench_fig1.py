"""Figure 1 / Theorem 1 — the executable lower-bound proof.

Regenerates the content of Figure 1: a chain of indistinguishable runs that
forces any one-step AND zero-degrading Ω-protocol into an agreement
violation.  The chain here is *discovered* by constraint propagation over
the full-information run space rather than transcribed from the paper, and
the three reference decision rules are graded to trace the boundary of the
theorem (each achievable pair of properties, never all three).
"""

from repro.core.lowerbound import (
    BrasileiroRule,
    LConsensusRule,
    NaiveCombinedRule,
    check_rule,
    prove_theorem1,
)

from conftest import once

FAST_HEARS = [(1, 2, 3), (1, 2, 4), (1, 3, 4), (2, 3, 4)]


def test_fig1_theorem1_certificate(benchmark, report):
    certificate = once(benchmark, prove_theorem1)

    report.line("Figure 1 / Theorem 1 — machine-checked impossibility chain")
    report.line("=" * 64)
    report.line(certificate.explain())
    report.emit("fig1_certificate")

    assert certificate.chain_one[0].value == 1
    assert certificate.chain_zero[0].value == 0
    assert certificate.length >= 2


def test_fig1_rule_boundary(benchmark, report):
    def grade_all():
        return [
            check_rule(rule, restrict_hears=FAST_HEARS)
            for rule in (NaiveCombinedRule(), LConsensusRule(), BrasileiroRule())
        ]

    reports = once(benchmark, grade_all)

    report.line("Theorem 1 boundary — reference protocol skeletons")
    report.line("=" * 64)
    for r in reports:
        report.line(r.summary())
    report.line()
    report.line(
        "Each rule achieves exactly two of {one-step, zero-degrading, safe};"
    )
    report.line("Theorem 1 forbids all three, and the sweep confirms it.")
    report.emit("fig1_rules")

    naive, l_rule, brasileiro = reports
    assert naive.is_one_step and naive.is_zero_degrading and not naive.is_safe
    assert l_rule.is_safe and l_rule.is_zero_degrading and not l_rule.is_one_step
    assert brasileiro.is_safe and brasileiro.is_one_step and not brasileiro.is_zero_degrading
