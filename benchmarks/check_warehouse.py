"""Gate two metrics-warehouse entries against a latency tolerance.

Usage::

    python benchmarks/check_warehouse.py --warehouse /tmp/warehouse.jsonl \
        [--base -2] [--fresh -1]

The warehouse is the append-only ``repro.warehouse.v1`` JSONL store written
by ``repro obs record`` (see :mod:`repro.obs.warehouse`).  The fresh entry's
latency metrics — delivery-latency mean/p95/p99, critical-path mean latency
and the per-path decision-latency percentiles — must not exceed the base
entry's by more than the tolerance; a larger growth fails the check
(exit 1), mirroring ``check_bench.py``.

All compared quantities are *simulated*-time latencies, so the gate is
machine-independent: two entries recorded from the same spec and seed are
byte-identical and always pass.  The default tolerance is 0.30 (30%); set
``REPRO_WAREHOUSE_TOLERANCE`` (a fraction, e.g. ``0.5``) to widen or
tighten it.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

# Runnable both as "python benchmarks/check_warehouse.py" (PYTHONPATH=src)
# and from a checkout root without an installed package.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import ConfigurationError  # noqa: E402
from repro.obs.warehouse import (  # noqa: E402
    DEFAULT_TOLERANCE,
    Warehouse,
    compare_entries,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--warehouse", required=True, type=Path, help="repro.warehouse.v1 JSONL store"
    )
    parser.add_argument(
        "--base", type=int, default=-2, help="baseline entry index (default -2)"
    )
    parser.add_argument(
        "--fresh", type=int, default=-1, help="candidate entry index (default -1)"
    )
    args = parser.parse_args(argv)

    raw = os.environ.get("REPRO_WAREHOUSE_TOLERANCE", "")
    try:
        tolerance = float(raw) if raw else DEFAULT_TOLERANCE
    except ValueError:
        sys.exit(f"check_warehouse: REPRO_WAREHOUSE_TOLERANCE={raw!r} is not a number")

    store = Warehouse(str(args.warehouse))
    try:
        base = store.entry(args.base)
        fresh = store.entry(args.fresh)
        lines, failures = compare_entries(base, fresh, tolerance=tolerance)
    except ConfigurationError as exc:
        sys.exit(f"check_warehouse: {exc}")
    print(
        f"check_warehouse: entry {args.fresh} vs entry {args.base} of "
        f"{args.warehouse} (tolerance {tolerance:.0%})"
    )
    for line in lines:
        print(line)
    if failures:
        print("check_warehouse: FAIL")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("check_warehouse: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
