"""Kernel hot-path microbenchmarks.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_kernel.py -q -s

Each benchmark times one hot path of the simulator — event churn through the
heap, timer cancel/compaction churn, network send/deliver throughput, trace
recording and query cost, and one end-to-end Figure-2 sweep cell — and the
session writes the measurements to ``benchmarks/BENCH_kernel.json``.  That
file is checked in as the perf baseline of the PR that introduced it; re-run
the suite and diff to see where a change moved the needle (absolute numbers
are machine-specific — compare ratios, not values, across machines).

``REPRO_BENCH_SMOKE=1`` shrinks every workload ~50× so CI can verify the
benchmarks still run (and archive the artifact) without slowing the matrix.

These are *benchmarks*, not correctness tests: they only assert that the
measured path did the work it claims to time.  They are deliberately outside
the tier-1 ``tests/`` tree (pytest ``testpaths``) so normal test runs skip
them.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import pytest

from repro.engine import PAPER_LAN, AbcastRunSpec
from repro.engine.runner import execute_run
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.trace import Tracer

BENCH_SCHEMA = "repro.bench-kernel.v1"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Workload sizes: full baseline vs CI smoke (~50x smaller).
SCALE = 50 if not SMOKE else 1
N_EVENTS = 4_000 * SCALE
N_TIMERS = 2_000 * SCALE
N_SENDS = 1_000 * SCALE
N_RECORDS = 2_000 * SCALE
CELL_RATE = 300.0
CELL_DURATION = 1.0 if not SMOKE else 0.1

#: Where the session writes its measurements.  ``REPRO_BENCH_OUT`` points it
#: elsewhere — CI's smoke run uses this so the checked-in baseline survives
#: to be compared against (see ``check_bench.py``).
OUT_PATH = Path(
    os.environ.get("REPRO_BENCH_OUT")
    or Path(__file__).resolve().parent / "BENCH_kernel.json"
)

#: bench name -> {"ops": ..., "seconds": ..., "ops_per_sec": ...}
RESULTS: dict[str, dict] = {}


def _record(name: str, ops: int, seconds: float) -> None:
    RESULTS[name] = {
        "ops": ops,
        "seconds": round(seconds, 6),
        "ops_per_sec": round(ops / seconds) if seconds > 0 else None,
    }


def _best_of(repeats: int, fn) -> float:
    """Best (minimum) wall time of ``repeats`` runs — the standard noise
    filter for microbenchmarks (the minimum is the least-interfered run)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="session", autouse=True)
def _write_results():
    yield
    if not RESULTS:  # e.g. a single deselected test — nothing to write
        return
    document = {
        "schema": BENCH_SCHEMA,
        "mode": "smoke" if SMOKE else "full",
        "python": ".".join(str(part) for part in sys.version_info[:3]),
        "benches": {name: RESULTS[name] for name in sorted(RESULTS)},
    }
    OUT_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"\n[bench] wrote {OUT_PATH}")


def test_bench_event_churn():
    """Raw heap throughput: fire-and-forget schedule + drain, no payloads."""
    def run_once():
        sim = Simulator(seed=0)
        schedule = sim.schedule_call_at
        counter = [0]

        def tick(box=counter):
            box[0] += 1

        for i in range(N_EVENTS):
            schedule(i * 1e-6, tick, ())
        sim.run()
        assert counter[0] == N_EVENTS

    seconds = _best_of(3, run_once)
    _record("event_churn", N_EVENTS, seconds)


def test_bench_timer_cancel_churn():
    """Cancellation-heavy load: schedule timers, cancel 75%, drain the rest.

    Exercises the lazy-deletion table and heap compaction — the seed kernel
    paid O(n) per cancel here.
    """
    def run_once():
        sim = Simulator(seed=0)
        fired = [0]

        def tick(box=fired):
            box[0] += 1

        events = [sim.schedule(1.0 + i * 1e-6, tick) for i in range(N_TIMERS)]
        for index, event in enumerate(events):
            if index % 4:  # cancel 3 of every 4
                event.cancel()
        sim.run()
        assert fired[0] == (N_TIMERS + 3) // 4

    seconds = _best_of(3, run_once)
    _record("timer_cancel_churn", N_TIMERS, seconds)


def test_bench_send_deliver_throughput():
    """Network fabric cost: send N messages through delay model + stats.

    Covers the inlined send path, the memoized byte accounting and the
    delivery push — everything between ``env.send`` and ``node.deliver``.
    """
    class Sink:
        def __init__(self):
            self.received = 0

        def deliver(self, envelope):
            self.received += 1

    def run_once():
        sim = Simulator(seed=0)
        network = Network(sim)
        sinks = {pid: Sink() for pid in range(4)}
        for pid, sink in sinks.items():
            network.register(pid, sink)
        payload = ("bench-payload", 12345)
        send = network.send
        for i in range(N_SENDS):
            send(i % 4, (i + 1) % 4, payload)
        sim.run()
        assert sum(sink.received for sink in sinks.values()) == N_SENDS

    seconds = _best_of(3, run_once)
    _record("send_deliver_throughput", N_SENDS, seconds)


def test_bench_trace_record_and_query():
    """Tracer cost: emit N records, then the common queries.

    The incremental per-kind index makes ``of_kind``/``counts`` O(result);
    this bench would regress sharply if they went back to O(all records).
    """
    def run_once():
        tracer = Tracer()
        emit = tracer.emit
        for i in range(N_RECORDS):
            emit(i * 1e-6, i % 4, "send" if i % 3 else "deliver", i)
        for _ in range(20):
            sends = tracer.of_kind("send")
            counts = tracer.counts()
        assert counts["send"] == len(sends)

    seconds = _best_of(3, run_once)
    _record("trace_record_query", N_RECORDS, seconds)


def test_bench_batch_drain():
    """Cohort drain throughput: deep queue, many events per timestamp.

    The batched run loop gathers same-timestamp cohorts in bulk once the
    queue is deeper than its threshold; this workload (N events spread over
    N/128 timestamps, all scheduled up front) keeps it on that path for the
    whole drain.  Contrast with ``event_churn``, whose distinct timestamps
    measure the same loop's per-event fallback.
    """
    cohort = 128

    def run_once():
        sim = Simulator(seed=0)
        schedule = sim.schedule_call_at
        counter = [0]

        def tick(box=counter):
            box[0] += 1

        for i in range(N_EVENTS):
            schedule((i // cohort) * 1e-5, tick, ())
        sim.run()
        assert counter[0] == N_EVENTS
        assert sim.drain_batches > 0

    seconds = _best_of(3, run_once)
    _record("batch_drain", N_EVENTS, seconds)


def test_bench_figure2_cell():
    """End-to-end: one Figure-2 sweep cell (cabcast-p on the paper LAN).

    Best-of-5 like the microbenches: a single end-to-end run is ~100ms and
    one descheduling blip would dominate it.
    """
    spec = AbcastRunSpec(
        protocol="cabcast-p",
        rate=CELL_RATE,
        duration=CELL_DURATION,
        n=4,
        seed=0,
        warmup=min(0.5, CELL_DURATION * 0.2),
        cluster=PAPER_LAN,
    )
    reports = []

    def run_once():
        reports.append(execute_run(spec))

    seconds = _best_of(5, run_once)
    report = reports[-1]
    assert report.delivered > 0
    events = report.trace_counts.get("a-deliver", 0) + report.network["sent"]
    _record("figure2_cell", events, seconds)
    RESULTS["figure2_cell"]["sim_time"] = report.sim_time


def test_bench_parallel_shards():
    """Conservative-parallel execution: an 8-shard RSM run, serial kernel vs
    partitioned kernels on multiprocess workers.

    ``ops`` counts the kernel events the run processes, so ``ops_per_sec``
    measures end-to-end event throughput of the partitioned executor —
    including fork/IPC overhead and the merge stage.  The recorded
    ``speedup_vs_serial`` ratio compares against the single-kernel serial
    run of the same workload; on a multi-core box the partitioned run wins
    once per-shard work dominates process overhead, while a single-CPU
    container (like the baseline recorder) can only show the overhead —
    compare ratios across machines, not absolute values.
    """
    from repro.engine import RsmRunSpec, TopologySpec

    # Smoke mode shrinks the run ~3× rather than ~50×: below a few thousand
    # events the per-window fixed costs dominate ops/s and the smoke gate
    # would compare overhead, not throughput.
    base = dict(
        protocol="multipaxos",
        rate=120.0,
        duration=3.0 if not SMOKE else 1.0,
        clients=8,
        seed=0,
        topology=TopologySpec(groups=8, group_size=3),
    )
    workers = min(4, os.cpu_count() or 1)
    serial_spec = RsmRunSpec(**base)
    parallel_spec = RsmRunSpec(**base, parallel=True, workers=workers)

    from repro.rsm.runner import run_rsm

    results = []

    def run_serial():
        results.append(("serial", run_rsm(serial_spec)))

    def run_parallel():
        results.append(("parallel", run_rsm(parallel_spec)))

    serial_seconds = _best_of(3, run_serial)
    parallel_seconds = _best_of(3, run_parallel)
    parallel_result = next(r for tag, r in reversed(results) if tag == "parallel")
    events = parallel_result.sim.events_processed
    assert parallel_result.committed > 0
    _record("parallel_shards", events, parallel_seconds)
    RESULTS["parallel_shards"]["workers"] = workers
    RESULTS["parallel_shards"]["serial_seconds"] = round(serial_seconds, 6)
    RESULTS["parallel_shards"]["speedup_vs_serial"] = round(
        serial_seconds / parallel_seconds, 4
    )
    RESULTS["parallel_shards"]["speedup_bound"] = round(
        parallel_result.parallel["speedup_bound"], 4
    )
