"""Ablation A2 — zero-degradation: the cost of crashes and detector instability.

Definition 3 promises two-step decisions in every *stable* run, i.e. crashes
that are reflected in the detector from the start cost nothing.  This bench
quantifies that promise and its boundary:

* stable runs with 0 or 1 initial crashes → 2 steps, always (L and P);
* a *recovery* run (crash at t=0 but detection delayed) costs extra rounds
  exactly while the detector lags — the paper's footnote-1 scenario;
* Brasileiro's protocol degrades even in stable runs (its fallback needs an
  extra protocol), which is the gap the paper's protocols close.
"""

from repro.harness import run_consensus
from repro.harness.factories import (
    brasileiro_consensus,
    l_consensus,
    p_consensus,
)

from conftest import once


def steps_with(make, initially_crashed=(), crash_at=None, detection_delay=0.0, seeds=6):
    results = []
    for seed in range(seeds):
        result = run_consensus(
            make,
            {p: f"v{p}" for p in range(4)},
            seed=seed,
            initially_crashed=initially_crashed,
            crash_at=crash_at,
            detection_delay=detection_delay,
            horizon=10.0,
        )
        results.append(result.min_steps)
    return results


def test_degradation(benchmark, report):
    def experiment():
        table = {}
        for name, make in (
            ("L-Consensus", l_consensus),
            ("P-Consensus", p_consensus),
            ("Brasileiro", brasileiro_consensus),
        ):
            table[name] = {
                "failure-free": steps_with(make),
                "stable, 1 initial crash": steps_with(make, initially_crashed=(2,)),
                "recovery (2ms blind spot)": steps_with(
                    make, crash_at={2: 0.0}, detection_delay=2e-3
                ),
            }
        return table

    table = once(benchmark, experiment)

    report.line("Ablation A2 — decision steps across failure scenarios (n=4, split proposals)")
    report.line("=" * 78)
    scenarios = list(next(iter(table.values())))
    report.line(f"{'protocol':<14}" + "".join(f"{s:<28}" for s in scenarios))
    for name, row in table.items():
        cells = []
        for s in scenarios:
            steps = row[s]
            cells.append(f"{min(steps)}..{max(steps)}")
        report.line(f"{name:<14}" + "".join(f"{c:<28}" for c in cells))
    report.line()
    report.line("Zero-degradation = the '1 initial crash' column equals the")
    report.line("failure-free column (2 steps).  Recovery runs may cost more —")
    report.line("the paper argues they are transient and amortised away.")
    report.emit("ablation_degradation")

    # Zero-degradation for the paper's protocols.
    for name in ("L-Consensus", "P-Consensus"):
        assert set(table[name]["failure-free"]) == {2}
        assert set(table[name]["stable, 1 initial crash"]) == {2}
    # Brasileiro needs >= 3 steps even failure-free (not zero-degrading).
    assert min(table["Brasileiro"]["failure-free"]) >= 3


def test_recovery_cost_vs_detection_delay(benchmark, report):
    """The transient cost of an unstable detector, as a function of its lag."""

    def experiment():
        rows = {}
        for delay_ms in (0, 1, 2, 5, 10):
            results = []
            for seed in range(6):
                result = run_consensus(
                    l_consensus,
                    {p: f"v{p}" for p in range(4)},
                    seed=seed,
                    crash_at={0: 0.0},  # the *leader* crashes at t=0
                    detection_delay=delay_ms * 1e-3,
                    horizon=20.0,
                )
                # Time to first decision, in ms.
                first = min(r.at for r in result.records.values())
                results.append(first * 1e3)
            rows[delay_ms] = sum(results) / len(results)
        return rows

    rows = once(benchmark, experiment)

    report.line("Recovery-run cost: leader crashes at t=0, detector lags")
    report.line("=" * 58)
    report.line(f"{'detection delay [ms]':<24}{'mean time to decide [ms]':<26}")
    for delay_ms, decide_ms in rows.items():
        report.line(f"{delay_ms:<24}{decide_ms:<26.2f}")
    report.line()
    report.line("Decision time tracks the detector lag (the protocol is")
    report.line("'indulgent': it waits out the blind spot, then finishes fast).")
    report.emit("ablation_recovery")

    assert rows[10] > rows[0]  # a slower detector delays the decision
    assert rows[10] >= 10.0  # cannot decide before suspecting the leader
