"""Table 1 — analytical comparison, validated by measurement.

Regenerates the paper's Table 1 (latency, message complexity, resilience,
oracle per protocol) from the closed forms in
:mod:`repro.analysis.complexity`, then *measures* each cell that the
simulator can measure: communication steps to a-delivery and message counts
for one uncontended a-broadcast, per protocol, in a stable run.
"""

import pytest

from repro.analysis.complexity import format_table1, table1
from repro.harness.abcast_runner import run_abcast
from repro.harness.factories import cabcast_l, cabcast_p, multipaxos_abcast, wabcast
from repro.sim.network import ConstantDelay

from conftest import once

DELTA = 100e-6
D = ConstantDelay(DELTA)


def _measure(make, n, collide=False, seed=1):
    """One a-broadcast (optionally with one colliding competitor)."""
    schedules = {1: [(0.001, "m")]}
    if collide:
        schedules[2] = [(0.001, "m2")]
        # A second-long-tail datagram model manufactures the collision
        # deterministically enough over a few seeds.
        from repro.sim.network import UniformDelay

        dgram = UniformDelay(0.2 * DELTA, 3 * DELTA)
    else:
        dgram = D
    result = run_abcast(
        make, n, schedules, seed=seed, delay=D, datagram_delay=dgram, horizon=5.0
    )
    latency = result.latency_of((1, 1))
    kinds = result.network_stats["by_kind"]
    # Decision-dissemination traffic (task T2 / WabDecision) is excluded,
    # matching the paper's message counting.
    protocol_messages = sum(
        count
        for kind, count in kinds.items()
        if kind not in ("Decide", "WabDecision")
    )
    return latency / DELTA, protocol_messages


def test_table1(benchmark, report):
    def experiment():
        rows = {}
        rows["L-Consensus"] = _measure(cabcast_l, 4)
        rows["P-Consensus"] = _measure(cabcast_p, 4)
        rows["WABCast"] = _measure(wabcast, 4)
        rows["Paxos (n=3)"] = _measure(multipaxos_abcast, 3)
        return rows

    measured = once(benchmark, experiment)

    report.line("Table 1 — analytical (paper) vs measured (simulator)")
    report.line("=" * 64)
    report.line(format_table1(4))
    report.line()
    report.line("Measured, one uncontended a-broadcast in a stable run:")
    report.line(f"{'Protocol':<14}{'latency [delta]':<18}{'#messages':<12}")
    for name, (steps, messages) in measured.items():
        report.line(f"{name:<14}{steps:<18.2f}{messages:<12d}")
    report.emit("table1")

    # The paper's cells, exactly:
    lp = next(r for r in table1(4) if r.protocol == "L-/P-Consensus")
    wab = next(r for r in table1(4) if r.protocol == "WABCast")
    paxos3 = next(r for r in table1(3) if r.protocol == "Paxos")
    assert measured["L-Consensus"][0] == pytest.approx(lp.latency_no_collisions, rel=0.01)
    assert measured["P-Consensus"][0] == pytest.approx(lp.latency_no_collisions, rel=0.01)
    assert measured["WABCast"][0] == pytest.approx(wab.latency_no_collisions, rel=0.01)
    assert measured["Paxos (n=3)"][0] == pytest.approx(3, rel=0.01)
    assert measured["L-Consensus"][1] == lp.messages_no_collisions
    assert measured["P-Consensus"][1] == lp.messages_no_collisions
    assert measured["WABCast"][1] == wab.messages_no_collisions
    assert measured["Paxos (n=3)"][1] == paxos3.messages_no_collisions


def test_table1_collision_column(benchmark, report):
    """The ';collisions' column: L/P fall back to 3 delta, bounded messages."""

    def experiment():
        outcomes = []
        for seed in range(12):
            latency, messages = _measure(cabcast_l, 4, collide=True, seed=seed)
            outcomes.append((latency, messages))
        return outcomes

    outcomes = once(benchmark, experiment)
    slow_path = [o for o in outcomes if o[0] > 2.5]

    report.line("Table 1 collision column — L-Consensus under a 2-way collision")
    report.line(f"{'seed':<6}{'latency [delta]':<18}{'#messages'}")
    for seed, (latency, messages) in enumerate(outcomes):
        report.line(f"{seed:<6}{latency:<18.2f}{messages}")
    report.line()
    report.line(
        f"{len(slow_path)}/{len(outcomes)} runs hit the slow path; "
        "paper predicts 3 delta and 2n^2+n messages there."
    )
    report.emit("table1_collisions")

    # Some seeds must actually collide, and colliding runs stay bounded
    # near the paper's 3-delta / 2n^2+n prediction.
    assert slow_path, "no seed produced a collision"
    for latency, messages in slow_path:
        assert latency <= 8.5  # 3 delta for the winner; the loser rides round 2
