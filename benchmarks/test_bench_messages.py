"""Ablation A3 — message complexity: measured vs Table 1 formulas, scaling n.

Counts every protocol message for one uncontended a-broadcast while scaling
the group size, and checks the measurements against the closed forms
(n² + n for the WAB-based protocols, n² + n + 1 for Paxos).  This is the
quantitative side of the paper's resilience/cost trade: the one-step
protocols pay O(n²) decentralised traffic for their lower latency.
"""

from repro.analysis.complexity import table1
from repro.harness.abcast_runner import run_abcast
from repro.harness.factories import cabcast_l, cabcast_p, multipaxos_abcast, wabcast
from repro.sim.network import ConstantDelay

from conftest import once

D = ConstantDelay(100e-6)
EXCLUDED = ("Decide", "WabDecision")  # decision dissemination, as in the paper


def protocol_messages(make, n, seed=1):
    result = run_abcast(
        make, n, {1: [(0.001, "m")]}, seed=seed, delay=D, datagram_delay=D, horizon=5.0
    )
    kinds = result.network_stats["by_kind"]
    return sum(c for k, c in kinds.items() if k not in EXCLUDED)


def test_message_scaling(benchmark, report):
    sizes = (4, 5, 7, 10)

    def experiment():
        rows = {}
        for n in sizes:
            rows[n] = {
                "L-Consensus": protocol_messages(cabcast_l, n),
                "P-Consensus": protocol_messages(cabcast_p, n),
                "WABCast": protocol_messages(wabcast, n),
                "Paxos": protocol_messages(multipaxos_abcast, n),
            }
        return rows

    rows = once(benchmark, experiment)

    report.line("Ablation A3 — messages per uncontended a-broadcast, scaling n")
    report.line("=" * 70)
    names = ["L-Consensus", "P-Consensus", "WABCast", "Paxos"]
    report.line(
        f"{'n':<4}"
        + "".join(f"{name:<14}" for name in names)
        + f"{'n^2+n':<8}{'n^2+n+1':<8}"
    )
    for n in sizes:
        report.line(
            f"{n:<4}"
            + "".join(f"{rows[n][name]:<14}" for name in names)
            + f"{n * n + n:<8}{n * n + n + 1:<8}"
        )
    report.emit("ablation_messages")

    for n in sizes:
        lp_row = next(r for r in table1(n) if r.protocol == "L-/P-Consensus")
        paxos_row = next(r for r in table1(n) if r.protocol == "Paxos")
        assert rows[n]["L-Consensus"] == lp_row.messages_no_collisions
        assert rows[n]["P-Consensus"] == lp_row.messages_no_collisions
        assert rows[n]["WABCast"] == lp_row.messages_no_collisions
        assert rows[n]["Paxos"] == paxos_row.messages_no_collisions


def test_collision_message_overhead(benchmark, report):
    """Under a forced collision, L/P pay one extra PROP round (≈ +n²)."""
    from repro.sim.network import UniformDelay

    def experiment():
        baseline = protocol_messages(cabcast_l, 4)
        contended = []
        for seed in range(10):
            result = run_abcast(
                cabcast_l,
                4,
                {1: [(0.001, "a")], 2: [(0.001, "b")]},
                seed=seed,
                delay=D,
                datagram_delay=UniformDelay(20e-6, 300e-6),
                horizon=5.0,
            )
            kinds = result.network_stats["by_kind"]
            contended.append(sum(c for k, c in kinds.items() if k not in EXCLUDED))
        return baseline, contended

    baseline, contended = once(benchmark, experiment)

    report.line("Collision overhead — L-Consensus messages per decision")
    report.line("=" * 58)
    report.line(f"uncontended: {baseline} (= n^2 + n)")
    report.line(f"2-way collision across seeds: {sorted(contended)}")
    report.line()
    report.line("Table 1 predicts 2n^2 + n = 36 on the slow path; contended")
    report.line("runs carry two messages' worth of traffic plus retries.")
    report.emit("ablation_collision_messages")

    assert baseline == 20
    assert max(contended) > baseline  # collisions genuinely cost messages
