"""Ablation A5 — the resilience/latency trade (section 2's e/f analysis).

The paper recounts Lamport's generalisation of one-step consensus:
``n - e`` equal values decide in one step, ``n - f`` processes make
progress, requiring ``n > max(2f, 2e + f)``.  Maximising ``e`` gives the
``f < n/3`` regime of Brasileiro and of the paper's own protocols;
maximising ``f`` gives one-step consensus that tolerates a *minority* of
crashes (``f < n/2``) but needs ``e ≤ n/4`` near-unanimity to go fast.

This bench sweeps the legal (e, f) corners for several group sizes and
measures, per corner: whether unanimity still decides in one step after
``e`` crashes, and after ``f`` crashes (where the fast quorum is dead and
the fallback must finish the job).
"""

from repro.harness import run_consensus
from repro.protocols import LamportOneStepConsensus, PaxosConsensus

from conftest import once


def corner_factory(e, f):
    def factory(pid, env, oracle, host):
        return LamportOneStepConsensus(
            env,
            lambda senv: PaxosConsensus(senv, oracle.omega(pid), f=f),
            f=f,
            e=e,
        )

    return factory


def measure(n, e, f):
    """(steps with e crashes, steps with f crashes), unanimous proposals."""
    proposals = {p: "v" for p in range(n)}
    with_e = run_consensus(
        corner_factory(e, f),
        proposals,
        seed=1,
        initially_crashed=tuple(range(n - e, n)),
        horizon=10.0,
    )
    with_f = run_consensus(
        corner_factory(e, f),
        proposals,
        seed=2,
        initially_crashed=tuple(range(n - f, n)),
        horizon=10.0,
    )
    return with_e.min_steps, with_f.min_steps


def test_resilience_corners(benchmark, report):
    # (n, e, f) legal corners: max-e (Brasileiro regime) and max-f regimes.
    corners = [
        (4, 1, 1),  # n > 3f: the paper's regime
        (5, 1, 2),  # f < n/2 with a small fast threshold
        (7, 2, 2),  # Brasileiro regime at n=7
        (7, 1, 3),  # max crash tolerance at n=7
        (9, 2, 4),  # e = n/4 bound with f < n/2
    ]

    def experiment():
        return {(n, e, f): measure(n, e, f) for n, e, f in corners}

    results = once(benchmark, experiment)

    report.line("Ablation A5 — one-step resilience corners (n > max(2f, 2e+f))")
    report.line("=" * 66)
    report.line(
        f"{'n':<4}{'e':<4}{'f':<4}{'steps w/ e crashes':<20}{'steps w/ f crashes':<20}"
    )
    for (n, e, f), (steps_e, steps_f) in results.items():
        report.line(f"{n:<4}{e:<4}{f:<4}{steps_e:<20}{steps_f:<20}")
    report.line()
    report.line("With <= e crashes unanimity still decides in ONE step; beyond e")
    report.line("the fast quorum n-e is unreachable and the fallback (1 + Paxos)")
    report.line("finishes — progress holds up to f crashes.")
    report.emit("ablation_resilience")

    for (n, e, f), (steps_e, steps_f) in results.items():
        assert steps_e == 1, f"(n={n},e={e},f={f}) lost the fast path within e crashes"
        if f > e:
            assert steps_f >= 3, f"(n={n},e={e},f={f}) should have needed the fallback"
