"""Figure 2 — L-/P-Consensus vs WABCast, mean latency vs throughput (n = 4).

Reproduces the paper's Figure 2: atomic-broadcast latency as a function of
throughput (20..500 msg/s) for C-Abcast over L-Consensus, C-Abcast over
P-Consensus, and WABCast, on a simulated 4-node LAN cluster in stable runs.

Paper's findings, asserted as curve shapes:
* all three protocols have similar latency at low throughput (<= 80 msg/s);
* WABCast degrades for throughputs above ~100 msg/s (collisions stall its
  inner rounds), while L-/P-Consensus keep rising gently (the consensus
  falls back to its 2-step path instead of retrying).
"""

import statistics

from repro.harness.factories import cabcast_l, cabcast_p, wabcast
from repro.workload.experiment import latency_vs_throughput

from conftest import engine_cache, engine_jobs, once

THROUGHPUTS = (20, 50, 80, 100, 150, 200, 250, 300, 350, 400, 450, 500)
DURATION = 3.0
WARMUP = 0.5


def sweep(make, seed=101):
    return latency_vs_throughput(
        make, 4, THROUGHPUTS, duration=DURATION, warmup=WARMUP, drain=1.5, seed=seed,
        jobs=engine_jobs(), cache=engine_cache(),
    )


def test_fig2(benchmark, report):
    def experiment():
        return {
            "P-Consensus": sweep(cabcast_p),
            "L-Consensus": sweep(cabcast_l),
            "WABCast": sweep(wabcast),
        }

    curves = once(benchmark, experiment)

    report.line("Figure 2 — mean latency [ms] vs throughput [msg/s] (n = 4)")
    report.line("=" * 66)
    header = f"{'throughput':<12}" + "".join(f"{name:<14}" for name in curves)
    report.line(header)
    for i, rate in enumerate(THROUGHPUTS):
        row = f"{rate:<12}"
        for name in curves:
            point = curves[name][i]
            row += f"{point.mean_latency_ms:<14.2f}"
        report.line(row)
    report.line()
    report.line(f"(duration {DURATION}s per point, warmup {WARMUP}s, Poisson open loop)")
    report.emit("fig2")

    def mean_low(points):
        return statistics.fmean(p.mean_latency_ms for p in points[:3])  # <= 80

    def mean_high(points):
        return statistics.fmean(p.mean_latency_ms for p in points[-3:])  # >= 400

    lp_low = min(mean_low(curves["L-Consensus"]), mean_low(curves["P-Consensus"]))
    wab_low = mean_low(curves["WABCast"])
    lp_high = max(mean_high(curves["L-Consensus"]), mean_high(curves["P-Consensus"]))
    wab_high = mean_high(curves["WABCast"])

    # Shape 1: similar at low throughput (within 15%).
    assert abs(wab_low - lp_low) / lp_low < 0.15
    # Shape 2: WABCast clearly worse at high throughput.
    assert wab_high > lp_high * 1.08
    # Shape 3: every curve rises with load (no protocol is load-insensitive).
    for name, points in curves.items():
        assert mean_high(points) > mean_low(points), f"{name} did not rise"
    # Shape 4: everything offered in the window was delivered (stable runs).
    for points in curves.values():
        for point in points:
            assert point.loss_fraction < 0.02
