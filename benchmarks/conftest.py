"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's evaluation artifacts (Table 1,
Figures 1-3) or an ablation, prints a paper-style rendering, and writes the
same text to ``benchmarks/out/<name>.txt`` so EXPERIMENTS.md numbers are
regenerable.  ``pytest benchmarks/ --benchmark-only`` runs everything.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def engine_jobs() -> int:
    """Worker processes for engine-driven sweeps (``REPRO_BENCH_JOBS``).

    Defaults to serial so timings stay comparable; export
    ``REPRO_BENCH_JOBS=4`` to fan the Figure-2/3 grids out — results are
    identical, the runs are deterministic and independent.
    """
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def engine_cache() -> str | None:
    """Result-cache directory for sweeps (``REPRO_BENCH_CACHE``).

    With a cache set, re-running a bench only executes cells whose spec
    changed; unchanged figures are served from disk.
    """
    return os.environ.get("REPRO_BENCH_CACHE") or None


@pytest.fixture
def report():
    """Collects lines, prints them, and persists them per-bench."""

    class Report:
        def __init__(self):
            self.lines: list[str] = []

        def line(self, text: str = "") -> None:
            self.lines.append(text)

        def emit(self, name: str) -> None:
            text = "\n".join(self.lines) + "\n"
            print("\n" + text)
            OUT_DIR.mkdir(exist_ok=True)
            (OUT_DIR / f"{name}.txt").write_text(text)

    return Report()


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
