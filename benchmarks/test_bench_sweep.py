"""Sweep-engine benchmarks: warm pools, cost-aware scheduling, cache replay.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_sweep.py -q -s

Each benchmark times one orchestration path of the sweep engine — a cold
Figure-2-style grid on the v2 engine vs the PR-4 executor it replaced,
worker-pool reuse across sweeps, and write-behind + cached replay — and the
session writes the measurements to ``benchmarks/BENCH_sweep.json``.  That
file is checked in as the perf baseline of the PR that introduced it;
re-run the suite and diff to see where a change moved the needle (absolute
numbers are machine-specific — compare ratios, not values, across
machines).

The grid keeps the Figure-2 shape (4 protocols × 8 rates) but uses short
per-cell durations: the protocol simulation inside a cell is identical in
every execution path by construction (the byte-identity assertions prove
it), so cell length only dilutes what these benchmarks measure — the
per-sweep orchestration cost (pool spawn/teardown, dispatch, transfer,
scheduling) that this engine revision removed.

``REPRO_BENCH_SMOKE=1`` shrinks the grid so CI can verify the benchmarks
still run — including the warm worker-pool path — without slowing the
matrix; the ≥1.5× speedup assertion only applies to full runs.

These are *benchmarks*, not correctness tests: beyond timing they only
assert what must hold on any machine — byte-identical reports across
execution paths — and they live outside the tier-1 ``tests/`` tree so
normal test runs skip them.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.engine import (
    PAPER_LAN,
    ResultCache,
    available_cpus,
    run_sweep,
    shutdown_shared_pool,
    sweep_grid,
)
from repro.engine.runner import execute_run

BENCH_SCHEMA = "repro.bench-sweep.v1"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Figure-2-style grid: 4 protocols × 8 rates (shrunk ~8× for CI smoke).
GRID_PROTOCOLS = (
    ["cabcast-p", "wabcast"] if SMOKE
    else ["cabcast-p", "cabcast-l", "wabcast", "ct-abcast"]
)
GRID_RATES = [20, 100, 300] if SMOKE else [20, 50, 100, 150, 200, 300, 400, 500]
CELL_DURATION = 0.02
JOBS = 2 if SMOKE else 4
REPEATS = 2 if SMOKE else 5

OUT_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"

#: bench name -> measurement dict
RESULTS: dict[str, dict] = {}


def _grid(seed: int = 0):
    return sweep_grid(
        GRID_PROTOCOLS,
        GRID_RATES,
        duration=CELL_DURATION,
        warmup=CELL_DURATION * 0.2,
        seed=seed,
        cluster=PAPER_LAN,
    )


def _best_of(repeats: int, fn) -> float:
    """Best (minimum) wall time of ``repeats`` runs — the standard noise
    filter for benchmarks (the minimum is the least-interfered run)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _pr4_run_sweep(specs, jobs):
    """The sweep executor as of PR 4, kept here as the comparison baseline:
    a cold ``ProcessPoolExecutor`` per sweep, blind spec-order dispatch via
    ``pool.map``, results shipped back as pickled ``RunReport`` objects."""
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
        return list(pool.map(execute_run, specs))


@pytest.fixture(scope="session", autouse=True)
def _write_results():
    yield
    shutdown_shared_pool()
    if not RESULTS:  # e.g. a single deselected test — nothing to write
        return
    document = {
        "schema": BENCH_SCHEMA,
        "mode": "smoke" if SMOKE else "full",
        "python": ".".join(str(part) for part in sys.version_info[:3]),
        "cpus": available_cpus(),
        "jobs": JOBS,
        "grid": {
            "protocols": list(GRID_PROTOCOLS),
            "rates": list(GRID_RATES),
            "duration": CELL_DURATION,
        },
        "benches": {name: RESULTS[name] for name in sorted(RESULTS)},
    }
    OUT_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"\n[bench] wrote {OUT_PATH}")


def test_bench_cold_grid_vs_pr4():
    """Headline number: a cold (cache-less) Figure-2 grid at ``jobs=JOBS``
    on the v2 engine vs the PR-4 executor.  The v2 path reuses the warm
    session pool, clamps oversubscribed jobs, dispatches longest-first and
    ships canonical JSON instead of pickles; reports must nevertheless stay
    byte-identical between the two paths."""
    specs = _grid()
    # Warm the session: the persistent pool is the feature under test, and
    # a real CLI/benchmark session has run sweeps before the one we time.
    run_sweep(_grid(seed=4242)[:2], jobs=JOBS)

    new_reports = run_sweep(specs, jobs=JOBS).reports
    pr4_reports = _pr4_run_sweep(specs, JOBS)
    assert [r.key for r in new_reports] == [r.key for r in pr4_reports]
    assert [r.to_json() for r in new_reports] == [r.to_json() for r in pr4_reports]

    seconds_new = _best_of(REPEATS, lambda: run_sweep(specs, jobs=JOBS))
    seconds_pr4 = _best_of(REPEATS, lambda: _pr4_run_sweep(specs, JOBS))
    speedup = seconds_pr4 / seconds_new
    RESULTS["cold_grid"] = {
        "cells": len(specs),
        "seconds_v2": round(seconds_new, 6),
        "seconds_pr4": round(seconds_pr4, 6),
        "speedup": round(speedup, 3),
        "cells_per_sec_v2": round(len(specs) / seconds_new, 1),
    }
    print(f"\n[bench] cold grid: v2 {seconds_new:.3f}s vs PR-4 {seconds_pr4:.3f}s "
          f"({speedup:.2f}x)")
    if not SMOKE:
        assert speedup >= 1.5, (
            f"v2 sweep engine only {speedup:.2f}x faster than the PR-4 path"
        )


def test_bench_warm_pool_reuse():
    """The worker-pool path proper (``clamp_jobs=False`` so it runs even on
    one CPU): first sweep pays pool spawn + warm imports, the second reuses
    the warm workers.  Byte-identity against serial execution is asserted
    on the cold sweep."""
    specs_cold = _grid(seed=11)
    specs_warm = _grid(seed=12)
    shutdown_shared_pool()

    start = time.perf_counter()
    cold = run_sweep(specs_cold, jobs=JOBS, clamp_jobs=False)
    seconds_cold = time.perf_counter() - start
    start = time.perf_counter()
    warm = run_sweep(specs_warm, jobs=JOBS, clamp_jobs=False)
    seconds_warm = time.perf_counter() - start
    assert all(report is not None for report in cold.reports + warm.reports)

    serial = [execute_run(spec) for spec in specs_cold]
    assert [r.to_json() for r in cold.reports] == [r.to_json() for r in serial]

    RESULTS["warm_pool"] = {
        "cells": len(specs_cold),
        "seconds_cold_pool": round(seconds_cold, 6),
        "seconds_warm_pool": round(seconds_warm, 6),
        "warm_over_cold": round(seconds_warm / seconds_cold, 3),
    }
    print(f"\n[bench] pool: cold {seconds_cold:.3f}s, warm {seconds_warm:.3f}s")


def test_bench_write_behind_and_cached_replay():
    """Write-behind persistence cost and fully-cached replay throughput,
    for both plain-JSON and gzip cache entries."""
    specs = _grid(seed=21)
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        first = run_sweep(specs, jobs=JOBS, cache=tmp)
        seconds_populate = time.perf_counter() - start
        assert first.cache_misses == len(specs)

        seconds_replay = _best_of(REPEATS, lambda: run_sweep(specs, cache=tmp))
        replay = run_sweep(specs, cache=tmp)
        assert (replay.cache_hits, replay.cache_misses) == (len(specs), 0)
        assert [r.to_json() for r in replay.reports] == [
            r.to_json() for r in first.reports
        ]

    with tempfile.TemporaryDirectory() as tmp:
        gz = ResultCache(tmp, compress=True)
        gz.put_many(first.reports)
        seconds_gz_replay = _best_of(
            REPEATS, lambda: run_sweep(specs, cache=ResultCache(tmp))
        )

    RESULTS["cache_replay"] = {
        "cells": len(specs),
        "seconds_populate": round(seconds_populate, 6),
        "seconds_replay": round(seconds_replay, 6),
        "seconds_replay_gzip": round(seconds_gz_replay, 6),
        "replay_cells_per_sec": round(len(specs) / seconds_replay, 1),
    }
    print(f"\n[bench] cache: populate {seconds_populate:.3f}s, "
          f"replay {seconds_replay:.3f}s, gzip replay {seconds_gz_replay:.3f}s")
