"""Ablation A1 — one-step rate vs proposal contention.

Why do L-/P-Consensus win at low throughput?  Because with no concurrent
proposers the WAB oracle hands every process the same proposal and consensus
finishes in ONE communication step.  This bench measures, per contention
level (number of simultaneous a-broadcasters), how many consensus instances
decide in 1 step vs 2+ steps, and the step distribution of all five
consensus protocols on equal vs split proposals.
"""

from repro.harness import run_consensus
from repro.harness.abcast_runner import run_abcast
from repro.harness.factories import CONSENSUS_FACTORIES, cabcast_l
from repro.harness.consensus_runner import CONSENSUS_SCOPE
from repro.sim.network import LanDelay

from conftest import once

DGRAM = LanDelay(base=300e-6, jitter_mean=150e-6, jitter_sigma=1.3)


def one_step_fraction(senders, seeds=8):
    """Fraction of C-Abcast rounds decided in one step at this contention."""
    fast = slow = 0
    for seed in range(seeds):
        schedules = {
            p: [(0.001, f"m{p}")] for p in range(senders)
        }
        result = run_abcast(
            cabcast_l, 4, schedules, seed=seed, datagram_delay=DGRAM, horizon=5.0
        )
        for host in result.hosts.values():
            abcast = host.abcast
            for instance in abcast._instances.values():
                if instance.decision is None or instance.decision.via != "round":
                    continue
                if instance.decision.steps == 1:
                    fast += 1
                else:
                    slow += 1
    total = fast + slow
    return fast / total if total else float("nan")


def test_onestep_rate_vs_contention(benchmark, report):
    def experiment():
        return {senders: one_step_fraction(senders) for senders in (1, 2, 3, 4)}

    rates = once(benchmark, experiment)

    report.line("Ablation A1 — one-step decision rate vs concurrent proposers")
    report.line("=" * 62)
    report.line(f"{'simultaneous senders':<24}{'1-step decisions':<20}")
    for senders, rate in rates.items():
        report.line(f"{senders:<24}{rate:<20.0%}")
    report.line()
    report.line("One sender => spontaneous order => one-step path (2 delta total).")
    report.line("More senders => collisions => the 2-step fallback (3 delta total).")
    report.emit("ablation_onestep")

    assert rates[1] == 1.0  # uncontended rounds always take the fast path
    assert rates[4] < rates[1]  # contention must hurt


def test_step_counts_all_protocols(benchmark, report):
    def experiment():
        table = {}
        for name, make in sorted(CONSENSUS_FACTORIES.items()):
            n = 3 if name == "paxos" else 4
            equal = run_consensus(make, {p: "v" for p in range(n)}, seed=7, horizon=10.0)
            split = run_consensus(
                make, {p: f"v{p}" for p in range(n)}, seed=7, horizon=10.0
            )
            table[name] = (equal.min_steps, split.min_steps)
        return table

    table = once(benchmark, experiment)

    report.line("Consensus steps to first decision (stable run, n=4; Paxos n=3)")
    report.line("=" * 62)
    report.line(f"{'protocol':<16}{'equal proposals':<18}{'split proposals':<18}")
    for name, (equal, split) in table.items():
        report.line(f"{name:<16}{equal:<18}{split:<18}")
    report.line()
    report.line("The paper's positioning: L/P are the only protocols with 1-step")
    report.line("equal-proposal decisions AND 2-step split-proposal decisions.")
    report.emit("ablation_steps")

    assert table["l-consensus"] == (1, 2)
    assert table["p-consensus"] == (1, 2)
    assert table["brasileiro"][0] == 1 and table["brasileiro"][1] >= 3
    assert table["paxos"] == (2, 2)
    assert table["fast-paxos"][0] == 2 and table["fast-paxos"][1] >= 4
