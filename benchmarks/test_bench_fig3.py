"""Figure 3 — L-/P-Consensus (n = 4) vs Paxos (n = 3), latency vs throughput.

Reproduces the paper's Figure 3: the one-step protocols trade Paxos's extra
communication step for a heavier (decentralised) message pattern.

Paper's findings, asserted as curve shapes:
* at low throughput L-/P-Consensus beat Paxos (2 delta + WAB vs 3 delta);
* "from a throughput of 300 msg/s upwards, Paxos slightly outperforms both
  protocols" — the curves cross in the hundreds of msg/s.
"""

import statistics

from repro.harness.factories import cabcast_l, cabcast_p, multipaxos_abcast
from repro.workload.experiment import latency_vs_throughput

from conftest import engine_cache, engine_jobs, once

THROUGHPUTS = (20, 50, 80, 100, 150, 200, 250, 300, 350, 400, 450, 500)
DURATION = 3.0
WARMUP = 0.5


def sweep(make, n):
    return latency_vs_throughput(
        make, n, THROUGHPUTS, duration=DURATION, warmup=WARMUP, seed=202,
        jobs=engine_jobs(), cache=engine_cache(),
    )


def test_fig3(benchmark, report):
    def experiment():
        return {
            "P-Consensus": sweep(cabcast_p, 4),
            "L-Consensus": sweep(cabcast_l, 4),
            "Paxos": sweep(multipaxos_abcast, 3),
        }

    curves = once(benchmark, experiment)

    report.line("Figure 3 — mean latency [ms] vs throughput [msg/s]")
    report.line("L-/P-Consensus at n = 4, Paxos at n = 3 (as in the paper)")
    report.line("=" * 66)
    header = f"{'throughput':<12}" + "".join(f"{name:<14}" for name in curves)
    report.line(header)
    for i, rate in enumerate(THROUGHPUTS):
        row = f"{rate:<12}"
        for name in curves:
            row += f"{curves[name][i].mean_latency_ms:<14.2f}"
        report.line(row)
    report.emit("fig3")

    def window(points, lo, hi):
        return statistics.fmean(
            p.mean_latency_ms for p in points if lo <= p.throughput <= hi
        )

    lp_low = min(
        window(curves["L-Consensus"], 20, 100), window(curves["P-Consensus"], 20, 100)
    )
    paxos_low = window(curves["Paxos"], 20, 100)
    lp_high = min(
        window(curves["L-Consensus"], 350, 500), window(curves["P-Consensus"], 350, 500)
    )
    paxos_high = window(curves["Paxos"], 350, 500)

    # Shape 1: L/P faster than Paxos at low throughput.
    assert lp_low < paxos_low
    # Shape 2: Paxos at least slightly ahead at high throughput (crossover).
    assert paxos_high < lp_high
    # Shape 3: nothing was lost (stable runs).
    for points in curves.values():
        for point in points:
            assert point.loss_fraction < 0.02
