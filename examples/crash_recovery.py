#!/usr/bin/env python3
"""Crash-recovery: a replica dies, restarts from stable storage, catches up.

Section 2 of the paper notes that Paxos-like protocols support the
crash-recovery model (Aguilera et al.).  This demo runs a counter replicated
over Multi-Paxos with per-node stable storage:

1. three replicas apply increments in a-delivery order;
2. replica 2 crashes mid-stream (volatile state lost);
3. a *fresh incarnation* restarts from its stable store, asks the group for
   the chosen-log suffix it missed, replays it, and converges to the same
   counter value as the survivors.

Usage:  python examples/crash_recovery.py
"""

from __future__ import annotations

from repro.fd.oracle import OracleFailureDetector
from repro.harness.abcast_runner import AbcastHost
from repro.protocols import MultiPaxosAbcast
from repro.sim.kernel import Simulator
from repro.sim.network import LanDelay, Network
from repro.sim.node import Node
from repro.sim.storage import StorageFabric


class CounterReplica(AbcastHost):
    """Applies delivered "+k" commands to a local counter."""

    def __init__(self, module_factory, schedule=()):
        super().__init__(module_factory, schedule)
        self.counter = 0

    def on_start(self):
        super().on_start()
        self.abcast.set_on_deliver(lambda m: self._apply(m.payload))

    def _apply(self, command: int) -> None:
        self.counter += command


def main() -> None:
    sim = Simulator(seed=11)
    network = Network(sim, delay=LanDelay())
    pids = [0, 1, 2]
    oracle = OracleFailureDetector(sim, pids)
    fabric = StorageFabric()

    def make_replica(pid: int, schedule=()) -> CounterReplica:
        return CounterReplica(
            module_factory=lambda host, env, pid=pid: MultiPaxosAbcast(
                env, oracle.omega(pid), storage=fabric.store(pid)
            ),
            schedule=schedule,
        )

    increments = [(0.002 * (i + 1), i + 1) for i in range(10)]  # +1 .. +10
    replicas = {pid: make_replica(pid, increments if pid == 1 else ()) for pid in pids}
    nodes = {pid: Node(sim, network, pid, pids, replicas[pid]) for pid in pids}
    oracle.watch(nodes)
    for node in nodes.values():
        node.start()

    crash_time, recover_time = 0.008, 0.015
    nodes[2].crash_at(crash_time)
    reborn: dict[str, CounterReplica] = {}

    def rebuild() -> CounterReplica:
        reborn["replica"] = make_replica(2)
        return reborn["replica"]

    nodes[2].recover_at(recover_time, rebuild)
    sim.run(until=1.0)

    first_life = replicas[2]
    second_life = reborn["replica"]
    store = fabric.store(2)

    print("=== crash-recovery: replicated counter over Multi-Paxos (n=3) ===\n")
    print(f"replica 2 crashed at {crash_time * 1e3:.0f} ms having applied "
          f"{len(first_life.abcast.delivered)} commands (counter={first_life.counter})")
    print(f"stable store now holds next_deliver={store.get('next_deliver')} "
          f"after {store.writes} writes across both incarnations")
    print(f"recovered at {recover_time * 1e3:.0f} ms; caught up "
          f"{len(second_life.abcast.delivered)} commands via CatchUpRequest\n")

    expected = sum(k for _, k in increments)
    print("final counters:")
    for pid in (0, 1):
        print(f"  replica {pid}:              {replicas[pid].counter}")
    total_at_2 = first_life.counter + second_life.counter
    print(f"  replica 2 (both lives):  {first_life.counter} + {second_life.counter} "
          f"= {total_at_2}")

    assert replicas[0].counter == replicas[1].counter == expected
    assert total_at_2 == expected, "recovered replica diverged!"
    print(f"\nall replicas converge on {expected}; no command lost or duplicated.  ✓")


if __name__ == "__main__":
    main()
