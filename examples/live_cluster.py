#!/usr/bin/env python3
"""Live run: the same protocol objects on asyncio instead of the simulator.

Every protocol in this library is written against an abstract environment,
so the code that runs deterministically under the discrete-event kernel also
runs in real time.  This demo boots a 4-node asyncio cluster in one process:

* each node runs a heartbeat-based ◇P failure detector (real timers),
* P-Consensus instances decide over it,
* node 3 is crashed mid-run and the survivors keep deciding.

Usage:  python examples/live_cluster.py
"""

import asyncio
import time

from repro.core import PConsensus
from repro.fd.heartbeat import HeartbeatSuspector
from repro.harness.consensus_runner import ConsensusHost
from repro.runtime import AsyncCluster
from repro.sim.network import LanDelay


def make_host(pid: int) -> ConsensusHost:
    return ConsensusHost(
        module_factory=lambda host, env: PConsensus(env, host.fd_module),
        proposal=f"value-from-p{pid}",
        fd_factory=lambda env: HeartbeatSuspector(
            env, period=0.02, initial_timeout=0.08
        ),
    )


async def main() -> None:
    cluster = AsyncCluster(
        4,
        lambda pid, pids: make_host(pid),
        delay=LanDelay(base=1e-3, jitter_mean=0.3e-3),
        seed=99,
    )
    print("booting 4 asyncio nodes (heartbeat ◇P + P-Consensus)...")
    started = time.monotonic()
    await cluster.start()

    await cluster.run(0.05)
    print(f"[{time.monotonic() - started:5.2f}s] crashing node 3")
    cluster.crash(3)

    await cluster.run(0.5)
    decisions = {
        pid: host.decision_value
        for pid, host in cluster.processes.items()
        if host.decision_value is not None
    }
    suspected = {
        pid: sorted(host.fd_module.suspected())
        for pid, host in cluster.processes.items()
        if pid != 3
    }
    await cluster.shutdown()

    print(f"[{time.monotonic() - started:5.2f}s] done\n")
    print("decisions:")
    for pid, value in sorted(decisions.items()):
        print(f"  p{pid} -> {value!r}")
    print(f"suspicions at the survivors: {suspected}")
    print(f"messages exchanged: {cluster.messages_sent}")

    values = {v for pid, v in decisions.items()}
    assert len(values) == 1, "agreement violated?!"
    print("\nall survivors agree.  ✓")


if __name__ == "__main__":
    asyncio.run(main())
