#!/usr/bin/env python3
"""Quickstart: one consensus instance and one atomic broadcast, end to end.

Runs the paper's two protocols on a simulated 4-node cluster:

1. a single L-Consensus instance with mixed proposals (decides the leader's
   value in two communication steps — zero-degradation);
2. a single P-Consensus instance with equal proposals (decides in ONE
   communication step — the one-step property);
3. a short C-Abcast session delivering a totally ordered message stream.

Usage:  python examples/quickstart.py
"""

from repro import run_abcast, run_consensus
from repro.harness.factories import cabcast_p, l_consensus, p_consensus


def consensus_demo() -> None:
    print("=== consensus: L-Consensus, mixed proposals (stable run) ===")
    result = run_consensus(
        l_consensus, {0: "apple", 1: "banana", 2: "cherry", 3: "durian"}, seed=1
    )
    for pid, record in sorted(result.records.items()):
        print(
            f"  p{pid} decided {record.value!r} after {record.steps} "
            f"communication step(s) via {record.via}"
        )
    print(f"  messages on the wire: {result.messages_sent}")

    print("\n=== consensus: P-Consensus, equal proposals (one-step) ===")
    result = run_consensus(p_consensus, {p: "unanimous" for p in range(4)}, seed=2)
    print(f"  decision: {set(result.decisions.values())}")
    print(f"  fastest decision took {result.min_steps} communication step")


def abcast_demo() -> None:
    print("\n=== atomic broadcast: C-Abcast over P-Consensus ===")
    schedules = {
        0: [(0.001, "deposit $10"), (0.005, "withdraw $3")],
        2: [(0.003, "deposit $7")],
    }
    result = run_abcast(cabcast_p, 4, schedules, seed=3, horizon=5.0)
    print("  every process a-delivered, in the same order:")
    for mid in result.deliveries[0]:
        message = result.broadcast[mid]
        latency_ms = result.latency_of(mid) * 1e3
        print(f"    {message.payload!r:20} (from p{message.origin}, {latency_ms:.2f} ms)")
    identical = len({tuple(seq) for seq in result.deliveries.values()}) == 1
    print(f"  identical delivery sequences at all 4 processes: {identical}")


if __name__ == "__main__":
    consensus_demo()
    abcast_demo()
