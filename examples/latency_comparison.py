#!/usr/bin/env python3
"""A condensed Figure 2 + Figure 3: all four abcast protocols on one sweep.

Sweeps the offered load on the simulated LAN cluster and prints the mean
a-deliver latency per protocol — the quick-look version of the full
benchmarks in benchmarks/test_bench_fig2.py and test_bench_fig3.py.

Usage:  python examples/latency_comparison.py [--full]
"""

import argparse

from repro.harness.factories import cabcast_l, cabcast_p, multipaxos_abcast, wabcast
from repro.workload.experiment import latency_vs_throughput


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper's full 12-point sweep (slower)",
    )
    args = parser.parse_args()

    if args.full:
        throughputs = (20, 50, 80, 100, 150, 200, 250, 300, 350, 400, 450, 500)
        duration = 3.0
    else:
        throughputs = (20, 100, 300, 500)
        duration = 1.5

    protocols = {
        "P-Consensus (n=4)": (cabcast_p, 4),
        "L-Consensus (n=4)": (cabcast_l, 4),
        "WABCast (n=4)": (wabcast, 4),
        "Paxos (n=3)": (multipaxos_abcast, 3),
    }

    print("mean a-deliver latency [ms] vs offered load [msg/s]")
    print("(simulated LAN; stable runs; Poisson open-loop as in section 8.1)\n")
    curves = {}
    for name, (make, n) in protocols.items():
        curves[name] = latency_vs_throughput(
            make, n, throughputs, duration=duration, warmup=0.3, seed=42
        )
        print(f"  swept {name}")

    print()
    print(f"{'throughput':<12}" + "".join(f"{name:<20}" for name in protocols))
    for i, rate in enumerate(throughputs):
        row = f"{rate:<12}"
        for name in protocols:
            row += f"{curves[name][i].mean_latency_ms:<20.2f}"
        print(row)

    print()
    print("Expected shapes (paper, Figures 2-3):")
    print("  * all WAB-based protocols start near 2 delta; Paxos near 3 delta;")
    print("  * WABCast degrades sharply past ~100-200 msg/s (collisions);")
    print("  * Paxos crosses below L/P in the hundreds of msg/s.")


if __name__ == "__main__":
    main()
