#!/usr/bin/env python3
"""Theorem 1, executed: why one-step + zero-degradation is impossible on Ω.

Two artifacts from section 4 of the paper:

1. the machine-discovered Figure-1 chain — constraint propagation over the
   full-information run space (n = 4, f = 1, Ω ≡ p1) forces some run to
   decide both 0 and 1 under the combined obligations;
2. the boundary of the theorem — three concrete protocol skeletons, each
   achieving exactly two of {one-step, zero-degrading, safe}:

       naive-combined   one-step + zero-degrading  →  UNSAFE
       l-consensus      zero-degrading + safe      →  not one-step
       brasileiro       one-step + safe            →  not zero-degrading

Usage:  python examples/lower_bound_demo.py
"""

from repro.core.lowerbound import (
    BrasileiroRule,
    LConsensusRule,
    NaiveCombinedRule,
    check_rule,
    prove_theorem1,
)

FAST_HEARS = [(1, 2, 3), (1, 2, 4), (1, 3, 4), (2, 3, 4)]


def main() -> None:
    print("=" * 72)
    print("Part 1 — the impossibility certificate (Figure 1, rediscovered)")
    print("=" * 72)
    certificate = prove_theorem1(restrict_hears=FAST_HEARS)
    print(certificate.explain())

    print()
    print("=" * 72)
    print("Part 2 — the boundary: what concrete decision rules achieve")
    print("=" * 72)
    for rule in (NaiveCombinedRule(), LConsensusRule(), BrasileiroRule()):
        report = check_rule(rule, restrict_hears=FAST_HEARS)
        print(f"\n{report.summary()}")
        for violation in report.safety_violations[:1]:
            print(f"  witness: {violation}")
        for violation in report.one_step_failures[:1]:
            print(f"  witness: {violation}")
        for violation in report.zero_degradation_failures[:1]:
            print(f"  witness: {violation}")

    print()
    print("Every rule loses exactly one property — as Theorem 1 demands.")


if __name__ == "__main__":
    main()
