#!/usr/bin/env python3
"""Replicated key-value store: state machine replication over C-Abcast.

The paper's motivation (section 1): "Atomic broadcast, which is at the core
of state machine replication, can be implemented as a sequence of consensus
instances."  This example builds exactly that stack:

    KV store (state machine)
      └── C-Abcast            (algorithm 3)
            ├── WAB oracle    (spontaneous order)
            └── L-Consensus   (algorithm 1, one instance per batch)

Four replicas apply SET/DEL commands in a-delivery order; one replica
crashes mid-run; the survivors end with byte-identical stores.

Usage:  python examples/replicated_kv_store.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import LConsensus
from repro.core.abcast_base import AppMessage
from repro.core.cabcast import CAbcast
from repro.fd.oracle import OracleFailureDetector
from repro.harness.abcast_runner import AbcastHost
from repro.harness.checkers import check_uniform_total_order
from repro.sim.kernel import Simulator
from repro.sim.network import LanDelay, Network
from repro.sim.node import Node


@dataclass(frozen=True)
class Set:
    key: str
    value: str


@dataclass(frozen=True)
class Delete:
    key: str


class KvReplica(AbcastHost):
    """An AbcastHost that applies delivered commands to a local dict."""

    def __init__(self, module_factory, schedule=()):
        super().__init__(module_factory, schedule)
        self.store: dict[str, str] = {}
        self.applied: list[AppMessage] = []

    def on_start(self):
        super().on_start()
        self.abcast.set_on_deliver(self._apply)

    def _apply(self, message: AppMessage) -> None:
        command = message.payload
        if isinstance(command, Set):
            self.store[command.key] = command.value
        elif isinstance(command, Delete):
            self.store.pop(command.key, None)
        self.applied.append(message)


def main() -> None:
    sim = Simulator(seed=7)
    network = Network(sim, delay=LanDelay())
    pids = [0, 1, 2, 3]
    oracle = OracleFailureDetector(sim, pids)

    workloads = {
        0: [
            (0.001, Set("user:1", "ada")),
            (0.004, Set("user:2", "grace")),
            (0.009, Delete("user:1")),
        ],
        1: [(0.002, Set("conf:mode", "fast")), (0.006, Set("user:3", "edsger"))],
        2: [(0.003, Set("user:1", "alan")), (0.008, Set("conf:mode", "safe"))],
    }

    replicas: dict[int, KvReplica] = {}
    nodes: dict[int, Node] = {}
    for pid in pids:
        replica = KvReplica(
            module_factory=lambda host, env, pid=pid: CAbcast(
                env, lambda senv: LConsensus(senv, oracle.omega(pid))
            ),
            schedule=workloads.get(pid, ()),
        )
        replicas[pid] = replica
        nodes[pid] = Node(sim, network, pid, pids, replica, service_time=10e-6)
    oracle.watch(nodes)

    for node in nodes.values():
        node.start()
    nodes[3].crash_at(0.005)  # one replica dies mid-run
    sim.run(until=2.0)

    print("=== replicated KV store over C-Abcast(L-Consensus), n=4, 1 crash ===\n")
    print("command log (as applied, identical at every survivor):")
    for message in replicas[0].applied:
        print(f"  [{message.sent_at * 1e3:6.2f} ms from p{message.origin}] {message.payload}")

    print("\nfinal stores:")
    for pid in (0, 1, 2):
        print(f"  replica {pid}: {dict(sorted(replicas[pid].store.items()))}")
    print(f"  replica 3: crashed at 5 ms (applied {len(replicas[3].applied)} commands)")

    survivors = {pid: replicas[pid] for pid in (0, 1, 2)}
    check_uniform_total_order(
        {pid: r.abcast.delivered_ids for pid, r in survivors.items()}
    )
    stores = {frozenset(r.store.items()) for r in survivors.values()}
    assert len(stores) == 1, "replica divergence!"
    print("\nsurvivor stores are identical; total order verified.  ✓")


if __name__ == "__main__":
    main()
