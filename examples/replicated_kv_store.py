#!/usr/bin/env python3
"""Replicated key-value store on the repro.rsm service layer.

The paper's motivation (section 1): "Atomic broadcast, which is at the core
of state machine replication, can be implemented as a sequence of consensus
instances."  This example runs that stack end to end through
:mod:`repro.rsm` — the service layer the repo builds on top of C-Abcast:

    client sessions (retries, exactly-once)
      └── RsmReplica  (batching, snapshots, log compaction)
            └── C-Abcast            (algorithm 3)
                  ├── WAB oracle    (spontaneous order)
                  └── L-Consensus   (algorithm 1, one instance per batch)

Six client sessions drive SET/GET/CAS/DEL traffic at four replicas; one
replica crashes mid-run and rejoins as a learner, recovering from its own
stable-storage snapshot plus a replayed log suffix fetched from the
survivors.  The run ends with every store byte-identical — the rejoined
replica included — and the committed history checked linearizable.

Usage:  python examples/replicated_kv_store.py
"""

from __future__ import annotations

from repro.engine import PAPER_LAN, RsmRunSpec
from repro.rsm import run_rsm, service_metrics

CRASHED, CRASH_AT = 3, 0.4


def main() -> None:
    spec = RsmRunSpec(
        protocol="cabcast-l",
        rate=150,
        duration=1.0,
        n=4,
        clients=6,
        seed=7,
        cluster=PAPER_LAN,
        crash_at=((CRASHED, CRASH_AT),),
    )
    # run_rsm checks exactly-once, session order, log agreement,
    # linearizability and recovery convergence before returning.
    result = run_rsm(spec)
    metrics = service_metrics(result)

    print("=== replicated KV service over C-Abcast(L-Consensus), n=4, 1 crash ===\n")
    latency = metrics["latency_ms"]
    print(
        f"committed {metrics['committed']} commands from {spec.clients} sessions "
        f"({metrics['ops_per_s']:.0f} ops/s; "
        f"p50 {latency['p50']:.2f} ms, p99 {latency['p99']:.2f} ms)"
    )
    print(
        f"batching amortised consensus: {metrics['batches']['count']} proposals, "
        f"mean batch size {metrics['batches']['mean_size']:.2f}"
    )
    print(
        f"snapshots: {metrics['snapshots']['taken']} taken, log compacted to "
        f"index {metrics['snapshots']['last_index']}"
    )

    auth = result.replicas[result.authority]
    print(f"\nfinal store (replica {result.authority}, last 5 keys):")
    for key, value in auth.machine.items()[-5:]:
        print(f"  {key} = {value}")

    recovery = metrics["recovery"][str(CRASHED)]
    print(
        f"\nreplica {CRASHED} crashed at {CRASH_AT * 1e3:.0f} ms, rejoined as a "
        f"learner from snapshot index {recovery['installed_index']}"
    )
    print(
        f"  replayed {recovery['replayed']} of {metrics['committed']} committed "
        f"commands (snapshot recovery, not full replay)"
    )
    assert recovery["replayed"] < metrics["committed"]

    digests = result.digests()
    assert len(set(digests.values())) == 1, "replica divergence!"
    print(f"  rejoined digest equals survivors' digest: {recovery['digest_match']}")
    print(
        f"\nsurvivor stores are identical (digest {metrics['digest'][:16]}…); "
        f"history linearizable: {metrics['linearizable']}.  ✓"
    )


if __name__ == "__main__":
    main()
