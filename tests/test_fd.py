"""Unit tests for the failure detectors: oracle and heartbeat flavours."""

import pytest

from repro.errors import ConfigurationError
from repro.fd.base import omega_from_suspects
from repro.fd.heartbeat import Heartbeat, HeartbeatSuspector
from repro.fd.oracle import OracleFailureDetector, ScriptedOmega, ScriptedSuspects
from repro.sim.kernel import Simulator
from repro.sim.network import ConstantDelay, Network
from repro.sim.node import Node
from repro.sim.process import HostProcess


class TestOracleDetector:
    def test_initial_leader_is_lowest_pid(self):
        sim = Simulator()
        oracle = OracleFailureDetector(sim, [0, 1, 2, 3])
        assert oracle.omega(2).leader() == 0
        assert oracle.suspect(2).suspected() == frozenset()

    def test_initially_crashed_reflected_from_the_start(self):
        sim = Simulator()
        oracle = OracleFailureDetector(sim, [0, 1, 2], initially_crashed=[0])
        assert oracle.omega(1).leader() == 1
        assert oracle.suspect(1).suspected() == frozenset({0})

    def test_unknown_initially_crashed_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            OracleFailureDetector(sim, [0, 1], initially_crashed=[9])

    def test_crash_updates_output_immediately_with_zero_delay(self):
        sim = Simulator()
        oracle = OracleFailureDetector(sim, [0, 1, 2])
        oracle.on_crash(0)
        assert oracle.omega(1).leader() == 1
        assert 0 in oracle.suspect(1).suspected()

    def test_detection_delay_postpones_output_change(self):
        sim = Simulator()
        oracle = OracleFailureDetector(sim, [0, 1], detection_delay=0.5)
        oracle.on_crash(0)
        assert oracle.omega(1).leader() == 0
        sim.run()
        assert sim.now == pytest.approx(0.5)
        assert oracle.omega(1).leader() == 1

    def test_subscribers_notified_on_leader_change(self):
        sim = Simulator()
        oracle = OracleFailureDetector(sim, [0, 1, 2])
        pokes = []
        oracle.omega(1).subscribe(lambda: pokes.append("omega"))
        oracle.suspect(2).subscribe(lambda: pokes.append("suspect"))
        oracle.on_crash(0)
        assert "omega" in pokes and "suspect" in pokes

    def test_no_omega_notification_when_leader_unchanged(self):
        sim = Simulator()
        oracle = OracleFailureDetector(sim, [0, 1, 2])
        pokes = []
        oracle.omega(0).subscribe(lambda: pokes.append("omega"))
        oracle.on_crash(2)  # leader stays 0
        assert pokes == []

    def test_duplicate_crash_ignored(self):
        sim = Simulator()
        oracle = OracleFailureDetector(sim, [0, 1])
        oracle.on_crash(0)
        pokes = []
        oracle.omega(1).subscribe(lambda: pokes.append(1))
        oracle.on_crash(0)
        assert pokes == []

    def test_watch_wires_node_crashes(self):
        sim = Simulator()
        net = Network(sim, delay=ConstantDelay(1e-3))
        nodes = {
            pid: Node(sim, net, pid, [0, 1], HostProcess()) for pid in (0, 1)
        }
        oracle = OracleFailureDetector(sim, [0, 1])
        oracle.watch(nodes)
        nodes[0].crash()
        assert oracle.omega(1).leader() == 1

    def test_negative_detection_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            OracleFailureDetector(sim, [0, 1], detection_delay=-1)


class TestScriptedViews:
    def test_scripted_omega_replays_timeline(self):
        sim = Simulator()
        view = ScriptedOmega(sim, [(0.0, 0), (1.0, 2), (2.0, 1)])
        changes = []
        view.subscribe(lambda: changes.append((sim.now, view.leader())))
        assert view.leader() == 0
        sim.run()
        assert changes == [(1.0, 2), (2.0, 1)]

    def test_scripted_suspects_replays_timeline(self):
        sim = Simulator()
        view = ScriptedSuspects(sim, [(0.0, set()), (1.0, {3})])
        assert view.suspected() == frozenset()
        sim.run()
        assert view.suspected() == frozenset({3})

    def test_script_must_start_at_zero(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            ScriptedOmega(sim, [(1.0, 0)])

    def test_script_must_be_ordered(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            ScriptedOmega(sim, [(0.0, 0), (2.0, 1), (1.0, 2)])

    def test_empty_script_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            ScriptedSuspects(sim, [])

    def test_no_notification_for_identical_output(self):
        sim = Simulator()
        view = ScriptedOmega(sim, [(0.0, 0), (1.0, 0)])
        changes = []
        view.subscribe(lambda: changes.append(1))
        sim.run()
        assert changes == []


class FdHost(HostProcess):
    """Host running only a heartbeat detector."""

    def __init__(self, **params):
        super().__init__()
        self.params = params
        self.fd = None

    def on_start(self):
        self.fd = self.attach(("fd",), lambda env: HeartbeatSuspector(env, **self.params))
        self.fd.on_start()


def heartbeat_cluster(n=3, delay=ConstantDelay(1e-3), **params):
    sim = Simulator(seed=3)
    net = Network(sim, delay=delay)
    pids = list(range(n))
    hosts = {pid: FdHost(**params) for pid in pids}
    nodes = {pid: Node(sim, net, pid, pids, hosts[pid]) for pid in pids}
    for node in nodes.values():
        node.start()
    return sim, nodes, hosts


class TestHeartbeatSuspector:
    def test_no_suspicions_in_quiet_run(self):
        sim, nodes, hosts = heartbeat_cluster(period=0.01, initial_timeout=0.05)
        sim.run(until=1.0)
        for host in hosts.values():
            assert host.fd.suspected() == frozenset()

    def test_crashed_process_eventually_suspected_by_all(self):
        sim, nodes, hosts = heartbeat_cluster(period=0.01, initial_timeout=0.05)
        nodes[2].crash_at(0.2)
        sim.run(until=1.0)
        for pid in (0, 1):
            assert hosts[pid].fd.suspected() == frozenset({2})

    def test_suspicion_notifies_subscribers(self):
        sim, nodes, hosts = heartbeat_cluster(period=0.01, initial_timeout=0.05)
        changes = []
        sim.schedule(0.0, lambda: hosts[0].fd.subscribe(lambda: changes.append(sim.now)))
        nodes[1].crash_at(0.1)
        sim.run(until=1.0)
        assert changes  # at least the suspicion of node 1

    def test_false_suspicion_recovers_and_raises_timeout(self):
        # A long one-off message delay causes a false suspicion; the
        # detector must trust the peer again and bump its timeout.
        sim, nodes, hosts = heartbeat_cluster(
            period=0.02, initial_timeout=0.05, timeout_increment=0.05
        )
        net = nodes[0].network
        # Delay all of node 1's heartbeats to node 0 during [0.1, 0.25].
        remove = [None]

        def delay_window(env):
            if env.src == 1 and env.dst == 0 and 0.1 <= sim.now <= 0.25:
                return 0.2
            return True

        net.add_filter(delay_window)
        sim.run(until=2.0)
        assert hosts[0].fd.suspected() == frozenset()
        assert hosts[0].fd.false_suspicions >= 1
        assert hosts[0].fd._timeouts[1] > 0.05

    def test_derived_omega_tracks_lowest_unsuspected(self):
        sim, nodes, hosts = heartbeat_cluster(period=0.01, initial_timeout=0.05)
        omegas = {}
        changes = []

        def wire():
            for pid, host in hosts.items():
                omegas[pid] = host.fd.omega()
            omegas[1].subscribe(lambda: changes.append((sim.now, omegas[1].leader())))

        sim.schedule(0.0, wire)
        nodes[0].crash_at(0.2)
        sim.run(until=1.0)
        assert omegas[1].leader() == 1
        assert omegas[2].leader() == 1
        assert changes and changes[-1][1] == 1

    def test_parameter_validation(self):
        sim, nodes, hosts = heartbeat_cluster()
        sim.run(until=0.01)  # let on_start attach the module
        env = hosts[0].fd.env
        with pytest.raises(ConfigurationError):
            HeartbeatSuspector(env, period=-1)
        with pytest.raises(ConfigurationError):
            HeartbeatSuspector(env, period=0.1, initial_timeout=0.05)

    def test_heartbeats_carry_increasing_seq(self):
        sim, nodes, hosts = heartbeat_cluster(period=0.01, initial_timeout=0.05)
        sim.run(until=0.001)  # let on_start attach the module
        seen = []
        original = hosts[1].fd.on_message

        def spy(src, msg):
            if isinstance(msg, Heartbeat) and src == 0:
                seen.append(msg.seq)
            original(src, msg)

        # The host dispatches dynamically, so patching the attribute works.
        hosts[1].fd.on_message = spy
        sim.run(until=0.2)
        assert seen == sorted(seen)
        assert len(seen) >= 10


class TestDerivedOmega:
    def test_all_suspected_yields_none(self):
        sim = Simulator()
        view = ScriptedSuspects(sim, [(0.0, {0, 1, 2})])
        omega = omega_from_suspects(view, (0, 1, 2))
        assert omega.leader() is None

    def test_derived_omega_only_notifies_on_leader_change(self):
        sim = Simulator()
        view = ScriptedSuspects(sim, [(0.0, set()), (1.0, {2}), (2.0, {0})])
        omega = omega_from_suspects(view, (0, 1, 2))
        changes = []
        omega.subscribe(lambda: changes.append(omega.leader()))
        sim.run()
        assert changes == [1]  # suspecting 2 changes nothing; suspecting 0 does
