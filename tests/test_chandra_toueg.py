"""Protocol tests for the Chandra-Toueg ◇S consensus baseline."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import run_consensus
from repro.protocols import ChandraTouegConsensus
from repro.sim.network import UniformDelay


def make_ct(pid, env, oracle, host):
    return ChandraTouegConsensus(env, oracle.suspect(pid))


class TestSteadyState:
    def test_decides_in_three_steps_with_stable_coordinator(self):
        result = run_consensus(make_ct, {0: "a", 1: "b", 2: "c"}, seed=1)
        assert result.min_steps == 3

    def test_equal_proposals_still_three_steps(self):
        # CT has no one-step path: the round structure is unconditional.
        result = run_consensus(make_ct, {p: "v" for p in range(3)}, seed=2)
        assert result.min_steps == 3
        assert set(result.decisions.values()) == {"v"}

    def test_tolerates_minority(self):
        result = run_consensus(
            make_ct, {p: f"v{p}" for p in range(5)}, seed=3, initially_crashed=(3, 4)
        )
        assert len(result.decisions) == 3
        assert len(set(result.decisions.values())) == 1

    def test_f_bound_enforced(self):
        with pytest.raises(ConfigurationError):
            run_consensus(
                lambda pid, env, oracle, host: ChandraTouegConsensus(
                    env, oracle.suspect(pid), f=2
                ),
                {0: "a", 1: "b", 2: "c"},
                seed=1,
            )


class TestCoordinatorFailover:
    def test_initially_crashed_coordinator(self):
        result = run_consensus(
            make_ct,
            {p: f"v{p}" for p in range(5)},
            seed=4,
            initially_crashed=(0,),
            horizon=10.0,
        )
        assert len(result.decisions) == 4
        assert len(set(result.decisions.values())) == 1

    def test_coordinator_crash_mid_round(self):
        result = run_consensus(
            make_ct,
            {0: "a", 1: "b", 2: "c"},
            seed=5,
            crash_at={0: 0.0005},
            detection_delay=0.002,
            horizon=10.0,
        )
        assert {1, 2} <= set(result.decisions)
        assert len(set(result.decisions.values())) == 1

    def test_locked_value_survives_coordinator_crash(self):
        # If any process ACKed the round-1 estimate, later rounds must keep
        # deciding that same value (the timestamp mechanism).
        for seed in range(8):
            result = run_consensus(
                make_ct,
                {0: "a", 1: "b", 2: "c", 3: "d", 4: "e"},
                seed=seed,
                crash_at={0: 0.0012},  # after broadcasting its estimate
                detection_delay=0.002,
                horizon=10.0,
            )
            assert len(set(result.decisions.values())) == 1

    def test_two_coordinator_crashes(self):
        result = run_consensus(
            make_ct,
            {p: f"v{p}" for p in range(5)},
            seed=6,
            crash_at={0: 0.0005, 1: 0.003},
            detection_delay=0.0015,
            horizon=10.0,
        )
        assert {2, 3, 4} <= set(result.decisions)
        assert len(set(result.decisions.values())) == 1

    def test_jitter_seed_sweep(self):
        for seed in range(8):
            result = run_consensus(
                make_ct,
                {0: "x", 1: "y", 2: "x"},
                seed=seed,
                delay=UniformDelay(1e-4, 2e-3),
                horizon=10.0,
            )
            assert len(set(result.decisions.values())) == 1
            assert set(result.decisions.values()) <= {"x", "y"}
