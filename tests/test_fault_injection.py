"""Fault-injection tests: deliberately broken protocols must be *caught*.

A green safety suite only means something if the checkers detect real
violations.  Each test here wires a subtly sabotaged protocol variant into
the standard harness and asserts the corresponding checker fires.
"""

import pytest

from repro.core import LConsensus, PConsensus
from repro.core.values import value_with_count_at_least
from repro.errors import (
    AgreementViolation,
    ProtocolViolation,
    TerminationFailure,
    ValidityViolation,
)
from repro.harness import run_consensus
from repro.harness.abcast_runner import run_abcast
from repro.sim.network import UniformDelay

from tests.conftest import make_cabcast_l


class GreedyLConsensus(LConsensus):
    """Sabotage: decides on n - f equal values WITHOUT the leader's backing
    (the naive one-step patch that Theorem 1 forbids)."""

    def _try_complete_round(self):
        received = self._props.get(self.round, {})
        n, f = self.env.n, self.f
        if len(received) < n - f:
            return
        candidate = value_with_count_at_least(
            (m.est for m in received.values()), n - f
        )
        if candidate is not None:
            self._decide(candidate, steps=self.round)
            return
        super()._try_complete_round()


class SelfishCAbcastConsensus(PConsensus):
    """Sabotage: decides its own proposal immediately — breaks total order."""

    def _start(self, value):
        self._decide(value, steps=0)


class TestConsensusCheckersHaveTeeth:
    def test_greedy_one_step_violates_agreement_under_jitter(self):
        # Split proposals plus jitter: some seed makes a greedy decider see
        # n - f equal values while the leader pushes the other value.  The
        # leader crash is expressed as a declarative nemesis schedule — the
        # same fault the fuzzer would synthesise (see tests/test_fuzz.py).
        from repro.nemesis import CrashOp, NemesisSpec

        def make(pid, env, oracle, host):
            return GreedyLConsensus(env, oracle.omega(pid))

        leader_crash = NemesisSpec((CrashOp(at=0.0008, pid=0),))
        violations = 0
        for seed in range(40):
            try:
                run_consensus(
                    make,
                    {0: "b", 1: "a", 2: "a", 3: "a"},
                    seed=seed,
                    delay=UniformDelay(1e-4, 3e-3),
                    horizon=5.0,
                    nemesis=leader_crash,
                    detection_delay=1e-3,
                )
            except ProtocolViolation:
                violations += 1
            except TerminationFailure:
                pass
        assert violations > 0, "sabotaged protocol was never caught"

    def test_selfish_decider_caught_immediately(self):
        def make(pid, env, oracle, host):
            return SelfishCAbcastConsensus(env, oracle.suspect(pid))

        with pytest.raises(AgreementViolation):
            run_consensus(make, {0: "a", 1: "b", 2: "c", 3: "d"}, seed=1)

    def test_invented_value_caught_by_validity(self):
        class Inventor(PConsensus):
            def _start(self, value):
                self._decide("made-up-value", steps=0)

        def make(pid, env, oracle, host):
            return Inventor(env, oracle.suspect(pid))

        with pytest.raises(ValidityViolation):
            run_consensus(make, {p: "real" for p in range(4)}, seed=2)


class TestAbcastCheckersHaveTeeth:
    def test_locally_delivering_abcast_caught(self):
        # An "abcast" that delivers its own messages immediately and ignores
        # everyone else must trip the total-order/validity checkers.
        from repro.core.abcast_base import AbcastModule

        class LocalOnly(AbcastModule):
            def _submit(self, message):
                self._deliver_batch([message])

            def on_message(self, src, msg):
                pass

        def make(pid, env, oracle, host):
            return LocalOnly(env)

        schedules = {0: [(0.001, "a")], 1: [(0.0012, "b")]}
        with pytest.raises(ProtocolViolation):
            run_abcast(make, 4, schedules, seed=3, horizon=2.0)

    def test_duplicate_delivery_caught(self):
        from repro.core.abcast_base import AbcastModule, AppMessage

        class Duplicator(AbcastModule):
            def _submit(self, message):
                self.env.broadcast(message)

            def on_message(self, src, msg):
                if isinstance(msg, AppMessage):
                    # Bypass the dedup guard on purpose.
                    self.delivered.append(msg)
                    self.delivered.append(msg)

        def make(pid, env, oracle, host):
            return Duplicator(env)

        with pytest.raises(ProtocolViolation):
            run_abcast(make, 4, {0: [(0.001, "a")]}, seed=4, horizon=2.0)

    def test_stalled_abcast_reported_as_termination_failure(self):
        from repro.core.abcast_base import AbcastModule

        class BlackHole(AbcastModule):
            def _submit(self, message):
                pass

            def on_message(self, src, msg):
                pass

        def make(pid, env, oracle, host):
            return BlackHole(env)

        with pytest.raises(TerminationFailure):
            run_abcast(make, 4, {0: [(0.001, "a")]}, seed=5, horizon=1.0)


class TestHonestProtocolsSurviveTheSameGauntlet:
    def test_honest_l_consensus_same_scenario_as_greedy(self):
        from tests.conftest import make_l

        for seed in range(40):
            try:
                run_consensus(
                    make_l,
                    {0: "b", 1: "a", 2: "a", 3: "a"},
                    seed=seed,
                    delay=UniformDelay(1e-4, 3e-3),
                    horizon=5.0,
                    crash_at={0: 0.0008},
                    detection_delay=1e-3,
                )
            except TerminationFailure:
                pass  # acceptable: short horizon, never a safety violation

    def test_honest_cabcast_under_duplicating_network_conditions(self):
        schedules = {p: [(0.0005 * i, f"m{p}.{i}") for i in range(6)] for p in range(4)}
        run_abcast(
            make_cabcast_l,
            4,
            schedules,
            seed=6,
            delay=UniformDelay(1e-4, 2e-3),
            datagram_delay=UniformDelay(1e-4, 3e-3),
            horizon=20.0,
        )
