"""Unit tests for the simulated network: delays, FIFO, faults, capacity."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.network import (
    DATAGRAM,
    RELIABLE,
    ConstantDelay,
    ExponentialDelay,
    LanDelay,
    LinkCapacity,
    LogNormalDelay,
    Network,
    UniformDelay,
)


class Sink:
    """Minimal node: records (src, payload, arrival_time)."""

    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def deliver(self, envelope):
        self.received.append((envelope.src, envelope.payload, self.sim.now))


def make_net(n=2, **kwargs):
    sim = Simulator(seed=1)
    net = Network(sim, **kwargs)
    sinks = {}
    for pid in range(n):
        sinks[pid] = Sink(sim)
        net.register(pid, sinks[pid])
    return sim, net, sinks


class TestDelayModels:
    def test_constant(self):
        assert ConstantDelay(0.5).sample(None) == 0.5
        assert ConstantDelay(0.5).mean() == 0.5

    def test_constant_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ConstantDelay(-1.0)

    def test_uniform_within_bounds(self):
        import random

        model = UniformDelay(0.1, 0.2)
        rng = random.Random(0)
        for _ in range(100):
            assert 0.1 <= model.sample(rng) <= 0.2
        assert model.mean() == pytest.approx(0.15)

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformDelay(0.2, 0.1)

    def test_exponential_at_least_base(self):
        import random

        model = ExponentialDelay(base=0.05, mean_extra=0.01)
        rng = random.Random(0)
        assert all(model.sample(rng) >= 0.05 for _ in range(100))
        assert model.mean() == pytest.approx(0.06)

    def test_exponential_zero_tail(self):
        model = ExponentialDelay(base=0.05, mean_extra=0.0)
        assert model.sample(None) == 0.05

    def test_lognormal_mean_is_calibrated(self):
        import random

        model = LogNormalDelay(mean_delay=1e-3, sigma=0.4)
        rng = random.Random(3)
        samples = [model.sample(rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(1e-3, rel=0.05)

    def test_lan_delay_positive(self):
        import random

        model = LanDelay()
        rng = random.Random(0)
        assert all(model.sample(rng) > model.base for _ in range(100))


class TestReliableChannel:
    def test_delivery(self):
        sim, net, sinks = make_net(delay=ConstantDelay(1e-3))
        net.send(0, 1, "hello")
        sim.run()
        assert sinks[1].received == [(0, "hello", pytest.approx(1e-3))]

    def test_fifo_per_link(self):
        # Even with wildly jittered delays, reliable messages never reorder.
        sim, net, sinks = make_net(delay=UniformDelay(0.0, 1.0))
        for i in range(50):
            net.send(0, 1, i)
        sim.run()
        assert [p for _, p, _ in sinks[1].received] == list(range(50))

    def test_self_messages_traverse_the_network(self):
        sim, net, sinks = make_net(delay=ConstantDelay(2e-3))
        net.send(0, 0, "self")
        sim.run()
        assert sinks[0].received[0][2] == pytest.approx(2e-3)

    def test_broadcast_reaches_everyone_including_sender(self):
        sim, net, sinks = make_net(n=4, delay=ConstantDelay(1e-3))
        net.broadcast(2, "hi")
        sim.run()
        for pid in range(4):
            assert [p for _, p, _ in sinks[pid].received] == ["hi"]

    def test_unknown_destination_rejected(self):
        sim, net, _ = make_net()
        with pytest.raises(ConfigurationError):
            net.send(0, 99, "x")

    def test_duplicate_registration_rejected(self):
        sim, net, _ = make_net()
        with pytest.raises(ConfigurationError):
            net.register(0, Sink(sim))


class TestDatagramChannel:
    def test_datagrams_may_reorder(self):
        sim, net, sinks = make_net(datagram_delay=UniformDelay(0.0, 1.0))
        for i in range(50):
            net.send(0, 1, i, channel=DATAGRAM)
        sim.run()
        order = [p for _, p, _ in sinks[1].received]
        assert sorted(order) == list(range(50))
        assert order != list(range(50))  # overwhelmingly likely with seed 1

    def test_datagram_loss(self):
        sim, net, sinks = make_net(datagram_loss=0.5)
        for i in range(200):
            net.send(0, 1, i, channel=DATAGRAM)
        sim.run()
        assert 40 < len(sinks[1].received) < 160
        assert net.stats.dropped == 200 - len(sinks[1].received)

    def test_reliable_never_dropped_by_loss_setting(self):
        sim, net, sinks = make_net(datagram_loss=0.9)
        for i in range(50):
            net.send(0, 1, i, channel=RELIABLE)
        sim.run()
        assert len(sinks[1].received) == 50

    def test_invalid_loss_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            Network(sim, datagram_loss=1.5)

    def test_unknown_channel_rejected(self):
        sim, net, _ = make_net()
        with pytest.raises(ConfigurationError):
            net.send(0, 1, "x", channel="pigeon")


class TestFaultInjection:
    def test_partition_blocks_cross_group_traffic(self):
        sim, net, sinks = make_net(n=4, delay=ConstantDelay(1e-3))
        net.partition({0, 1}, {2, 3})
        net.send(0, 1, "in-group")
        net.send(0, 2, "cross")
        sim.run()
        assert [p for _, p, _ in sinks[1].received] == ["in-group"]
        assert sinks[2].received == []

    def test_heal_restores_traffic(self):
        sim, net, sinks = make_net(n=2, delay=ConstantDelay(1e-3))
        net.partition({0}, {1})
        net.send(0, 1, "lost")
        net.heal()
        net.send(0, 1, "delivered")
        sim.run()
        assert [p for _, p, _ in sinks[1].received] == ["delivered"]

    def test_filter_can_drop(self):
        sim, net, sinks = make_net(delay=ConstantDelay(1e-3))
        net.add_filter(lambda env: env.payload != "bad")
        net.send(0, 1, "bad")
        net.send(0, 1, "good")
        sim.run()
        assert [p for _, p, _ in sinks[1].received] == ["good"]

    def test_filter_can_add_delay(self):
        sim, net, sinks = make_net(delay=ConstantDelay(1e-3))
        net.add_filter(lambda env: 0.5)
        net.send(0, 1, "slow")
        sim.run()
        assert sinks[1].received[0][2] == pytest.approx(0.501)

    def test_filter_removal(self):
        sim, net, sinks = make_net(delay=ConstantDelay(1e-3))
        remove = net.add_filter(lambda env: False)
        net.send(0, 1, "dropped")
        remove()
        net.send(0, 1, "kept")
        sim.run()
        assert [p for _, p, _ in sinks[1].received] == ["kept"]


class TestLinkCapacity:
    def test_shared_medium_serialises_all_traffic(self):
        capacity = LinkCapacity(frame_time=0.1, mode="shared")
        sim, net, sinks = make_net(n=3, delay=ConstantDelay(0.0), capacity=capacity)
        net.send(0, 1, "a")
        net.send(2, 1, "b")
        sim.run()
        times = [t for _, _, t in sinks[1].received]
        assert times == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_switched_uplink_serialises_per_sender(self):
        capacity = LinkCapacity(frame_time=0.1, mode="switched")
        sim, net, sinks = make_net(n=3, delay=ConstantDelay(0.0), capacity=capacity)
        net.send(0, 1, "a")  # occupies 0's uplink then 1's downlink
        net.send(2, 1, "b")  # different uplink, same downlink
        sim.run()
        times = sorted(t for _, _, t in sinks[1].received)
        # Uplinks run in parallel (both done at 0.1) but the shared downlink
        # serialises: second arrival at 0.2.
        assert times == [pytest.approx(0.2), pytest.approx(0.3)]

    def test_capacity_validates(self):
        with pytest.raises(ConfigurationError):
            LinkCapacity(frame_time=-1.0)
        with pytest.raises(ConfigurationError):
            LinkCapacity(frame_time=0.1, mode="quantum")

    def test_idle_network_has_no_queueing(self):
        capacity = LinkCapacity(frame_time=0.1, mode="switched")
        sim, net, sinks = make_net(delay=ConstantDelay(0.0), capacity=capacity)
        net.send(0, 1, "a")
        sim.run()
        sim2, net2, sinks2 = make_net(delay=ConstantDelay(0.0), capacity=capacity)
        net2.send(0, 1, "a")
        sim2.run()
        assert sinks[1].received[0][2] == sinks2[1].received[0][2]


class TestStats:
    def test_counts(self):
        sim, net, _ = make_net(n=3, delay=ConstantDelay(1e-3))
        net.broadcast(0, "x")
        sim.run()
        snap = net.stats.snapshot()
        assert snap["sent"] == 3
        assert snap["delivered"] == 3
        assert snap["dropped"] == 0
        assert snap["by_channel"][RELIABLE] == 3

    def test_kind_accounting_unwraps_scopes(self):
        from repro.sim.process import Scoped

        sim, net, _ = make_net(delay=ConstantDelay(1e-3))
        net.send(0, 1, Scoped(("cons", 1), Scoped(("x",), 42)))
        sim.run()
        assert net.stats.by_kind["int"] == 1

    def test_pids_exposes_cached_tuple(self):
        _, net, _ = make_net(n=3)
        assert net.pids == (0, 1, 2)
        # The property hands out the cached tuple itself, not a fresh copy.
        assert net.pids is net.pids


class TestStatsMemoBounds:
    """The identity-keyed memo dicts must stay bounded without costing
    exactness: long runs mint fresh scope tuples and estimate frozensets
    forever, so past the cap the oldest entries are evicted and simply
    recomputed on re-use."""

    def _exact(self, payloads, monkeypatch, cap):
        import repro.sim.network as network_mod
        from repro.sim.network import HEADER_BYTES

        monkeypatch.setattr(network_mod, "STATS_MEMO_CAP", cap)
        sim, net, _ = make_net(delay=ConstantDelay(1e-3))
        for payload in payloads:
            net.send(0, 1, payload)
        sim.run()
        expected = sum(HEADER_BYTES + len(repr(p)) for p in payloads)
        assert net.stats.bytes_sent == expected
        return net.stats

    def test_frozenset_memo_is_bounded_and_exact(self, monkeypatch):
        distinct = [frozenset({i, i + 1}) for i in range(50)]
        # Re-send early ones after they have been evicted: recompute, same total.
        payloads = distinct + distinct[:10]
        stats = self._exact(payloads, monkeypatch, cap=8)
        assert len(stats._frozenset_lens) <= 8

    def test_scope_memo_is_bounded_and_exact(self, monkeypatch):
        from repro.sim.process import Scoped

        distinct = [Scoped(("mod", i), ("payload", i)) for i in range(50)]
        payloads = distinct + distinct[:10]
        stats = self._exact(payloads, monkeypatch, cap=8)
        assert len(stats._scope_overhead) <= 8

    def test_record_sent_path_is_bounded_too(self, monkeypatch):
        import repro.sim.network as network_mod
        from repro.sim.network import Envelope, HEADER_BYTES, NetworkStats
        from repro.sim.process import Scoped

        monkeypatch.setattr(network_mod, "STATS_MEMO_CAP", 8)
        stats = NetworkStats()
        payloads = [Scoped(("svc", i), ("body", i)) for i in range(40)]
        for payload in payloads:
            stats.record_sent(Envelope(0, 1, payload, RELIABLE, 0.0))
        assert len(stats._scope_overhead) <= 8
        assert stats.bytes_sent == sum(
            HEADER_BYTES + len(repr(p)) for p in payloads
        )
