"""Causal message-flow graph and decision critical-path tests.

The tentpole contract: every observed delivery names its originating send
(the network's per-send sequence number), the critical path of a decision
is the latest-arrival chain from propose to decide, and a fallback decision
names the trace record — and, when a nemesis schedule is attached, the
*scheduled op* — that forced the extra step.  All of it read-only: same
seed, same trace bytes, with or without the analysis, batched or not.
"""

import io
import json

from repro.core.lconsensus import LConsensus
from repro.engine import AbcastRunSpec
from repro.engine.runner import run_abcast_spec
from repro.harness.consensus_runner import (
    derive_omega,
    heartbeat_fd_factory,
    run_consensus,
)
from repro.nemesis import NemesisSpec, PartitionOp
from repro.obs import (
    CausalGraph,
    ObsRuntime,
    SpanBuilder,
    annotate_spans,
    causal_summary,
    critical_path,
    critical_paths,
    export_chrome,
    export_jsonl,
)


def observed_abcast(seed=1, nemesis=None, batch=True):
    """One obs-on abcast run; returns (spec, ObsRuntime with the records)."""
    spec = AbcastRunSpec(
        protocol="cabcast-l",
        rate=100.0,
        duration=0.3,
        seed=seed,
        drain=2.0,
        obs=True,
        batch=batch,
        nemesis=nemesis,
        require_all_delivered=nemesis is None,
    )
    obs = ObsRuntime.from_spec(spec)
    run_abcast_spec(spec, tracer=obs.tracer, obs=obs)
    return spec, obs


def export_bytes(records, spec, writer=export_jsonl):
    out = io.StringIO()
    writer(records, out, spec=spec.to_dict())
    return out.getvalue()


PARTITION = NemesisSpec(
    (PartitionOp(at=0.05, duration=0.1, groups=((0,), (1, 2, 3))),)
)


def leader_partition_run(seed=21):
    """L-Consensus n=4, equal proposals, leader p0 cut off from the start.

    The heartbeat detector genuinely suspects the unreachable leader, Ω
    moves, and the line-3 escape sends p1-3 to round 2 — a two-step decide
    whose root cause is the scheduled partition.
    """
    obs = ObsRuntime()
    nemesis = NemesisSpec(
        (PartitionOp(at=0.0, duration=0.5, groups=((1, 2, 3), (0,))),)
    )
    result = run_consensus(
        lambda pid, env, oracle, host: LConsensus(env, derive_omega(host)),
        {p: "v" for p in range(4)},
        seed=seed,
        fd_factory=heartbeat_fd_factory(period=2e-3, initial_timeout=8e-3),
        nemesis=nemesis,
        horizon=5.0,
        require_all_alive_decide=False,
        obs=obs,
    )
    return result, obs


class TestCausalGraph:
    def test_records_and_rows_build_identical_graphs(self):
        spec, obs = observed_abcast()
        from_records = CausalGraph.from_records(obs.tracer.records)
        header, rows = load_trace_string(export_bytes(obs.tracer.records, spec))
        from_rows = CausalGraph.from_rows(rows)
        assert from_records.sends == from_rows.sends
        assert from_records.delivers == from_rows.delivers
        assert from_records.flows() == from_rows.flows()

    def test_every_delivery_names_a_live_send(self):
        _, obs = observed_abcast()
        graph = CausalGraph.from_records(obs.tracer.records)
        assert graph.delivers, "obs run produced no causal edges"
        assert not graph.orphan_delivers
        for msg_id, deliver in graph.delivers.items():
            send = graph.sends[msg_id]
            assert send.dst == deliver.dst
            assert send.src == deliver.src
            assert send.time <= deliver.time

    def test_msg_ids_deterministic_across_same_seed_runs(self):
        _, first = observed_abcast(seed=3)
        _, second = observed_abcast(seed=3)
        assert (
            CausalGraph.from_records(first.tracer.records).flows()
            == CausalGraph.from_records(second.tracer.records).flows()
        )

    def test_partition_drops_count_as_unmatched_sends(self):
        _, clean = observed_abcast(seed=2)
        _, cut = observed_abcast(seed=2, nemesis=PARTITION)
        assert CausalGraph.from_records(clean.tracer.records).unmatched_sends == 0
        assert CausalGraph.from_records(cut.tracer.records).unmatched_sends > 0


def load_trace_string(text):
    lines = [json.loads(line) for line in text.splitlines() if line.strip()]
    return lines[0], lines[1:]


class TestCriticalPath:
    def test_gating_hop_ends_at_decider_and_chain_is_causal(self):
        _, obs = observed_abcast()
        builder = SpanBuilder().add_records(obs.tracer.records)
        graph = CausalGraph.from_records(obs.tracer.records)
        paths = critical_paths(builder, graph)
        decided = [s for s in builder.consensus_spans() if s.decided]
        assert len(paths) == len(decided) > 0
        for path in paths:
            assert path.hops, "decided instance with unresolvable path"
            gating = path.gating
            assert gating.dst == path.pid
            assert gating.delivered_at <= path.decided_at
            for earlier, later in zip(path.hops, path.hops[1:]):
                assert earlier.dst == later.src
                assert earlier.delivered_at <= later.sent_at
            assert path.network_time <= path.decided_at - path.hops[0].sent_at

    def test_undecided_span_yields_no_path(self):
        result, obs = leader_partition_run()
        builder = SpanBuilder().add_records(obs.tracer.records)
        graph = CausalGraph.from_records(obs.tracer.records)
        (stalled,) = [s for s in builder.consensus_spans() if s.pid == 0]
        assert not stalled.decided
        assert critical_path(stalled, graph) is None

    def test_partition_during_voting_window_names_partition_op(self):
        # The acceptance pin: the partitioned leader forces a two-step
        # decide and the critical path names the partition op as cause.
        result, obs = leader_partition_run()
        assert {p: v for p, v in result.decisions.items()} == {
            1: "v", 2: "v", 3: "v"
        }
        builder = SpanBuilder().add_records(obs.tracer.records)
        graph = CausalGraph.from_records(obs.tracer.records)
        paths = critical_paths(builder, graph)
        assert [p.pid for p in paths] == [1, 2, 3]
        for path in paths:
            assert path.steps == 2 and path.via == "round"
            cause = path.cause
            # Proximate trigger: this process's own suspicion of p0 ...
            assert cause["kind"] == "suspect"
            assert cause["pid"] == path.pid
            assert cause["data"] == {"suspect": 0}
            # ... attributed to the scheduled partition window.
            assert cause["op"]["op"] == "partition"
            assert cause["op"]["groups"] == [[1, 2, 3], [0]]
            assert cause["op_index"] == 0

    def test_annotate_spans_attaches_cause_only_to_fallback_decisions(self):
        _, obs = leader_partition_run()
        builder = SpanBuilder().add_records(obs.tracer.records)
        graph = CausalGraph.from_records(obs.tracer.records)
        annotate_spans(builder, graph)
        for span in builder.consensus_spans():
            if span.decided and span.steps > 1:
                assert span.fallback_cause["op"]["op"] == "partition"
                assert span.to_dict()["fallback_cause"] == span.fallback_cause
            else:
                assert span.fallback_cause is None
                assert "fallback_cause" not in span.to_dict()

    def test_fast_path_spans_never_annotated(self):
        _, obs = observed_abcast()
        builder = SpanBuilder().add_records(obs.tracer.records)
        annotate_spans(builder, CausalGraph.from_records(obs.tracer.records))
        assert all(
            "fallback_cause" not in span.to_dict()
            for span in builder.consensus_spans()
            if span.fast_path
        )


class TestCausalSummary:
    def test_summary_aggregates_paths_and_causes(self):
        _, obs = leader_partition_run()
        spec = AbcastRunSpec(protocol="cabcast-l", rate=1.0, duration=0.1)
        _, rows = load_trace_string(export_bytes(obs.tracer.records, spec))
        summary = causal_summary(rows)
        assert summary["paths"] == summary["resolved"] == 3
        assert summary["causes"] == {"op:partition": 3}
        assert summary["max_hops"] >= 2
        assert summary["mean_latency"] > 0
        assert summary["mean_network_time"] > 0
        assert summary["orphan_delivers"] == 0

    def test_clean_run_has_no_causes(self):
        spec, obs = observed_abcast()
        _, rows = load_trace_string(export_bytes(obs.tracer.records, spec))
        summary = causal_summary(rows)
        assert summary["paths"] == summary["resolved"] > 0
        assert summary["causes"] == {}
        assert summary["unmatched_sends"] == 0


class TestByteIdentity:
    """Causal obs composed with nemesis stays deterministic and read-only."""

    def test_same_seed_nemesis_exports_identical(self):
        runs = [observed_abcast(seed=5, nemesis=PARTITION) for _ in range(2)]
        jsonl = [export_bytes(obs.tracer.records, spec) for spec, obs in runs]
        chrome = [
            export_bytes(obs.tracer.records, spec, writer=export_chrome)
            for spec, obs in runs
        ]
        assert jsonl[0] == jsonl[1]
        assert chrome[0] == chrome[1]

    def test_batched_and_sequential_kernels_export_identically(self):
        # Headers differ (the spec records its batch flag); every trace row
        # — msg ids included — must not.
        spec_b, batched = observed_abcast(seed=6, nemesis=PARTITION, batch=True)
        spec_s, sequential = observed_abcast(seed=6, nemesis=PARTITION, batch=False)
        rows = lambda obs, spec: export_bytes(
            obs.tracer.records, spec
        ).splitlines()[1:]
        assert rows(batched, spec_b) == rows(sequential, spec_s)

    def test_consensus_same_seed_spans_and_paths_identical(self):
        first = leader_partition_run()
        second = leader_partition_run()
        to_dicts = lambda obs: [
            span.to_dict()
            for span in SpanBuilder().add_records(obs.tracer.records).consensus_spans()
        ]
        assert to_dicts(first[1]) == to_dicts(second[1])
        paths = lambda obs: [
            p.to_dict()
            for p in critical_paths(
                SpanBuilder().add_records(obs.tracer.records),
                CausalGraph.from_records(obs.tracer.records),
            )
        ]
        assert paths(first[1]) == paths(second[1])


class TestChromeFlowEvents:
    def test_flow_pairs_and_critical_path_slices_emitted(self):
        spec, obs = observed_abcast(seed=1, nemesis=PARTITION)
        document = json.loads(
            export_bytes(obs.tracer.records, spec, writer=export_chrome)
        )
        events = document["traceEvents"]
        starts = [e for e in events if e.get("ph") == "s"]
        finishes = [e for e in events if e.get("ph") == "f"]
        assert starts and len(starts) == len(finishes)
        assert {e["cat"] for e in starts} == {"msg"}
        assert all(e.get("bp") == "e" for e in finishes)
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}
        slices = [
            e for e in events
            if e.get("ph") == "X" and str(e.get("name", "")).startswith("critical-path")
        ]
        assert slices
        for entry in slices:
            assert {"hops", "steps", "via", "network_time_us"} <= set(entry["args"])

    def test_trace_without_msg_ids_emits_no_flow_events(self):
        # Pre-causal exports (or hand-built records) degrade gracefully.
        spec, obs = observed_abcast(seed=1)
        stripped = []
        for time, pid, kind, data in (
            json.loads(line)
            for line in export_bytes(obs.tracer.records, spec).splitlines()[1:]
        ):
            if isinstance(data, dict):
                data = {k: v for k, v in data.items() if k != "id"}
            stripped.append([time, pid, kind, data])
        document = json.loads(rows_to_chrome_string(stripped, spec))
        events = document["traceEvents"]
        assert not [e for e in events if e.get("ph") in ("s", "f")]
        assert not [
            e for e in events
            if e.get("ph") == "X" and str(e.get("name", "")).startswith("critical-path")
        ]


def rows_to_chrome_string(rows, spec):
    """Chrome-export rows that came back off disk (id-less legacy traces)."""
    from repro.sim.trace import TraceRecord

    records = [TraceRecord(time, pid, kind, data) for time, pid, kind, data in rows]
    out = io.StringIO()
    export_chrome(records, out, spec=spec.to_dict())
    return out.getvalue()


class TestFlightRecorderOnReplay:
    def test_trial_failures_carry_flight_record(self, monkeypatch):
        # The fuzzer forces the flight recorder on for every trial, so a
        # finding's error arrives with its per-pid black box attached.
        from repro.harness.registry import CONSENSUS, PROTOCOLS, ProtocolInfo
        from repro.nemesis.fuzz import _run_trial, _trial_spec
        from repro.nemesis.spec import CrashOp

        from tests.test_fault_injection import GreedyLConsensus
        from tests.test_fuzz import greedy_spec

        registry = dict(PROTOCOLS)
        registry["greedy-l"] = ProtocolInfo(
            "greedy-l",
            CONSENSUS,
            lambda pid, env, oracle, host: GreedyLConsensus(env, oracle.omega(pid)),
            description="naive one-step (Theorem 1 violation)",
        )
        monkeypatch.setattr("repro.harness.registry.PROTOCOLS", registry)

        schedule = NemesisSpec((CrashOp(at=0.002, pid=0),))
        _, err = _run_trial(_trial_spec(greedy_spec(), schedule))
        assert err is not None
        dump = err.flight_record
        assert dump and any(dump.values())
