"""Conservative-parallel simulation: partitioned kernels with lookahead.

The parallel executor (:mod:`repro.sim.parallel` + :mod:`repro.rsm.parallel`)
is only admissible because it is a pure *execution strategy*: same spec,
same seed ⇒ the same merged trace and the same report regardless of the
worker-process count.  These tests pin that contract down layer by layer:

* ``DelayModel.min_delay()`` — the provable delay floor every lookahead
  computation rests on — for all five models, and the
  :class:`ConfigurationError` when the floor is zero/unbounded below;
* :class:`PartitionPlan` validation and lookahead window arithmetic;
* the substrate (:func:`run_partitions`) with toy harnesses: conservative
  window barriers, deterministic ``(time, seq, src)`` message ordering,
  null-message accounting, stop propagation, and in-process vs
  multiprocess equivalence;
* spec surface: ``parallel``/``workers`` validation, serialization only
  when set, single-group graceful fallback, obs-mode restrictions;
* per-shard nemesis filtering (point ops, link ops, partitions);
* the sweep scheduler's shared CPU budget (``jobs × workers`` clamp);
* report/warehouse plumbing: the deterministic ``rsm["parallel"]`` section
  and the ``parallel_speedup`` distillation with its reversed-direction
  regression gate.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.context import RunContext
from repro.engine.spec import NemesisSpec, RsmRunSpec, TopologySpec
from repro.errors import ConfigurationError
from repro.nemesis.spec import (
    CpuSkewOp,
    CrashOp,
    DelayOp,
    DropOp,
    DupOp,
    FdFlapOp,
    PartitionOp,
)
from repro.rsm.parallel import (
    filter_nemesis_for_shard,
    run_parallel_sharded_rsm,
    shard_partition_plan,
)
from repro.rsm.runner import run_rsm
from repro.rsm.shard import shard_pid_groups
from repro.sim.network import (
    ConstantDelay,
    ExponentialDelay,
    LanDelay,
    LogNormalDelay,
    UniformDelay,
)
from repro.sim.parallel import (
    CrossMessage,
    ParallelStats,
    PartitionPlan,
    required_lookahead,
    run_partitions,
)
from repro.sim.trace import Tracer


def trace_bytes(tracer: Tracer) -> bytes:
    return json.dumps(
        [[r.time, r.pid, r.kind, repr(r.data)] for r in tracer.records]
    ).encode()


# --------------------------------------------------------------------------
# Satellite: DelayModel.min_delay() — the provable lookahead floor.


class TestMinDelay:
    def test_constant(self):
        assert ConstantDelay(0.25).min_delay() == 0.25

    def test_uniform_floor_is_low(self):
        assert UniformDelay(0.01, 0.05).min_delay() == 0.01

    def test_exponential_floor_is_base(self):
        assert ExponentialDelay(0.003, 0.02).min_delay() == 0.003

    def test_lognormal_floor_is_zero(self):
        # exp(mu + sigma·Z) > 0 has no positive lower bound when sigma > 0.
        assert LogNormalDelay(0.01, 0.5).min_delay() == 0.0

    def test_lognormal_degenerate_sigma(self):
        assert LogNormalDelay(0.01, 0.0).min_delay() == 0.01

    def test_lan_floor_is_base(self):
        model = LanDelay()
        assert model.min_delay() == model.base
        assert model.min_delay() > 0.0

    def test_required_lookahead_positive_floor(self):
        assert required_lookahead(ConstantDelay(0.1)) == 0.1

    def test_required_lookahead_rejects_zero_floor(self):
        with pytest.raises(ConfigurationError, match="zero/unbounded-below"):
            required_lookahead(LogNormalDelay(0.01, 0.5))

    def test_required_lookahead_rejects_floorless_model(self):
        class NoFloor:
            def sample(self, rng, src, dst):  # pragma: no cover - shape only
                return 0.1

        with pytest.raises(ConfigurationError, match="min_delay"):
            required_lookahead(NoFloor())


# --------------------------------------------------------------------------
# PartitionPlan: validation + window arithmetic.


class TestPartitionPlan:
    def test_partition_of(self):
        plan = PartitionPlan(groups=((0, 1), (2, 3)))
        assert plan.partitions == 2
        assert plan.partition_of(0) == 0
        assert plan.partition_of(3) == 1

    def test_rejects_empty_groups(self):
        with pytest.raises(ConfigurationError):
            PartitionPlan(groups=())
        with pytest.raises(ConfigurationError):
            PartitionPlan(groups=((0,), ()))

    def test_rejects_overlapping_groups(self):
        with pytest.raises(ConfigurationError, match="more than one partition"):
            PartitionPlan(groups=((0, 1), (1, 2)))

    def test_rejects_nonpositive_lookahead(self):
        with pytest.raises(ConfigurationError):
            PartitionPlan(groups=((0,), (1,)), lookahead=0.0)

    def test_window_ends_stepped_by_lookahead(self):
        plan = PartitionPlan(groups=((0,), (1,)), lookahead=0.5)
        assert plan.window_ends(2.0) == [0.5, 1.0, 1.5, 2.0]
        # A horizon off the lookahead grid still ends exactly at the horizon.
        assert plan.window_ends(1.2) == [0.5, 1.0, 1.2]

    def test_window_ends_single_window_without_lookahead(self):
        plan = PartitionPlan(groups=((0,), (1,)))
        assert plan.window_ends(3.0) == [3.0]

    def test_window_ends_single_partition_needs_no_barriers(self):
        plan = PartitionPlan(groups=((0, 1),), lookahead=0.5)
        assert plan.window_ends(3.0) == [3.0]


# --------------------------------------------------------------------------
# Substrate: conservative synchronization over toy harnesses.


class PingPong:
    """Toy partition: one event per second, each sending a cross message
    that arrives ``lookahead`` later in the peer partition."""

    def __init__(self, me: int, other: int, horizon: float) -> None:
        self.me, self.other = me, other
        self.horizon = horizon
        self.next_event = 1.0
        self.seq = 0
        self.log: list[tuple] = []
        self.events_processed = 0

    def inject(self, messages):
        for m in messages:
            self.log.append(("recv", round(m.time, 6), m.payload))

    def advance(self, until):
        out = []
        while self.next_event <= until:
            t = self.next_event
            self.seq += 1
            self.events_processed += 1
            out.append(
                CrossMessage(
                    time=t + 0.5,
                    seq=self.seq,
                    src=self.me,
                    dst=self.other,
                    src_pid=self.me,
                    dst_pid=self.other,
                    payload=f"p{self.me}@{t}",
                    channel="msg",
                )
            )
            self.next_event += 1.0
        return out

    def pending(self):
        return self.next_event <= self.horizon

    def stopped(self):
        return False

    def finish(self):
        return self.log


class TestSubstrate:
    PLAN = PartitionPlan(groups=((0,), (1,)), lookahead=0.5)

    def _build(self, partition, payload):
        return PingPong(partition, 1 - partition, horizon=3.0)

    def test_cross_messages_arrive_after_lookahead(self):
        outcomes, stats = run_partitions(
            self._build, [None, None], self.PLAN, horizon=3.0, workers=1
        )
        # Events at t=1,2 produce arrivals at 1.5, 2.5; the t=3 send lands
        # past the horizon and is conservatively never delivered.
        assert outcomes[0] == [("recv", 1.5, "p1@1.0"), ("recv", 2.5, "p1@2.0")]
        assert outcomes[1] == [("recv", 1.5, "p0@1.0"), ("recv", 2.5, "p0@2.0")]
        assert stats.windows == 6
        assert stats.cross_messages == 6
        assert stats.null_messages == 6

    def test_multiprocess_equivalent_to_in_process(self):
        serial, s1 = run_partitions(
            self._build, [None, None], self.PLAN, horizon=3.0, workers=1
        )
        forked, s2 = run_partitions(
            self._build, [None, None], self.PLAN, horizon=3.0, workers=2
        )
        assert serial == forked
        assert s1.windows == s2.windows
        assert s1.cross_messages == s2.cross_messages
        assert s2.workers == 2

    def test_workers_clamped_to_partitions(self):
        _, stats = run_partitions(
            self._build, [None, None], self.PLAN, horizon=3.0, workers=8
        )
        assert stats.workers == 2

    def test_injected_messages_sorted_by_time_seq_src(self):
        # One sink partition; two senders emit interleaved messages whose
        # arrival order must be (time, seq, src) regardless of send order.
        class Sink:
            def __init__(self):
                self.got = []

            def inject(self, messages):
                self.got.extend((m.time, m.seq, m.src, m.payload) for m in messages)

            def advance(self, until):
                return []

            def pending(self):
                return False

            def stopped(self):
                return False

            def finish(self):
                return self.got

        class Burst:
            def __init__(self, me):
                self.me = me
                self.sent = False

            def inject(self, messages):
                pass

            def advance(self, until):
                if self.sent:
                    return []
                self.sent = True
                # Deliberately emitted out of order.
                return [
                    CrossMessage(2.0, 5, self.me, 0, self.me, 0, f"late{self.me}", "m"),
                    CrossMessage(2.0, 1, self.me, 0, self.me, 0, f"tie{self.me}", "m"),
                    CrossMessage(1.5, 9, self.me, 0, self.me, 0, f"early{self.me}", "m"),
                ]

            def pending(self):
                return False

            def stopped(self):
                return False

            def finish(self):
                return None

        def build(partition, payload):
            return Sink() if partition == 0 else Burst(partition)

        plan = PartitionPlan(groups=((0,), (1,), (2,)), lookahead=1.0)
        outcomes, _ = run_partitions(build, [None] * 3, plan, horizon=4.0, workers=1)
        keys = [(t, seq, src) for t, seq, src, _ in outcomes[0]]
        assert keys == sorted(keys)
        # Equal (time, seq) ties break on src.
        assert [p for _, _, _, p in outcomes[0]][:2] == ["early1", "early2"]

    def test_stop_halts_every_partition(self):
        class Stopper(PingPong):
            def stopped(self):
                return self.next_event > 2.0  # stops mid-run

        def build(partition, payload):
            cls = Stopper if partition == 0 else PingPong
            return cls(partition, 1 - partition, horizon=10.0)

        plan = PartitionPlan(groups=((0,), (1,)), lookahead=0.5)
        outcomes, stats = run_partitions(build, [None, None], plan, 10.0, workers=1)
        # Partition 1 would have run to t=10 alone; the stop in partition 0
        # halts the window loop for everyone.
        assert stats.windows < len(plan.window_ends(10.0))
        assert all(t <= 3.0 for _, t, _ in outcomes[1])

    def test_payload_count_must_match_partitions(self):
        with pytest.raises(ConfigurationError):
            run_partitions(self._build, [None], self.PLAN, horizon=1.0, workers=1)


# --------------------------------------------------------------------------
# Spec surface: validation, serialization, fallback, obs restrictions.


class TestSpecSurface:
    def test_workers_requires_parallel(self):
        with pytest.raises(ConfigurationError, match="parallel"):
            RsmRunSpec(protocol="multipaxos", rate=10.0, duration=1.0, workers=2)

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="workers"):
            RsmRunSpec(
                protocol="multipaxos",
                rate=10.0,
                duration=1.0,
                parallel=True,
                workers=-1,
            )

    def test_parallel_rejects_txn_clients(self):
        with pytest.raises(ConfigurationError, match="txn_clients"):
            RsmRunSpec(
                protocol="multipaxos",
                rate=10.0,
                duration=1.0,
                topology=TopologySpec(groups=2),
                parallel=True,
                txn_clients=2,
                txn_rate=5.0,
            )

    def test_fields_serialize_only_when_set(self):
        plain = RsmRunSpec(protocol="multipaxos", rate=10.0, duration=1.0)
        assert "parallel" not in plain.to_dict()
        assert "workers" not in plain.to_dict()
        par = RsmRunSpec(
            protocol="multipaxos",
            rate=10.0,
            duration=1.0,
            topology=TopologySpec(groups=2),
            parallel=True,
            workers=2,
        )
        body = par.to_dict()
        assert body["parallel"] is True
        assert body["workers"] == 2
        assert RsmRunSpec.from_dict(body) == par

    def test_parallel_changes_cache_key(self):
        base = dict(
            protocol="multipaxos",
            rate=10.0,
            duration=1.0,
            topology=TopologySpec(groups=2),
        )
        serial = RsmRunSpec(**base)
        parallel = RsmRunSpec(**base, parallel=True)
        assert serial.cache_key() != parallel.cache_key()
        # Worker count is execution-only in effect but serialized for
        # transparency; byte-identity across counts is pinned elsewhere.
        assert (
            RsmRunSpec(**base, parallel=True, workers=2).cache_key()
            != parallel.cache_key()
        )

    def test_single_group_falls_back_to_serial_kernel(self):
        spec = RsmRunSpec(
            protocol="multipaxos",
            rate=20.0,
            duration=1.0,
            n=3,
            clients=2,
            seed=3,
            parallel=True,
        )
        result = run_rsm(spec)
        # The unsharded runner served it: no parallel section, no stubs.
        assert not hasattr(result, "parallel")
        assert result.committed > 0

    def test_obs_metrics_rejected(self):
        spec = RsmRunSpec(
            protocol="multipaxos",
            rate=20.0,
            duration=1.0,
            clients=2,
            topology=TopologySpec(groups=2),
            parallel=True,
            obs=True,
            obs_metrics_interval=0.1,
        )
        from repro.engine.runner import execute_run

        with pytest.raises(ConfigurationError, match="obs detail"):
            execute_run(spec)


# --------------------------------------------------------------------------
# Per-shard nemesis filtering.


class TestNemesisFiltering:
    def test_point_ops_follow_their_pid(self):
        nem = NemesisSpec(
            (
                CrashOp(at=0.5, pid=2),
                FdFlapOp(at=1.0, duration=0.2, pid=4),
                CpuSkewOp(at=1.5, duration=0.2, pid=2, factor=2.0),
            )
        )
        shard0 = filter_nemesis_for_shard(nem, frozenset({0, 1, 2}))
        shard1 = filter_nemesis_for_shard(nem, frozenset({3, 4, 5}))
        assert {type(op).__name__ for op in shard0.ops} == {"CrashOp", "CpuSkewOp"}
        assert {type(op).__name__ for op in shard1.ops} == {"FdFlapOp"}

    def test_wildcard_link_ops_kept_everywhere(self):
        nem = NemesisSpec(
            (
                DropOp(at=0.1, duration=0.1, p=0.5),
                DelayOp(at=0.2, duration=0.1, extra=1e-3),
                DupOp(at=0.3, duration=0.1, p=0.2),
            )
        )
        for pids in (frozenset({0, 1, 2}), frozenset({9, 10, 11})):
            assert len(filter_nemesis_for_shard(nem, pids).ops) == 3

    def test_addressed_link_op_needs_both_endpoints(self):
        nem = NemesisSpec((DropOp(at=0.1, duration=0.1, p=0.5, src=0, dst=1),))
        assert len(filter_nemesis_for_shard(nem, frozenset({0, 1, 2})).ops) == 1
        # A cross-shard link cannot exist in a partitioned run; the op
        # vanishes from both shards rather than half-applying.
        nem_cross = NemesisSpec((DropOp(at=0.1, duration=0.1, p=0.5, src=0, dst=3),))
        assert len(filter_nemesis_for_shard(nem_cross, frozenset({0, 1, 2})).ops) == 0
        assert len(filter_nemesis_for_shard(nem_cross, frozenset({3, 4, 5})).ops) == 0

    def test_partition_groups_intersected(self):
        nem = NemesisSpec(
            (PartitionOp(at=0.5, duration=0.2, groups=((0, 1, 3), (2, 4))),)
        )
        out = filter_nemesis_for_shard(nem, frozenset({0, 1, 2}))
        assert len(out.ops) == 1
        assert out.ops[0].groups == ((0, 1), (2,))

    def test_partition_missing_shard_isolates_it(self):
        # Serial semantics: pids in no group are isolated.  A shard whose
        # pids all fall outside the op's groups reproduces that with a
        # singleton group (everyone else isolated from it).
        nem = NemesisSpec((PartitionOp(at=0.5, duration=0.2, groups=((0, 1),)),))
        out = filter_nemesis_for_shard(nem, frozenset({3, 4, 5}))
        assert len(out.ops) == 1
        assert out.ops[0].groups == ((3,),)

    def test_shard_partition_plan_requires_sharding(self):
        spec = RsmRunSpec(protocol="multipaxos", rate=10.0, duration=1.0)
        with pytest.raises(ConfigurationError):
            shard_partition_plan(spec)

    def test_shard_pid_groups_layout(self):
        spec = RsmRunSpec(
            protocol="multipaxos",
            rate=10.0,
            duration=1.0,
            n=3,
            topology=TopologySpec(groups=2),
        )
        assert shard_pid_groups(spec) == ((0, 1, 2), (3, 4, 5))


# --------------------------------------------------------------------------
# Tentpole: the RSM path — stubs, merged stats, deterministic section.


class TestParallelRsm:
    SPEC = dict(
        protocol="multipaxos",
        seed=7,
        rate=20.0,
        duration=2.0,
        clients=4,
        topology=TopologySpec(groups=4, group_size=3),
    )

    def test_matches_committed_and_checks(self):
        result = run_rsm(RsmRunSpec(**self.SPEC, parallel=True))
        assert result.shards == 4
        assert result.committed > 0
        assert result.linearizable is True
        parallel = result.parallel
        assert parallel["partitions"] == 4
        assert parallel["speedup_bound"] > 1.0
        assert parallel["events_total"] >= parallel["max_partition_events"]

    def test_parallel_section_is_deterministic(self):
        first = run_rsm(RsmRunSpec(**self.SPEC, parallel=True, workers=1))
        second = run_rsm(RsmRunSpec(**self.SPEC, parallel=True, workers=1))
        assert first.parallel == second.parallel

    def test_workers_cap_does_not_change_outputs(self):
        spec = RsmRunSpec(**self.SPEC, parallel=True, workers=4)
        free = run_parallel_sharded_rsm(spec)
        capped = run_parallel_sharded_rsm(spec, workers_cap=1)
        # The deterministic section reports the *requested* workers; only
        # the opt-in perf stats see the actual process count.
        assert free.parallel == capped.parallel
        assert capped.parallel_stats.workers == 1

    def test_commit_latencies_flow_into_report(self):
        from repro.engine.runner import execute_run

        report = execute_run(RsmRunSpec(**self.SPEC, parallel=True, workers=2))
        assert report.delivered > 0
        assert report.rsm["parallel"]["workers"] == 2
        assert report.rsm["committed"] == report.delivered

    def test_report_json_deterministic_across_worker_counts(self):
        from repro.engine.runner import execute_run

        one = execute_run(RsmRunSpec(**self.SPEC, parallel=True, workers=1))
        # Same spec value => same cache key; run twice to pin byte-identity
        # of the full report document.
        again = execute_run(RsmRunSpec(**self.SPEC, parallel=True, workers=1))
        assert one.to_json() == again.to_json()


# --------------------------------------------------------------------------
# Satellite: sweep scheduler shares the CPU budget with per-cell workers.


class TestSweepBudget:
    def test_jobs_times_workers_clamped(self, tmp_path):
        from repro.engine.pool import available_cpus, shutdown_shared_pool
        from repro.engine.runner import run_sweep

        specs = [
            RsmRunSpec(
                protocol="multipaxos",
                seed=seed,
                rate=10.0,
                duration=0.5,
                clients=2,
                topology=TopologySpec(groups=2, group_size=3),
                parallel=True,
                workers=4,
            )
            for seed in (1, 2)
        ]
        try:
            result = run_sweep(specs, jobs=2, clamp_jobs=False)
        finally:
            shutdown_shared_pool()
        assert len(result.reports) == 2
        cpus = available_cpus()
        if 2 * 4 > cpus:
            cap = max(1, cpus // 2)
            assert any(
                f"workers clamped to {cap}" in note for note in result.notes
            ), result.notes
        # Reports stay deterministic: the requested workers value survives.
        assert all(r.rsm["parallel"]["workers"] == 4 for r in result.reports)

    def test_serial_sweep_unaffected(self):
        from repro.engine.runner import run_sweep

        spec = RsmRunSpec(
            protocol="multipaxos",
            seed=1,
            rate=10.0,
            duration=0.5,
            clients=2,
            topology=TopologySpec(groups=2, group_size=3),
            parallel=True,
            workers=2,
        )
        result = run_sweep([spec], jobs=1)
        assert result.notes == ()
        assert result.reports[0].rsm["parallel"]["partitions"] == 2


# --------------------------------------------------------------------------
# Satellite: warehouse distillation + reversed-direction regression gate.


class TestWarehouseSpeedup:
    def _entry(self):
        from repro.engine.runner import execute_run
        from repro.obs.warehouse import build_entry

        spec = RsmRunSpec(
            protocol="multipaxos",
            seed=7,
            rate=20.0,
            duration=1.0,
            clients=4,
            topology=TopologySpec(groups=2, group_size=3),
            parallel=True,
            workers=2,
        )
        report = execute_run(spec)
        return build_entry(report, [])

    def test_entry_carries_speedup_distillation(self):
        entry = self._entry()
        dist = entry["parallel_speedup"]
        assert dist["partitions"] == 2
        assert dist["workers"] == 2
        assert dist["speedup_bound"] > 1.0

    def test_compare_flags_shrunken_speedup(self):
        from repro.obs.warehouse import compare_entries

        base = self._entry()
        fresh = json.loads(json.dumps(base))
        fresh["parallel_speedup"]["speedup_bound"] = (
            base["parallel_speedup"]["speedup_bound"] * 0.5
        )
        _, failures = compare_entries(base, fresh, tolerance=0.3)
        assert any("speedup_bound" in f for f in failures)
        # Identical entries pass, and a *grown* bound is never a regression.
        _, ok = compare_entries(base, base, tolerance=0.3)
        assert ok == []
        fresh["parallel_speedup"]["speedup_bound"] = (
            base["parallel_speedup"]["speedup_bound"] * 2.0
        )
        _, grown = compare_entries(base, fresh, tolerance=0.3)
        assert grown == []
