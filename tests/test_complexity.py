"""Tests for the Table-1 analytical model — including measured validation."""

import math

import pytest

from repro.analysis.complexity import INFINITY, format_table1, table1
from repro.errors import ConfigurationError
from repro.harness.abcast_runner import run_abcast
from repro.sim.network import ConstantDelay

from tests.conftest import make_cabcast_l, make_multipaxos, make_wabcast

D = ConstantDelay(100e-6)


class TestClosedForms:
    def test_rows_present(self):
        rows = {r.protocol: r for r in table1(4)}
        assert set(rows) == {"Paxos", "WABCast", "L-/P-Consensus"}

    def test_paxos_row(self):
        row = next(r for r in table1(4) if r.protocol == "Paxos")
        assert row.latency_no_collisions == 3
        assert row.messages_no_collisions == 21  # n^2 + n + 1
        assert row.resilience == "f < n/2"

    def test_wabcast_row_degenerates_under_collisions(self):
        row = next(r for r in table1(4) if r.protocol == "WABCast")
        assert row.latency_no_collisions == 2
        assert row.latency_collisions == INFINITY
        assert row.messages_no_collisions == 20  # n^2 + n

    def test_lp_row(self):
        row = next(r for r in table1(4) if r.protocol == "L-/P-Consensus")
        assert row.latency_collisions == 3
        assert row.messages_collisions == 36  # 2n^2 + n

    def test_latency_seconds_helper(self):
        row = next(r for r in table1(4) if r.protocol == "Paxos")
        assert row.latency_seconds(1e-3) == pytest.approx(3e-3)

    def test_formatting(self):
        text = format_table1(4)
        assert "Paxos" in text and "inf" in text and "f < n/3" in text

    def test_n_validation(self):
        with pytest.raises(ConfigurationError):
            table1(1)


class TestMeasuredValidation:
    """Cross-check the closed forms against the simulator (the T1 bench
    does this at full width; here a spot check per protocol)."""

    def test_lp_latency_no_collisions_measured(self):
        result = run_abcast(
            make_cabcast_l, 4, {1: [(0.001, "x")]}, seed=1, delay=D, datagram_delay=D, horizon=5.0
        )
        measured_steps = result.latency_of((1, 1)) / 100e-6
        row = next(r for r in table1(4) if r.protocol == "L-/P-Consensus")
        assert measured_steps == pytest.approx(row.latency_no_collisions, rel=0.01)

    def test_wabcast_latency_measured(self):
        result = run_abcast(
            make_wabcast, 4, {1: [(0.001, "x")]}, seed=2, delay=D, datagram_delay=D, horizon=5.0
        )
        assert result.latency_of((1, 1)) / 100e-6 == pytest.approx(2, rel=0.01)

    def test_paxos_latency_measured(self):
        result = run_abcast(
            make_multipaxos, 3, {1: [(0.001, "x")]}, seed=3, delay=D, datagram_delay=D, horizon=5.0
        )
        assert result.latency_of((1, 1)) / 100e-6 == pytest.approx(3, rel=0.01)

    def test_paxos_message_count_exact(self):
        result = run_abcast(
            make_multipaxos, 3, {1: [(0.001, "x")]}, seed=4, delay=D, datagram_delay=D, horizon=5.0
        )
        row = next(r for r in table1(3) if r.protocol == "Paxos")
        kinds = result.network_stats["by_kind"]
        protocol_msgs = kinds["Request"] + kinds["LogAccept"] + kinds["LogAccepted"]
        assert protocol_msgs == row.messages_no_collisions

    def test_lp_message_count_no_collisions(self):
        result = run_abcast(
            make_cabcast_l, 4, {1: [(0.001, "x")]}, seed=5, delay=D, datagram_delay=D, horizon=5.0
        )
        row = next(r for r in table1(4) if r.protocol == "L-/P-Consensus")
        kinds = result.network_stats["by_kind"]
        # Paper counting: WAB datagrams + one PROP round (T2 DECIDEs excluded).
        assert kinds["WabMessage"] + kinds["LProp"] == row.messages_no_collisions
