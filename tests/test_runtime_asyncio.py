"""Tests for the asyncio runtime: the same protocol code, run live."""

import asyncio

import pytest

from repro.core import LConsensus, PConsensus
from repro.core.cabcast import CAbcast
from repro.errors import ConfigurationError
from repro.fd.heartbeat import HeartbeatSuspector
from repro.harness.abcast_runner import AbcastHost
from repro.harness.checkers import check_uniform_total_order
from repro.harness.consensus_runner import ConsensusHost
from repro.runtime import AsyncCluster
from repro.sim.network import ConstantDelay


def consensus_factory(protocol, proposal_of):
    """Hosts running consensus over a live heartbeat failure detector."""

    def factory(pid, pids):
        def module_factory(host, env):
            if protocol == "p":
                return PConsensus(env, host.fd_module)
            return LConsensus(env, host.fd_module.omega())

        return ConsensusHost(
            module_factory=module_factory,
            proposal=proposal_of(pid),
            fd_factory=lambda env: HeartbeatSuspector(
                env, period=0.01, initial_timeout=0.04
            ),
        )

    return factory


def run_async(coro):
    return asyncio.run(coro)


class TestLiveConsensus:
    def test_p_consensus_equal_proposals(self):
        async def main():
            cluster = AsyncCluster(
                4, consensus_factory("p", lambda pid: "v"), delay=ConstantDelay(0.002)
            )
            await cluster.start()
            await cluster.run(0.3)
            await cluster.shutdown()
            return {p: h.decision_value for p, h in cluster.processes.items()}

        decisions = run_async(main())
        assert set(decisions.values()) == {"v"}

    def test_l_consensus_mixed_proposals(self):
        async def main():
            cluster = AsyncCluster(
                4,
                consensus_factory("l", lambda pid: f"v{pid}"),
                delay=ConstantDelay(0.002),
            )
            await cluster.start()
            await cluster.run(0.4)
            await cluster.shutdown()
            return {p: h.decision_value for p, h in cluster.processes.items()}

        decisions = run_async(main())
        assert len(decisions) == 4
        assert len(set(decisions.values())) == 1

    def test_crash_during_live_run(self):
        async def main():
            cluster = AsyncCluster(
                4,
                consensus_factory("p", lambda pid: f"v{pid}"),
                delay=ConstantDelay(0.002),
            )
            await cluster.start()
            cluster.crash(3)
            await cluster.run(0.5)
            await cluster.shutdown()
            return {
                p: h.decision_value
                for p, h in cluster.processes.items()
                if p != 3 and h.decision_value
            }

        decisions = run_async(main())
        assert set(decisions) == {0, 1, 2}
        assert len(set(decisions.values())) == 1


class TestLiveAbcast:
    def test_cabcast_total_order_live(self):
        def factory(pid, pids):
            def module_factory(host, env):
                # An always-trusting ◇P view suffices for a short crash-free
                # live demo (stable run by construction).
                class Trusting:
                    def suspected(self):
                        return frozenset()

                    def subscribe(self, fn):
                        pass

                return CAbcast(env, lambda senv: PConsensus(senv, Trusting()))

            schedule = [(0.02 * (i + 1), f"m{pid}.{i}") for i in range(3)]
            return AbcastHost(module_factory=module_factory, schedule=schedule)

        async def main():
            cluster = AsyncCluster(3, factory, delay=ConstantDelay(0.002))
            await cluster.start()
            await cluster.run(0.6)
            await cluster.shutdown()
            return {p: h.abcast.delivered_ids for p, h in cluster.processes.items()}

        deliveries = run_async(main())
        check_uniform_total_order(deliveries)
        assert all(len(seq) == 9 for seq in deliveries.values())


class TestRuntimeMechanics:
    def test_time_scale_speeds_up_timers(self):
        import time

        from repro.sim.process import Process

        class TimerProc(Process):
            def __init__(self):
                self.fired_at = None
                self.started_at = None

            def on_start(self):
                self.started_at = time.monotonic()
                self.env.set_timer("t", 1.0)  # 1 protocol second

            def on_timer(self, name):
                self.fired_at = time.monotonic()

        async def main():
            cluster = AsyncCluster(1, lambda pid, pids: TimerProc(), time_scale=0.05)
            await cluster.start()
            await cluster.run(1.2)
            await cluster.shutdown()
            return cluster.processes[0]

        proc = run_async(main())
        assert proc.fired_at is not None
        assert proc.fired_at - proc.started_at < 0.5  # scaled down from 1s

    def test_reliable_fifo_live(self):
        from repro.sim.process import Process

        class Pair(Process):
            def __init__(self):
                self.received = []

            def on_start(self):
                if self.env.pid == 0:
                    for i in range(30):
                        self.env.send(1, i)

            def on_message(self, src, msg):
                self.received.append(msg)

        async def main():
            from repro.sim.network import UniformDelay

            cluster = AsyncCluster(
                2, lambda pid, pids: Pair(), delay=UniformDelay(0.0, 0.01)
            )
            await cluster.start()
            await cluster.run(0.3)
            await cluster.shutdown()
            return cluster.processes[1].received

        received = run_async(main())
        assert received == sorted(received)
        assert len(received) == 30

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            AsyncCluster(0, lambda pid, pids: None)
        with pytest.raises(ConfigurationError):
            AsyncCluster(2, lambda pid, pids: None, time_scale=0)
        with pytest.raises(ConfigurationError):
            AsyncCluster(2, lambda pid, pids: None, datagram_loss=2.0)
