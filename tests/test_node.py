"""Unit tests for the node runtime: CPU model, timers, crash semantics."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.network import ConstantDelay, Network
from repro.sim.node import Cluster, Node
from repro.sim.process import Process


class Recorder(Process):
    """Records every callback with its timestamp."""

    def __init__(self):
        self.events = []

    def on_start(self):
        self.events.append(("start", self.env.now()))

    def on_message(self, src, msg):
        self.events.append(("msg", src, msg, self.env.now()))

    def on_timer(self, name):
        self.events.append(("timer", name, self.env.now()))

    def on_crash(self):
        self.events.append(("crash",))


def build(n=2, service_time=0.0, delay=ConstantDelay(1e-3), seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, delay=delay)
    pids = list(range(n))
    nodes = {}
    procs = {}
    for pid in pids:
        procs[pid] = Recorder()
        nodes[pid] = Node(sim, net, pid, pids, procs[pid], service_time=service_time)
    return sim, net, nodes, procs


class TestLifecycle:
    def test_on_start_called_at_start_time(self):
        sim, _, nodes, procs = build()
        nodes[0].start(at=0.5)
        nodes[1].start()
        sim.run()
        assert procs[0].events[0] == ("start", 0.5)
        assert procs[1].events[0] == ("start", 0.0)

    def test_double_start_rejected(self):
        sim, _, nodes, _ = build()
        nodes[0].start()
        with pytest.raises(ConfigurationError):
            nodes[0].start()

    def test_pid_must_be_in_peers(self):
        sim = Simulator()
        net = Network(sim)
        with pytest.raises(ConfigurationError):
            Node(sim, net, 5, [0, 1], Recorder())


class TestMessaging:
    def test_message_reaches_process(self):
        sim, _, nodes, procs = build()
        nodes[0].start()
        nodes[1].start()
        procs[0].env.send(1, "ping")
        sim.run()
        assert ("msg", 0, "ping", pytest.approx(1e-3)) in procs[1].events

    def test_broadcast_includes_self(self):
        sim, _, nodes, procs = build(n=3)
        for node in nodes.values():
            node.start()
        procs[0].env.broadcast("hi")
        sim.run()
        for pid in range(3):
            assert any(e[0] == "msg" and e[2] == "hi" for e in procs[pid].events)


class TestCpuModel:
    def test_service_time_serialises_handlers(self):
        sim, _, nodes, procs = build(service_time=0.01)
        nodes[0].start()
        nodes[1].start()
        # Two messages arrive at the same time; handlers run back-to-back.
        procs[0].env.send(1, "a")
        procs[0].env.send(1, "b")
        sim.run()
        msg_times = [e[3] for e in procs[1].events if e[0] == "msg"]
        # FIFO adds epsilon to the second arrival; the CPU adds 10ms each.
        assert msg_times[0] == pytest.approx(1e-3 + 0.01, abs=1e-6)
        assert msg_times[1] == pytest.approx(1e-3 + 0.02, abs=1e-6)

    def test_zero_service_time_runs_at_arrival(self):
        sim, _, nodes, procs = build(service_time=0.0)
        nodes[0].start()
        nodes[1].start()
        procs[0].env.send(1, "a")
        sim.run()
        assert procs[1].events[-1][3] == pytest.approx(1e-3)

    def test_callable_service_time(self):
        cost = lambda kind, payload: 0.05 if kind == "message" else 0.0
        sim, _, nodes, procs = build(service_time=cost)
        nodes[0].start()
        nodes[1].start()
        procs[0].env.send(1, "a")
        sim.run()
        assert procs[1].events[-1][3] == pytest.approx(1e-3 + 0.05)

    def test_utilization_tracked(self):
        sim, _, nodes, procs = build(service_time=0.01)
        nodes[0].start()
        nodes[1].start()
        for _ in range(5):
            procs[0].env.send(1, "x")
        sim.run()
        assert nodes[1].busy_time == pytest.approx(0.05)
        assert 0 < nodes[1].utilization() <= 1.0


class TestTimers:
    def test_timer_fires_after_delay(self):
        sim, _, nodes, procs = build()
        nodes[0].start()
        nodes[1].start()
        procs[0].env.set_timer("tick", 0.25)
        sim.run()
        assert ("timer", "tick", 0.25) in procs[0].events

    def test_rearming_resets_timer(self):
        sim, _, nodes, procs = build()
        nodes[0].start()
        nodes[1].start()
        procs[0].env.set_timer("tick", 0.25)
        sim.schedule(0.1, lambda: procs[0].env.set_timer("tick", 0.25))
        sim.run()
        timers = [e for e in procs[0].events if e[0] == "timer"]
        assert timers == [("timer", "tick", pytest.approx(0.35))]

    def test_cancel_timer(self):
        sim, _, nodes, procs = build()
        nodes[0].start()
        nodes[1].start()
        procs[0].env.set_timer("tick", 0.25)
        sim.schedule(0.1, lambda: procs[0].env.cancel_timer("tick"))
        sim.run()
        assert not any(e[0] == "timer" for e in procs[0].events)

    def test_cancel_unknown_timer_is_noop(self):
        sim, _, nodes, procs = build()
        nodes[0].start()
        nodes[1].start()
        procs[0].env.cancel_timer("ghost")
        sim.run()


class TestCrash:
    def test_crashed_node_ignores_messages(self):
        sim, _, nodes, procs = build()
        nodes[0].start()
        nodes[1].start()
        nodes[1].crash()
        procs[0].env.send(1, "late")
        sim.run()
        assert not any(e[0] == "msg" for e in procs[1].events)

    def test_crash_cancels_timers(self):
        sim, _, nodes, procs = build()
        nodes[0].start()
        nodes[1].start()
        procs[0].env.set_timer("tick", 0.5)
        nodes[0].crash()
        sim.run()
        assert not any(e[0] == "timer" for e in procs[0].events)

    def test_crash_at_schedules_crash(self):
        sim, _, nodes, procs = build()
        nodes[0].start()
        nodes[1].start()
        nodes[1].crash_at(0.5)
        sim.schedule(0.6, lambda: procs[0].env.send(1, "after"))
        sim.run()
        assert nodes[1].crashed
        assert not any(e[0] == "msg" for e in procs[1].events)

    def test_crash_notifies_listeners_once(self):
        sim, _, nodes, _ = build()
        seen = []
        nodes[0].add_crash_listener(seen.append)
        nodes[0].crash()
        nodes[0].crash()
        assert seen == [0]

    def test_on_crash_callback_runs(self):
        sim, _, nodes, procs = build()
        nodes[0].crash()
        assert ("crash",) in procs[0].events


class TestCluster:
    def test_cluster_builds_and_runs(self):
        cluster = Cluster(3, lambda pid, pids: Recorder(), delay=ConstantDelay(1e-3))
        cluster.start()
        cluster.run()
        # The cached, sorted registry tuple is exposed directly (no copy).
        assert cluster.pids == (0, 1, 2)
        assert cluster.pids is cluster.network.pids
        for proc in cluster.processes.values():
            assert proc.events[0][0] == "start"

    def test_cluster_crash_helper(self):
        cluster = Cluster(3, lambda pid, pids: Recorder())
        cluster.start()
        cluster.crash(1)
        cluster.run()
        assert cluster.alive_pids() == [0, 2]

    def test_cluster_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            Cluster(0, lambda pid, pids: Recorder())
