"""Sharded multi-group RSM: partitioning, 2PC transactions, serializability.

Covers the :mod:`repro.rsm.shard` layer end to end — the key partitioners,
plain sharded runs (per-shard linearizability + convergence), cross-shard
transactions through the full prepare/decide/finish 2PC pipeline, crash
recovery of coordinators and participants, the cross-shard serializability
checker on hand-crafted histories, and the shard-axis sweep grid through
the warm worker pool.

Crash scenarios use ``group_size=4`` with ``PAPER_LAN``: one-step consensus
needs ``n > 3f``, so an n=3 group cannot survive any crash, and the default
:class:`ClusterSpec` has no failure detection at all.
"""

import pytest

from repro.engine import PAPER_LAN, RsmRunSpec, TopologySpec, spec_from_dict
from repro.errors import ConfigurationError, SerializabilityViolation
from repro.harness.checkers import check_cross_shard_serializable
from repro.rsm import (
    ShardKeyStream,
    ShardRouter,
    TxnCommand,
    TxnKvStore,
    run_sharded_rsm,
    sharded_service_metrics,
)
from repro.rsm.runner import run_rsm, service_metrics


def sharded_spec(**overrides):
    """A small 2-shard × n=3 spec; overrides replace any field."""
    base = dict(
        protocol="cabcast-l",
        rate=120.0,
        duration=0.4,
        n=3,
        clients=4,
        seed=7,
        cluster=PAPER_LAN,
        topology=TopologySpec(groups=2),
    )
    base.update(overrides)
    return RsmRunSpec(**base)


class TestShardRouter:
    @pytest.mark.parametrize("groups", [1, 2, 4, 8])
    def test_hash_covers_every_shard(self, groups):
        router = ShardRouter(groups=groups, keys=32)
        assert sorted(router.shard_of(f"k{i}") for i in range(32)) == sorted(
            shard for shard in range(groups) for _ in router.keys_for(shard)
        )
        for shard in range(groups):
            assert router.keys_for(shard)

    def test_range_banding_is_contiguous(self):
        router = ShardRouter(groups=4, keys=16, partitioner="range")
        for shard in range(4):
            indices = sorted(int(k[1:]) for k in router.keys_for(shard))
            assert indices == list(range(indices[0], indices[-1] + 1))
        # Bands tile the key space in order.
        assert router.shard_of("k0") == 0
        assert router.shard_of("k15") == 3

    def test_routing_matches_slices(self):
        router = ShardRouter(groups=4, keys=32)
        for shard in range(4):
            for key in router.keys_for(shard):
                assert router.shard_of(key) == shard

    def test_empty_shard_rejected(self):
        # crc32 leaves shard 0 empty for this tiny keyspace; the router must
        # refuse rather than silently idle a whole consensus group.
        with pytest.raises(ConfigurationError):
            ShardRouter(groups=2, keys=4)

    def test_key_stream_draws_only_owned_keys(self):
        router = ShardRouter(groups=2, keys=32)
        owned = set(router.keys_for(1))
        stream = ShardKeyStream(
            session=3, seed=99, keys=32, slice_keys=router.keys_for(1)
        )
        for seq in range(50):
            command = stream.next(seq)
            if command.key is not None:
                assert command.key in owned


class TestTxnKvStore:
    def test_prepare_commit_applies_writes(self):
        store = TxnKvStore()
        assert store.apply(TxnCommand("txn-prepare", "t1", writes=(("a", "1"),))) == "yes"
        assert store.apply(TxnCommand("txn-commit", "t1")) == "committed"
        assert store.apply(TxnCommand("txn-prepare", "t2", writes=(("a", "2"),))) == "yes"
        assert store.apply(TxnCommand("txn-abort", "t2")) == "aborted"
        # Committed write visible, aborted write discarded.
        assert ("a" in store.snapshot()["data"]) and store.snapshot()["data"]["a"] == "1"

    def test_conflicting_prepare_votes_no(self):
        store = TxnKvStore()
        store.apply(TxnCommand("txn-prepare", "t1", writes=(("a", "1"),)))
        assert store.apply(TxnCommand("txn-prepare", "t2", writes=(("a", "2"),))) == "conflict"
        store.apply(TxnCommand("txn-commit", "t1"))
        # Lock released by the commit: t2 can prepare again.
        assert store.apply(TxnCommand("txn-prepare", "t2", writes=(("a", "2"),))) == "yes"

    def test_duplicate_prepare_is_idempotent(self):
        store = TxnKvStore()
        command = TxnCommand("txn-prepare", "t1", writes=(("a", "1"),))
        assert store.apply(command) == "yes"
        assert store.apply(command) == "yes"

    def test_decision_is_sticky(self):
        store = TxnKvStore()
        store.apply(TxnCommand("txn-decide", "t1", decision="commit"))
        store.apply(TxnCommand("txn-decide", "t1", decision="abort"))
        assert store.decision_of("t1") == "commit"

    def test_snapshot_round_trips_txn_state(self):
        store = TxnKvStore()
        store.apply(TxnCommand("txn-prepare", "t1", writes=(("a", "1"),)))
        store.apply(TxnCommand("txn-decide", "t1", decision="commit"))
        clone = TxnKvStore()
        clone.install(store.snapshot())
        assert clone.digest() == store.digest()
        assert clone.apply(TxnCommand("txn-commit", "t1")) == "committed"


class TestSerializabilityChecker:
    def test_consistent_orders_pass(self):
        check_cross_shard_serializable(
            {
                0: [("t1", ["a"]), ("t2", ["a"])],
                1: [("t1", ["x"]), ("t2", ["x"])],
            }
        )

    def test_cycle_raises(self):
        # Shard 0 orders t1 < t2 on key "a"; shard 1 orders t2 < t1 on key
        # "x": no serial order satisfies both.
        with pytest.raises(SerializabilityViolation):
            check_cross_shard_serializable(
                {
                    0: [("t1", ["a"]), ("t2", ["a"])],
                    1: [("t2", ["x"]), ("t1", ["x"])],
                }
            )

    def test_disjoint_keys_commute(self):
        # Opposite orders are fine when the transactions share no keys.
        check_cross_shard_serializable(
            {
                0: [("t1", ["a"]), ("t2", ["b"])],
                1: [("t2", ["y"]), ("t1", ["x"])],
            }
        )

    def test_duplicate_commit_raises(self):
        with pytest.raises(SerializabilityViolation):
            check_cross_shard_serializable({0: [("t1", ["a"]), ("t1", ["a"])]})

    def test_three_txn_cycle_raises(self):
        with pytest.raises(SerializabilityViolation):
            check_cross_shard_serializable(
                {
                    0: [("t1", ["a"]), ("t2", ["a"])],
                    1: [("t2", ["b"]), ("t3", ["b"])],
                    2: [("t3", ["c"]), ("t1", ["c"])],
                }
            )


class TestTopologyCompat:
    def test_from_dict_none_is_default(self):
        assert TopologySpec.from_dict(None) == TopologySpec()
        assert TopologySpec().is_default

    def test_round_trip(self):
        topology = TopologySpec(groups=4, group_size=5, partitioner="range")
        assert TopologySpec.from_dict(topology.to_dict()) == topology

    def test_group_size_inherits_n(self):
        assert TopologySpec(groups=2).size_for(5) == 5
        assert TopologySpec(groups=2, group_size=3).size_for(5) == 3

    def test_pre_topology_spec_dict_still_loads(self):
        # A spec dict written before TopologySpec existed has no topology
        # group; it must load as a default-topology spec.
        plain = RsmRunSpec(
            protocol="cabcast-l", rate=100.0, duration=0.3, n=3, clients=4
        )
        body = plain.to_dict()
        assert "topology" not in body
        loaded = spec_from_dict(body)
        assert loaded == plain and loaded.topology.is_default

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TopologySpec(groups=0)
        with pytest.raises(ConfigurationError):
            TopologySpec(partitioner="modulo")
        with pytest.raises(ConfigurationError):
            RsmRunSpec(
                protocol="cabcast-l",
                rate=100.0,
                duration=0.3,
                n=3,
                clients=4,
                txn_clients=2,  # txn_rate missing
            )


class TestShardedRuns:
    def test_basic_two_shard_run(self):
        result = run_sharded_rsm(sharded_spec())
        assert result.shards == 2
        assert result.committed > 0
        assert result.linearizable
        digests = result.digests()
        for shard in range(result.shards):
            per_shard = {digests[pid] for pid in result.shard_pids(shard)
                         if pid in digests}
            assert len(per_shard) == 1, f"shard {shard} diverged"

    def test_dispatch_via_run_rsm(self):
        # run_rsm routes sharded specs to the sharded runner; metrics carry
        # the topology section.
        result = run_rsm(sharded_spec())
        metrics = service_metrics(result)
        assert metrics["topology"]["groups"] == 2
        assert set(metrics["shards"]) == {"0", "1"}

    def test_same_seed_is_deterministic(self):
        spec = sharded_spec(txn_clients=2, txn_rate=20.0)
        first = sharded_service_metrics(run_sharded_rsm(spec))
        second = sharded_service_metrics(run_sharded_rsm(spec))
        assert first == second

    def test_transactions_commit_across_shards(self):
        result = run_sharded_rsm(
            sharded_spec(topology=TopologySpec(groups=4), txn_clients=2, txn_rate=20.0)
        )
        txns = [t for d in result.txn_drivers.values() for t in d.txns]
        committed = [t for t in txns if t.decision == "commit"]
        assert committed, "no transaction committed"
        for txn in committed:
            assert len(txn.participants) == 2
            assert all(vote == "yes" for vote in txn.votes.values())
        # Every commit is reflected in at least one shard's commit order.
        ordered = {txid for orders in result.commit_orders.values()
                   for txid, _ in orders}
        assert {t.txid for t in committed} <= ordered

    def test_conflicts_abort_under_contention(self):
        # A tiny range-partitioned key space with several txn sessions forces
        # lock conflicts; conflicting prepares must abort, not deadlock.
        result = run_sharded_rsm(
            sharded_spec(
                keys=4,
                topology=TopologySpec(groups=2, partitioner="range"),
                txn_clients=4,
                txn_rate=60.0,
                duration=0.5,
            )
        )
        metrics = sharded_service_metrics(result)
        assert metrics["txns"]["started"] > 0
        assert metrics["linearizable"]

    def test_coordinator_and_participant_crash_recovery(self):
        # pid 0 lives in shard 0 (coordinator side for t0-rooted txns), pid 5
        # in shard 1; both crash mid-run and rejoin as learners.
        spec = sharded_spec(
            n=4,
            topology=TopologySpec(groups=2),
            txn_clients=2,
            txn_rate=20.0,
            duration=0.6,
            crash_at=((0, 0.25), (5, 0.3)),
            recover_after=0.2,
        )
        result = run_sharded_rsm(spec)
        assert sorted(result.crashed) == [0, 5]
        metrics = sharded_service_metrics(result)
        assert metrics["linearizable"]
        for info in metrics["recovery"].values():
            assert info["digest_match"]
        assert metrics["txns"]["started"] > 0

    def test_crash_run_is_deterministic(self):
        spec = sharded_spec(
            n=4,
            topology=TopologySpec(groups=2),
            txn_clients=2,
            txn_rate=20.0,
            duration=0.6,
            crash_at=((0, 0.25),),
            recover_after=0.2,
        )
        first = sharded_service_metrics(run_sharded_rsm(spec))
        second = sharded_service_metrics(run_sharded_rsm(spec))
        assert first == second


class TestShardSweep:
    def test_grid_shape_and_cache_keys(self):
        from repro.engine import rsm_sweep_grid

        grid = rsm_sweep_grid(
            "cabcast-l",
            rate=100.0,
            duration=0.2,
            shards=(1, 2, 4, 8),
            group_sizes=(3, 5),
            clients=4,
            cluster=PAPER_LAN,
        )
        assert len(grid) == 8
        # The 1-shard cells keep the default topology (PR-5 cache keys).
        assert grid[0].topology.is_default and grid[1].topology.is_default
        assert len({spec.cache_key() for spec in grid}) == 8

    def test_sweep_through_warm_pool(self, tmp_path):
        from repro.engine import rsm_sweep_grid, run_sweep

        grid = rsm_sweep_grid(
            "cabcast-l",
            rate=80.0,
            duration=0.2,
            shards=(1, 2, 4, 8),
            group_sizes=(3, 5),
            clients=4,
            cluster=PAPER_LAN,
        )
        parallel = run_sweep(
            grid, jobs=2, cache=tmp_path / "cache", clamp_jobs=False
        )
        serial = run_sweep(grid)
        assert [r.to_json() for r in parallel.reports] == [
            r.to_json() for r in serial.reports
        ]
        # Costing ranks wide topologies above the single group.
        from repro.engine import estimate_cost

        costs = [estimate_cost(spec) for spec in grid]
        assert costs[-1] > costs[0]
