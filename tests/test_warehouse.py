"""Cross-run metrics warehouse tests (repro.obs.warehouse).

Entries are deterministic distillations of observed runs — no wall clock
anywhere — so re-recording the same spec and seed appends byte-identical
lines and identical entries always compare clean, while a real decision-
latency regression (a slower network) trips the gate.
"""

import json

import pytest

from repro.engine import AbcastRunSpec, RunContext
from repro.engine.runner import execute_run
from repro.errors import ConfigurationError
from repro.obs import (
    ObsRuntime,
    Warehouse,
    build_entry,
    compare_entries,
)
from repro.obs.warehouse import WAREHOUSE_SCHEMA, format_entry
from repro.sim.network import ConstantDelay


def record_run(seed=1, delay=1e-3, rate=100.0):
    """One observed run distilled into a warehouse entry."""
    from repro.engine import ClusterSpec

    spec = AbcastRunSpec(
        protocol="cabcast-l",
        rate=rate,
        duration=0.3,
        seed=seed,
        drain=2.0,
        cluster=ClusterSpec(delay=ConstantDelay(delay)),
        obs=True,
    )
    obs = ObsRuntime.from_spec(spec)
    ctx = RunContext(tracer=obs.tracer, obs=obs)
    report = execute_run(spec, ctx=ctx)
    return build_entry(report, obs.tracer.records)


class TestBuildEntry:
    def test_entry_shape(self):
        entry = record_run()
        assert entry["schema"] == WAREHOUSE_SCHEMA
        assert entry["protocol"] == "cabcast-l" and entry["seed"] == 1
        assert entry["delivered"] > 0
        assert set(entry["latency"]) == {
            "count", "min", "max", "mean", "p50", "p95", "p99"
        }
        assert entry["spans"]["decided"] == entry["spans"]["instances"] > 0
        assert entry["critical_path"]["resolved"] == entry["critical_path"]["paths"]
        assert set(entry["network"]) == {"sent", "delivered", "dropped", "bytes_sent"}
        assert "label" not in entry

    def test_same_seed_entries_are_byte_identical(self):
        canonical = lambda entry: json.dumps(
            entry, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        assert canonical(record_run(seed=4)) == canonical(record_run(seed=4))

    def test_fast_path_decision_percentiles_present(self):
        buckets = record_run()["spans"]["decision_latency"]
        assert "fast_path" in buckets
        stats = buckets["fast_path"]
        assert stats["count"] > 0
        assert stats["min"] <= stats["p50"] <= stats["p95"] <= stats["max"]


class TestWarehouseStore:
    def test_append_load_entry_round_trip(self, tmp_path):
        store = Warehouse(str(tmp_path / "wh.jsonl"))
        entry = record_run()
        assert store.append(entry) == 0
        assert store.append(entry) == 1
        assert store.load() == [entry, entry]
        assert store.entry(-1) == entry

    def test_missing_file_loads_empty_and_entry_raises(self, tmp_path):
        store = Warehouse(str(tmp_path / "absent.jsonl"))
        assert store.load() == []
        with pytest.raises(ConfigurationError):
            store.entry(-1)

    def test_foreign_schema_rejected_on_append_and_load(self, tmp_path):
        path = tmp_path / "wh.jsonl"
        store = Warehouse(str(path))
        with pytest.raises(ConfigurationError):
            store.append({"schema": "something.else"})
        path.write_text('{"schema": "something.else"}\n')
        with pytest.raises(ConfigurationError):
            store.load()
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError):
            store.load()

    def test_out_of_range_index_raises(self, tmp_path):
        store = Warehouse(str(tmp_path / "wh.jsonl"))
        store.append(record_run())
        with pytest.raises(ConfigurationError):
            store.entry(5)

    def test_format_entry_renders_one_row(self):
        row = format_entry(0, record_run())
        assert "cabcast-l" in row


class TestCompare:
    def test_identical_entries_pass(self):
        entry = record_run(seed=2)
        lines, failures = compare_entries(entry, entry)
        assert not failures
        assert all("ok" in line for line in lines)

    def test_injected_latency_regression_flagged(self):
        # Same workload, 2.5x the link delay: decision latency inflates far
        # past the 30% default tolerance and the gate must say so.
        base = record_run(seed=2, delay=1e-3)
        slow = record_run(seed=2, delay=2.5e-3)
        lines, failures = compare_entries(base, slow)
        assert failures
        assert any(failure.startswith("latency.mean") for failure in failures)
        assert any("critical_path.mean_latency" in failure for failure in failures)
        assert any(line.startswith("note: comparing different specs") for line in lines)

    def test_tolerance_widens_the_gate(self):
        base = record_run(seed=2, delay=1e-3)
        slow = record_run(seed=2, delay=2.5e-3)
        _, failures = compare_entries(base, slow, tolerance=9.0)
        assert not failures

    def test_improvement_never_fails(self):
        slow = record_run(seed=2, delay=2.5e-3)
        fast = record_run(seed=2, delay=1e-3)
        _, failures = compare_entries(slow, fast)
        assert not failures

    def test_invalid_tolerance_rejected(self):
        entry = record_run(seed=2)
        with pytest.raises(ConfigurationError):
            compare_entries(entry, entry, tolerance=-0.1)

    def test_entries_without_common_metrics_fail_loudly(self):
        entry = record_run(seed=2)
        bare = {"schema": WAREHOUSE_SCHEMA, "key": "x", "seed": 0}
        _, failures = compare_entries(entry, bare)
        assert failures == ["no comparable latency metrics between the two entries"]


class TestCheckWarehouseGate:
    def test_gate_passes_then_fails_on_regression(self, tmp_path, capsys):
        import importlib.util
        import sys

        gate_path = "benchmarks/check_warehouse.py"
        loader = importlib.util.spec_from_file_location("check_warehouse", gate_path)
        gate = importlib.util.module_from_spec(loader)
        loader.loader.exec_module(gate)

        store = Warehouse(str(tmp_path / "wh.jsonl"))
        store.append(record_run(seed=3, delay=1e-3))
        store.append(record_run(seed=3, delay=1e-3))
        assert gate.main(["--warehouse", store.path]) == 0
        store.append(record_run(seed=3, delay=2.5e-3))
        assert gate.main(["--warehouse", store.path]) == 1
        out = capsys.readouterr().out
        assert "check_warehouse: ok" in out
        assert "check_warehouse: FAIL" in out

    def test_execute_run_rejects_ctx_for_rsm_specs(self):
        from repro.engine import RsmRunSpec

        spec = RsmRunSpec(protocol="cabcast-l", rate=50.0, duration=0.2, clients=2)
        with pytest.raises(ConfigurationError):
            execute_run(spec, ctx=RunContext(tracer=None, obs=None))
