"""Tests for repro.perf: report round-trip and zero-perturbation guarantee."""

import json

from repro.engine.runner import execute_run
from repro.engine.spec import AbcastRunSpec
from repro.perf import PERF_SCHEMA, PerfReport


SPEC = AbcastRunSpec(
    protocol="cabcast-l", rate=100.0, duration=0.3, n=4, seed=11, drain=1.5
)


class TestPerfReport:
    def test_to_dict_from_dict_round_trip(self):
        report = PerfReport(
            wall_seconds=0.25,
            sim_seconds=1.5,
            events_processed=1234,
            events_per_wall_second=4936.0,
            virtual_seconds_per_wall_second=6.0,
            components={"kernel": {"events": 1234}},
            profile=("line one", "line two"),
        )
        data = report.to_dict()
        assert data["schema"] == PERF_SCHEMA
        assert PerfReport.from_dict(data) == report
        # And a second serialisation of the round-tripped report is stable.
        assert PerfReport.from_dict(data).to_dict() == data

    def test_profile_is_omitted_when_absent(self):
        report = PerfReport(
            wall_seconds=0.1,
            sim_seconds=1.0,
            events_processed=10,
            events_per_wall_second=100.0,
            virtual_seconds_per_wall_second=10.0,
            components={},
        )
        data = report.to_dict()
        assert "profile" not in data
        assert PerfReport.from_dict(data).profile is None


class TestPerfDoesNotPerturb:
    def test_perf_on_leaves_trace_and_report_json_byte_identical(self):
        plain = execute_run(SPEC)
        perfed = execute_run(SPEC, collect_perf=True)
        assert perfed.perf is not None
        assert perfed.perf["schema"] == PERF_SCHEMA

        # Identical trace: same per-kind counts from the same deterministic run.
        assert perfed.trace_counts == plain.trace_counts

        # Identical report JSON once the (wall-clock-dependent) perf section
        # is stripped — perf collection must not touch the simulation.
        perfed_data = perfed.to_dict()
        perfed_data.pop("perf")
        assert json.dumps(perfed_data, sort_keys=True) == json.dumps(
            plain.to_dict(), sort_keys=True
        )
